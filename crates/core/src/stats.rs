//! Ecosystem statistics: the governance dashboard.
//!
//! The demo's steward view summarises the state of the integration — which
//! sources exist, how many versions coexist, which global features are
//! covered by how many wrappers, and what is *not* queryable yet. This
//! module computes that report from the metadata alone.

use std::fmt::Write as _;

use mdm_rdf::term::Iri;

use crate::ontology::BdiOntology;

/// Per-feature coverage: how many mapped wrappers provide it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeatureCoverage {
    pub feature: Iri,
    pub concept: Iri,
    pub wrappers: usize,
    pub is_identifier: bool,
}

/// Per-source summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceSummary {
    pub source: Iri,
    pub wrapper_count: usize,
    /// Distinct `S:version` values of the source's wrappers, ascending.
    pub versions: Vec<i64>,
    /// Wrappers registered but without a LAV mapping.
    pub unmapped: Vec<Iri>,
}

/// The whole dashboard.
#[derive(Clone, Debug, Default)]
pub struct EcosystemReport {
    pub concepts: usize,
    pub features: usize,
    pub relations: usize,
    pub sources: Vec<SourceSummary>,
    pub coverage: Vec<FeatureCoverage>,
}

impl EcosystemReport {
    /// Features no mapped wrapper provides (unanswerable in walks).
    pub fn uncovered_features(&self) -> Vec<&FeatureCoverage> {
        self.coverage.iter().filter(|c| c.wrappers == 0).collect()
    }

    /// Features provided by ≥2 wrappers — redundancy that keeps queries
    /// alive across version changes.
    pub fn redundant_features(&self) -> Vec<&FeatureCoverage> {
        self.coverage.iter().filter(|c| c.wrappers >= 2).collect()
    }

    /// Renders the dashboard as text.
    pub fn render(&self, ontology: &BdiOntology) -> String {
        let mut out = String::new();
        writeln!(out, "ECOSYSTEM").unwrap();
        writeln!(out, "=========").unwrap();
        writeln!(
            out,
            "{} concepts, {} features, {} relations, {} sources",
            self.concepts,
            self.features,
            self.relations,
            self.sources.len()
        )
        .unwrap();
        for source in &self.sources {
            let versions: Vec<String> = source.versions.iter().map(|v| format!("v{v}")).collect();
            writeln!(
                out,
                "source {}: {} wrapper(s) across [{}]{}",
                source.source.local_name(),
                source.wrapper_count,
                versions.join(", "),
                if source.unmapped.is_empty() {
                    String::new()
                } else {
                    format!(
                        " — UNMAPPED: {}",
                        source
                            .unmapped
                            .iter()
                            .map(|w| w.local_name().to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            )
            .unwrap();
        }
        writeln!(out, "feature coverage (wrappers per feature):").unwrap();
        for coverage in &self.coverage {
            let marker = if coverage.wrappers == 0 {
                "  !! "
            } else if coverage.is_identifier {
                " [id]"
            } else {
                "     "
            };
            writeln!(
                out,
                "{marker}{:<28} {} wrapper(s)",
                ontology.compact(&coverage.feature),
                coverage.wrappers
            )
            .unwrap();
        }
        out
    }
}

/// Computes the dashboard from the current metadata.
pub fn report(ontology: &BdiOntology) -> EcosystemReport {
    let concepts = ontology.concepts();
    let mut coverage = Vec::new();
    let mut feature_count = 0usize;
    for concept in &concepts {
        for feature in ontology.features_of(concept) {
            feature_count += 1;
            let wrappers = crate::mapping::wrappers_covering_feature(ontology, concept, &feature)
                .into_iter()
                // Covered *and* mapped by an attribute.
                .filter(|w| !ontology.attributes_mapping_to(w, &feature).is_empty())
                .count();
            coverage.push(FeatureCoverage {
                is_identifier: ontology.is_identifier(&feature),
                feature,
                concept: concept.clone(),
                wrappers,
            });
        }
    }
    let sources = ontology
        .data_sources()
        .into_iter()
        .map(|source| {
            let wrappers = ontology.wrappers_of(&source);
            let mut versions: Vec<i64> = wrappers
                .iter()
                .filter_map(|w| ontology.wrapper_version(w))
                .collect();
            versions.sort();
            versions.dedup();
            let unmapped: Vec<Iri> = wrappers
                .iter()
                .filter(|w| ontology.mappings().named_graph(w).is_none())
                .cloned()
                .collect();
            SourceSummary {
                wrapper_count: wrappers.len(),
                source,
                versions,
                unmapped,
            }
        })
        .collect();
    EcosystemReport {
        concepts: concepts.len(),
        features: feature_count,
        relations: ontology.relations().len(),
        sources,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::register_wrapper;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, strings};

    #[test]
    fn figure7_report_shape() {
        let o = figure7_ontology();
        let r = report(&o);
        assert_eq!(r.concepts, 2);
        assert_eq!(r.features, 9);
        assert_eq!(r.relations, 1);
        assert_eq!(r.sources.len(), 2);
        // teamId is the redundancy hotspot (w1 and w2 both map it).
        let team_id = r
            .coverage
            .iter()
            .find(|c| c.feature == ex("teamId"))
            .unwrap();
        assert_eq!(team_id.wrappers, 2);
        assert!(team_id.is_identifier);
        assert!(r.uncovered_features().is_empty());
    }

    #[test]
    fn evolution_increases_redundancy() {
        let before = report(&figure7_ontology());
        let after = report(&evolved_ontology());
        assert!(after.redundant_features().len() > before.redundant_features().len());
        // Versions listed per source.
        let players = after
            .sources
            .iter()
            .find(|s| s.source.local_name() == "PlayersAPI")
            .unwrap();
        assert_eq!(players.versions, vec![1, 2]);
    }

    #[test]
    fn unmapped_wrappers_and_uncovered_features_flagged() {
        let mut o = figure7_ontology();
        o.add_feature(&ex("Player"), &ex("birthday")).unwrap();
        register_wrapper(&mut o, "PlayersAPI", "wx", 3, &strings(&["id"])).unwrap();
        let r = report(&o);
        let players = r
            .sources
            .iter()
            .find(|s| s.source.local_name() == "PlayersAPI")
            .unwrap();
        assert_eq!(players.unmapped.len(), 1);
        let uncovered = r.uncovered_features();
        assert_eq!(uncovered.len(), 1);
        assert_eq!(uncovered[0].feature, ex("birthday"));
        let rendered = r.render(&o);
        assert!(rendered.contains("UNMAPPED: wx"));
        assert!(rendered.contains("!! ex:birthday"));
    }
}

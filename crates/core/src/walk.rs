//! Walks: ontology-mediated queries posed as subgraphs of the global graph
//! (paper §2.4).
//!
//! "The analyst can graphically select a set of nodes of the global graph
//! representing such pattern, we refer to it as a walk." A [`Walk`] is the
//! structured form of that selection: concepts, per-concept requested
//! features, and the relation edges connecting the concepts. Validation
//! checks every element exists in the global graph and the selection is
//! connected.

use std::collections::BTreeMap;

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::ontology::BdiOntology;

/// An OMQ: a connected subgraph of the global graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// Concepts in selection order.
    concepts: Vec<Iri>,
    /// Requested features per concept (selection order).
    features: BTreeMap<Iri, Vec<Iri>>,
    /// Relation edges `(from, property, to)`.
    relations: Vec<(Iri, Iri, Iri)>,
}

impl Walk {
    /// An empty walk (invalid until at least one concept is added).
    pub fn new() -> Self {
        Walk {
            concepts: Vec::new(),
            features: BTreeMap::new(),
            relations: Vec::new(),
        }
    }

    /// Adds a concept to the selection.
    pub fn concept(mut self, concept: &Iri) -> Self {
        if !self.concepts.contains(concept) {
            self.concepts.push(concept.clone());
            self.features.entry(concept.clone()).or_default();
        }
        self
    }

    /// Adds a requested feature (its concept is added implicitly at
    /// validation against the ontology).
    pub fn feature(mut self, concept: &Iri, feature: &Iri) -> Self {
        self = self.concept(concept);
        let features = self.features.entry(concept.clone()).or_default();
        if !features.contains(feature) {
            features.push(feature.clone());
        }
        self
    }

    /// Adds a relation edge to the selection.
    pub fn relation(mut self, from: &Iri, property: &Iri, to: &Iri) -> Self {
        self = self.concept(from).concept(to);
        let edge = (from.clone(), property.clone(), to.clone());
        if !self.relations.contains(&edge) {
            self.relations.push(edge);
        }
        self
    }

    /// The selected concepts.
    pub fn concepts(&self) -> &[Iri] {
        &self.concepts
    }

    /// The requested features of `concept`.
    pub fn features_of(&self, concept: &Iri) -> &[Iri] {
        self.features.get(concept).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All requested features across concepts, in selection order.
    pub fn all_features(&self) -> Vec<Iri> {
        self.concepts
            .iter()
            .flat_map(|c| self.features_of(c).iter().cloned())
            .collect()
    }

    /// The relation edges.
    pub fn relations(&self) -> &[(Iri, Iri, Iri)] {
        &self.relations
    }

    /// Internal: extends the feature set (used by query expansion).
    pub(crate) fn add_feature_internal(&mut self, concept: &Iri, feature: Iri) {
        let features = self.features.entry(concept.clone()).or_default();
        if !features.contains(&feature) {
            features.push(feature);
        }
    }

    /// Validates the walk against the global graph:
    /// * at least one concept with at least one requested feature overall;
    /// * every concept/feature/relation exists (and features belong to the
    ///   concept they are requested under);
    /// * the concept set is connected through the selected relations.
    pub fn validate(&self, ontology: &BdiOntology) -> Result<(), MdmError> {
        if self.concepts.is_empty() {
            return Err(MdmError::Walk("the walk selects no concept".to_string()));
        }
        if self.all_features().is_empty() {
            return Err(MdmError::Walk("the walk requests no feature".to_string()));
        }
        for concept in &self.concepts {
            if !ontology.is_concept(concept) {
                return Err(MdmError::Walk(format!(
                    "'{concept}' is not a concept of the global graph"
                )));
            }
            for feature in self.features_of(concept) {
                match ontology.concept_of_feature(feature) {
                    // A feature is requestable under its owning concept or
                    // any subconcept of it (inherited, §2.1 taxonomies).
                    Some(owner) if ontology.superconcepts_of(concept).contains(&owner) => {}
                    Some(owner) => {
                        return Err(MdmError::Walk(format!(
                            "feature '{feature}' belongs to '{owner}', not '{concept}'"
                        )))
                    }
                    None => {
                        return Err(MdmError::Walk(format!(
                            "'{feature}' is not a feature of the global graph"
                        )))
                    }
                }
            }
        }
        for (from, property, to) in &self.relations {
            if !ontology.relations_between(from, to).contains(property) {
                return Err(MdmError::Walk(format!(
                    "'{from}' -{property}-> '{to}' is not a relation of the global graph"
                )));
            }
        }
        if !self.is_connected() {
            return Err(MdmError::Walk(
                "the walk is not connected; select the relations linking its concepts".to_string(),
            ));
        }
        Ok(())
    }

    /// A deterministic textual key identifying the walk's *semantics*: the
    /// concepts and their features in selection order (they fix the output
    /// column order) and the relation edges as a set (their order never
    /// changes the answer). Two walks with equal keys have interchangeable
    /// rewritings, which is what the epoch-keyed plan cache needs.
    pub fn canonical_key(&self) -> String {
        use std::fmt::Write as _;
        let mut key = String::new();
        for concept in &self.concepts {
            let _ = write!(key, "c<{concept}>[");
            for (index, feature) in self.features_of(concept).iter().enumerate() {
                if index > 0 {
                    key.push(',');
                }
                let _ = write!(key, "{feature}");
            }
            key.push_str("];");
        }
        let mut relations: Vec<String> = self
            .relations
            .iter()
            .map(|(from, property, to)| format!("r<{from}|{property}|{to}>;"))
            .collect();
        relations.sort();
        for relation in relations {
            key.push_str(&relation);
        }
        key
    }

    fn is_connected(&self) -> bool {
        if self.concepts.len() <= 1 {
            return true;
        }
        let mut reached = std::collections::BTreeSet::new();
        let mut frontier = vec![self.concepts[0].clone()];
        while let Some(current) = frontier.pop() {
            if !reached.insert(current.clone()) {
                continue;
            }
            for (from, _, to) in &self.relations {
                if *from == current && !reached.contains(to) {
                    frontier.push(to.clone());
                }
                if *to == current && !reached.contains(from) {
                    frontier.push(from.clone());
                }
            }
        }
        self.concepts.iter().all(|c| reached.contains(c))
    }
}

impl Default for Walk {
    fn default() -> Self {
        Walk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ex, figure5_ontology};
    use mdm_rdf::vocab;

    /// The Figure 8 walk: team names and player names.
    pub(crate) fn figure8_walk() -> Walk {
        let team = vocab::schema::SPORTS_TEAM.iri();
        Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&ex("Player"), &ex("hasTeam"), &team)
    }

    #[test]
    fn figure8_walk_is_valid() {
        let o = figure5_ontology();
        let walk = figure8_walk();
        walk.validate(&o).unwrap();
        assert_eq!(walk.concepts().len(), 2);
        assert_eq!(walk.all_features().len(), 2);
        assert_eq!(walk.relations().len(), 1);
    }

    #[test]
    fn empty_walks_rejected() {
        let o = figure5_ontology();
        assert!(Walk::new().validate(&o).is_err());
        // A concept without any requested feature anywhere is rejected too.
        let err = Walk::new().concept(&ex("Player")).validate(&o).unwrap_err();
        assert!(err.message().contains("no feature"));
    }

    #[test]
    fn unknown_elements_rejected() {
        let o = figure5_ontology();
        assert!(Walk::new()
            .feature(&ex("Alien"), &ex("x"))
            .validate(&o)
            .is_err());
        assert!(Walk::new()
            .feature(&ex("Player"), &ex("alienFeature"))
            .validate(&o)
            .is_err());
    }

    #[test]
    fn feature_under_wrong_concept_rejected() {
        let o = figure5_ontology();
        let err = Walk::new()
            .feature(&ex("Player"), &ex("teamName"))
            .validate(&o)
            .unwrap_err();
        assert!(err.message().contains("belongs to"));
    }

    #[test]
    fn unknown_relation_rejected() {
        let o = figure5_ontology();
        let team = vocab::schema::SPORTS_TEAM.iri();
        let err = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&team, &ex("hasTeam"), &ex("Player")) // reversed
            .validate(&o)
            .unwrap_err();
        assert!(err.message().contains("not a relation"));
    }

    #[test]
    fn disconnected_walk_rejected() {
        let o = figure5_ontology();
        let team = vocab::schema::SPORTS_TEAM.iri();
        let err = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .validate(&o)
            .unwrap_err();
        assert!(err.message().contains("not connected"));
    }

    #[test]
    fn single_concept_walk_needs_no_relations() {
        let o = figure5_ontology();
        Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&ex("Player"), &ex("height"))
            .validate(&o)
            .unwrap();
    }

    #[test]
    fn canonical_key_ignores_relation_order_only() {
        let team = vocab::schema::SPORTS_TEAM.iri();
        let a = figure8_walk();
        // Same selection, relations listed "first": identical key.
        let b = Walk::new()
            .concept(&ex("Player"))
            .concept(&team)
            .relation(&ex("Player"), &ex("hasTeam"), &team)
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"));
        assert_eq!(a.canonical_key(), b.canonical_key());
        // Different concept order changes output columns, so the key differs.
        let c = Walk::new()
            .feature(&team, &ex("teamName"))
            .feature(&ex("Player"), &ex("playerName"))
            .relation(&ex("Player"), &ex("hasTeam"), &team);
        assert_ne!(a.canonical_key(), c.canonical_key());
        // And a different feature set differs too.
        let d = figure8_walk().feature(&ex("Player"), &ex("height"));
        assert_ne!(a.canonical_key(), d.canonical_key());
    }

    #[test]
    fn builders_deduplicate() {
        let walk = figure8_walk()
            .feature(&ex("Player"), &ex("playerName"))
            .relation(
                &ex("Player"),
                &ex("hasTeam"),
                &vocab::schema::SPORTS_TEAM.iri(),
            );
        assert_eq!(walk.features_of(&ex("Player")).len(), 1);
        assert_eq!(walk.relations().len(), 1);
    }
}

//! End-to-end OMQ execution: rewriting + federated execution.
//!
//! "Concerning the execution of queries, the fragment of data provided by
//! wrappers is loaded into temporal SQLite tables in order to execute the
//! federated query" (§2.5) — here the rewritten plan runs directly on the
//! `mdm-relational` engine against any [`Catalog`] of wrapper relations.

use std::collections::BTreeSet;

use mdm_relational::resilience::ScanGuard;
use mdm_relational::{Catalog, ExecOptions, Executor, Plan, ScanCache, Table};

use crate::error::MdmError;
use crate::ontology::BdiOntology;
use crate::rewrite::{plan_for_cq, rewrite_walk, RewriteOptions, Rewriting};
use crate::walk::Walk;

/// The answer to an OMQ: the rewriting artifacts plus the result table.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    pub rewriting: Rewriting,
    pub table: Table,
}

impl QueryAnswer {
    /// The tabular rendering the MDM UI displays (cf. Table 1).
    pub fn render(&self) -> String {
        self.table.render()
    }
}

/// Rewrites `walk` and executes it against `catalog` with default
/// execution options (process-wide pool, no deadline).
pub fn answer_walk(
    ontology: &BdiOntology,
    walk: &Walk,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
) -> Result<QueryAnswer, MdmError> {
    answer_walk_with(ontology, walk, catalog, options, &ExecOptions::default())
}

/// [`answer_walk`] with explicit execution options — the entry point the
/// [`crate::Mdm`] facade uses to thread its pool, retry policy and
/// metadata epoch into execution.
pub fn answer_walk_with(
    ontology: &BdiOntology,
    walk: &Walk,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
    exec_options: &ExecOptions,
) -> Result<QueryAnswer, MdmError> {
    let rewriting = rewrite_walk(ontology, walk, options)?;
    let table = Executor::with_options(catalog, exec_options.clone())
        .run(&rewriting.plan)
        .map_err(MdmError::from_exec)?
        .sorted();
    Ok(QueryAnswer { rewriting, table })
}

/// One CQ branch that could not contribute to a degraded answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DroppedBranch {
    /// The wrapper relations the branch scans (enriched with versions when
    /// the executing [`crate::Mdm`] knows them, e.g. `w3@v2`).
    pub wrappers: Vec<String>,
    /// The failure class (`transient`, `permanent`, `malformed`, `timeout`).
    pub kind: String,
    /// The error message that killed the branch.
    pub reason: String,
}

/// How much of the UCQ a degraded answer actually covers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Completeness {
    /// CQ branches in the rewriting.
    pub total_branches: usize,
    /// Branches that executed and contributed rows.
    pub executed_branches: usize,
    /// Wrappers that contributed (union over surviving branches, sorted).
    pub contributors: Vec<String>,
    /// Branches dropped with the reason each one failed.
    pub dropped: Vec<DroppedBranch>,
    /// Transient scan failures absorbed by retries along the way.
    pub retries: u64,
}

impl Completeness {
    /// True when every branch of the rewriting executed.
    pub fn is_complete(&self) -> bool {
        self.dropped.is_empty()
    }

    /// A one-line human summary (the CLI footer).
    pub fn summary(&self) -> String {
        if self.is_complete() {
            format!(
                "complete: {}/{} branches, {} retries absorbed",
                self.executed_branches, self.total_branches, self.retries
            )
        } else {
            let dropped: Vec<String> = self
                .dropped
                .iter()
                .map(|d| format!("{} ({})", d.wrappers.join("+"), d.kind))
                .collect();
            format!(
                "PARTIAL: {}/{} branches; dropped {}",
                self.executed_branches,
                self.total_branches,
                dropped.join(", ")
            )
        }
    }
}

/// The answer to an OMQ executed in degraded mode: the surviving rows plus
/// the completeness report saying what is missing and why.
#[derive(Clone, Debug)]
pub struct DegradedAnswer {
    pub rewriting: Rewriting,
    pub table: Table,
    pub completeness: Completeness,
}

impl DegradedAnswer {
    /// The tabular rendering (cf. Table 1).
    pub fn render(&self) -> String {
        self.table.render()
    }
}

/// Executes a rewriting branch by branch: a CQ branch that fails terminally
/// is *dropped* — recorded in the completeness report — while the surviving
/// branches still produce rows. Only when **no** branch survives does the
/// query fail (with a timeout error if any branch timed out).
///
/// This is the degraded-mode contract: under partial source failure an
/// analyst gets the answerable fraction of the UCQ plus an honest account
/// of what is missing, instead of an all-or-nothing error.
/// `optimize` is applied to each branch plan after it is derived (the
/// cost-based pass, when the facade runs with optimization on); branches
/// are optimized independently because each one executes — and can fail —
/// on its own.
pub fn execute_degraded(
    rewriting: &Rewriting,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
    exec_options: &ExecOptions,
    guard: Option<&dyn ScanGuard>,
    optimize: Option<&dyn Fn(Plan) -> Plan>,
) -> Result<(Table, Completeness), MdmError> {
    let mut completeness = Completeness {
        total_branches: rewriting.queries.len(),
        ..Completeness::default()
    };
    // A plan-shape failure is a rewriting bug, not a source fault —
    // surface it before any branch executes.
    let mut plans = Vec::with_capacity(rewriting.queries.len());
    for cq in &rewriting.queries {
        let plan = plan_for_cq(cq, &rewriting.output_columns)?;
        let plan = if options.distinct {
            plan.distinct()
        } else {
            plan
        };
        plans.push(match optimize {
            Some(optimize) => optimize(plan),
            None => plan,
        });
    }
    // One scan cache for the whole UCQ: a wrapper referenced by several
    // branches is fetched once, so retries and breaker events fire once
    // per wrapper per query — which also keeps fault-injection outcomes
    // (and thus the completeness report) independent of how concurrent
    // branches interleave.
    let cache = ScanCache::new();
    let run_branch = |i: usize| {
        let mut executor =
            Executor::with_options(catalog, exec_options.clone()).with_scan_cache(&cache);
        if let Some(guard) = guard {
            executor = executor.with_guard(guard);
        }
        let outcome = executor.run(&plans[i]);
        (executor.retries(), outcome)
    };
    let pool = exec_options.pool.as_ref().filter(|p| p.size() > 1);
    let outcomes = match pool {
        Some(pool) if plans.len() > 1 => pool.run(plans.len(), run_branch),
        _ => (0..plans.len()).map(&run_branch).collect(),
    };
    let mut contributors: BTreeSet<String> = BTreeSet::new();
    let mut merged_schema = None;
    let mut merged_rows = Vec::new();
    for (cq, (retries, outcome)) in rewriting.queries.iter().zip(outcomes) {
        completeness.retries += retries;
        match outcome {
            Ok(table) => {
                completeness.executed_branches += 1;
                contributors.extend(cq.atoms.iter().cloned());
                if merged_schema.is_none() {
                    merged_schema = Some(table.schema().clone());
                }
                merged_rows.extend(table.into_rows());
            }
            Err(error) => completeness.dropped.push(DroppedBranch {
                wrappers: cq.atoms.clone(),
                kind: error.kind.label().to_string(),
                reason: error.message,
            }),
        }
    }
    completeness.contributors = contributors.into_iter().collect();
    let Some(schema) = merged_schema else {
        // Every branch failed: no rows to stand behind, fail the query.
        let reasons: Vec<String> = completeness
            .dropped
            .iter()
            .map(|d| format!("{}: {}", d.wrappers.join("+"), d.reason))
            .collect();
        let message = format!(
            "all {} branch(es) failed — {}",
            completeness.total_branches,
            reasons.join("; ")
        );
        return Err(
            if completeness.dropped.iter().any(|d| d.kind == "timeout") {
                MdmError::Timeout(message)
            } else {
                MdmError::Execution(message)
            },
        );
    };
    if options.distinct {
        let set: BTreeSet<_> = merged_rows.into_iter().collect();
        merged_rows = set.into_iter().collect();
    }
    let table = Table::new(schema, merged_rows)
        .map_err(MdmError::Execution)?
        .sorted();
    Ok((table, completeness))
}

/// Like [`answer_walk`], but the result carries a trailing `provenance`
/// column naming the wrapper set of the union branch each row came from —
/// the governance view that makes "these rows come from the old version,
/// those from the new one" visible in the demo.
///
/// Rows produced by several branches appear once per branch (provenance is
/// per-derivation), so the row count may exceed the plain answer's.
pub fn answer_walk_with_provenance(
    ontology: &BdiOntology,
    walk: &Walk,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
) -> Result<QueryAnswer, MdmError> {
    use mdm_relational::schema::ColumnRef;
    use mdm_relational::{Expr, Plan, Value};

    let rewriting = rewrite_walk(ontology, walk, options)?;
    let branches: Vec<Plan> = rewriting
        .queries
        .iter()
        .map(|cq| {
            let label = cq.atoms.join("+");
            crate::rewrite::plan_for_cq(cq, &rewriting.output_columns).map(|plan| {
                // Distinct first (per-branch set semantics), then tag.
                let plan = if options.distinct {
                    plan.distinct()
                } else {
                    plan
                };
                let mut columns: Vec<(Expr, ColumnRef)> = rewriting
                    .output_columns
                    .iter()
                    .map(|name| (Expr::col(name), ColumnRef::bare(name.clone())))
                    .collect();
                columns.push((
                    Expr::Literal(Value::str(label)),
                    ColumnRef::bare("provenance"),
                ));
                plan.project(columns)
            })
        })
        .collect::<Result<_, _>>()?;
    let plan = if branches.len() == 1 {
        branches.into_iter().next().expect("len checked")
    } else {
        Plan::union(branches)
    };
    let table = Executor::new(catalog)
        .run(&plan)
        .map_err(MdmError::from_exec)?
        .sorted();
    Ok(QueryAnswer { rewriting, table })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk};
    use mdm_relational::{MemoryCatalog, Schema, Value};

    /// Wrapper extensions with the paper's Table 1 rows.
    fn catalog() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified(
                    "w1",
                    ["id", "pName", "height", "weight", "score", "foot", "teamId"],
                ),
                vec![
                    vec![
                        Value::Int(6176),
                        Value::str("Lionel Messi"),
                        Value::Float(170.18),
                        Value::Int(159),
                        Value::Int(94),
                        Value::str("left"),
                        Value::Int(25),
                    ],
                    vec![
                        Value::Int(6177),
                        Value::str("Robert Lewandowski"),
                        Value::Float(184.0),
                        Value::Int(176),
                        Value::Int(92),
                        Value::str("right"),
                        Value::Int(27),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name", "shortName"]),
                vec![
                    vec![
                        Value::Int(25),
                        Value::str("FC Barcelona"),
                        Value::str("FCB"),
                    ],
                    vec![
                        Value::Int(27),
                        Value::str("Bayern Munich"),
                        Value::str("FCB2"),
                    ],
                    vec![
                        Value::Int(29),
                        Value::str("Manchester United"),
                        Value::str("MU"),
                    ],
                ],
            )
            .unwrap(),
        );
        // The v2 wrapper serving the *newer* players only.
        catalog.register(
            "w3",
            Table::new(
                Schema::qualified(
                    "w3",
                    [
                        "id",
                        "pName",
                        "height",
                        "weight",
                        "foot",
                        "teamId",
                        "nationality",
                    ],
                ),
                vec![vec![
                    Value::Int(6178),
                    Value::str("Zlatan Ibrahimovic"),
                    Value::Float(195.0),
                    Value::Int(209),
                    Value::str("right"),
                    Value::Int(29),
                    Value::Int(6),
                ]],
            )
            .unwrap(),
        );
        catalog
    }

    #[test]
    fn figure8_query_yields_table1_rows() {
        let o = figure7_ontology();
        let answer =
            answer_walk(&o, &figure8_walk(), &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 2);
        let rendered = answer.render();
        assert!(rendered.contains("Lionel Messi"));
        assert!(rendered.contains("FC Barcelona"));
    }

    #[test]
    fn evolved_ontology_unions_versions() {
        // With w3 mapped, the same walk now returns all three famous rows —
        // the §3 governance scenario's punchline.
        let o = evolved_ontology();
        let answer =
            answer_walk(&o, &figure8_walk(), &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 3);
        let rendered = answer.render();
        assert!(rendered.contains("Zlatan Ibrahimovic"));
        assert!(rendered.contains("Manchester United"));
        assert!(answer.rewriting.branch_count() >= 2);
    }

    #[test]
    fn missing_wrapper_in_catalog_is_execution_error() {
        let o = evolved_ontology();
        let mut partial = MemoryCatalog::new();
        // Only w1/w2 registered; the union needs w3.
        let full = catalog();
        for name in ["w1", "w2"] {
            let table = Executor::new(&full)
                .run(&mdm_relational::Plan::scan(name))
                .unwrap();
            partial.register(name, table);
        }
        let err =
            answer_walk(&o, &figure8_walk(), &partial, &RewriteOptions::default()).unwrap_err();
        assert_eq!(err.category(), "execution");
        assert!(err.message().contains("w3"));
    }

    #[test]
    fn provenance_labels_branches() {
        let o = evolved_ontology();
        let answer = answer_walk_with_provenance(
            &o,
            &figure8_walk(),
            &catalog(),
            &RewriteOptions::default(),
        )
        .unwrap();
        let labels: std::collections::BTreeSet<String> = answer
            .table
            .column(&mdm_relational::schema::ColumnRef::bare("provenance"))
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        // Messi comes from the w1 branch, Zlatan from the w3 branch.
        assert!(labels.iter().any(|l| l.contains("w1")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("w3")), "{labels:?}");
        let rows: Vec<String> = answer
            .table
            .rows()
            .iter()
            .map(|r| format!("{} | {}", r[0], r[2]))
            .collect();
        assert!(
            rows.iter()
                .any(|r| r.contains("Zlatan Ibrahimovic") && r.contains("w3")),
            "{rows:?}"
        );
    }

    #[test]
    fn single_concept_projection_query() {
        let o = figure7_ontology();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&ex("Player"), &ex("foot"));
        let answer = answer_walk(&o, &walk, &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 2);
        assert_eq!(
            answer.table.schema().join_names(", "),
            "ex:playerName, ex:foot"
        );
    }
}

//! End-to-end OMQ execution: rewriting + federated execution.
//!
//! "Concerning the execution of queries, the fragment of data provided by
//! wrappers is loaded into temporal SQLite tables in order to execute the
//! federated query" (§2.5) — here the rewritten plan runs directly on the
//! `mdm-relational` engine against any [`Catalog`] of wrapper relations.

use mdm_relational::{Catalog, Executor, Table};

use crate::error::MdmError;
use crate::ontology::BdiOntology;
use crate::rewrite::{rewrite_walk, RewriteOptions, Rewriting};
use crate::walk::Walk;

/// The answer to an OMQ: the rewriting artifacts plus the result table.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    pub rewriting: Rewriting,
    pub table: Table,
}

impl QueryAnswer {
    /// The tabular rendering the MDM UI displays (cf. Table 1).
    pub fn render(&self) -> String {
        self.table.render()
    }
}

/// Rewrites `walk` and executes it against `catalog`.
pub fn answer_walk(
    ontology: &BdiOntology,
    walk: &Walk,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
) -> Result<QueryAnswer, MdmError> {
    let rewriting = rewrite_walk(ontology, walk, options)?;
    let table = Executor::new(catalog)
        .run(&rewriting.plan)
        .map_err(|e| MdmError::Execution(e.0))?
        .sorted();
    Ok(QueryAnswer { rewriting, table })
}

/// Like [`answer_walk`], but the result carries a trailing `provenance`
/// column naming the wrapper set of the union branch each row came from —
/// the governance view that makes "these rows come from the old version,
/// those from the new one" visible in the demo.
///
/// Rows produced by several branches appear once per branch (provenance is
/// per-derivation), so the row count may exceed the plain answer's.
pub fn answer_walk_with_provenance(
    ontology: &BdiOntology,
    walk: &Walk,
    catalog: &dyn Catalog,
    options: &RewriteOptions,
) -> Result<QueryAnswer, MdmError> {
    use mdm_relational::schema::ColumnRef;
    use mdm_relational::{Expr, Plan, Value};

    let rewriting = rewrite_walk(ontology, walk, options)?;
    let branches: Vec<Plan> = rewriting
        .queries
        .iter()
        .map(|cq| {
            let label = cq.atoms.join("+");
            crate::rewrite::plan_for_cq(cq, &rewriting.output_columns).map(|plan| {
                // Distinct first (per-branch set semantics), then tag.
                let plan = if options.distinct {
                    plan.distinct()
                } else {
                    plan
                };
                let mut columns: Vec<(Expr, ColumnRef)> = rewriting
                    .output_columns
                    .iter()
                    .map(|name| (Expr::col(name), ColumnRef::bare(name.clone())))
                    .collect();
                columns.push((
                    Expr::Literal(Value::str(label)),
                    ColumnRef::bare("provenance"),
                ));
                plan.project(columns)
            })
        })
        .collect::<Result<_, _>>()?;
    let plan = if branches.len() == 1 {
        branches.into_iter().next().expect("len checked")
    } else {
        Plan::union(branches)
    };
    let table = Executor::new(catalog)
        .run(&plan)
        .map_err(|e| MdmError::Execution(e.0))?
        .sorted();
    Ok(QueryAnswer { rewriting, table })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk};
    use mdm_relational::{MemoryCatalog, Schema, Value};

    /// Wrapper extensions with the paper's Table 1 rows.
    fn catalog() -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        catalog.register(
            "w1",
            Table::new(
                Schema::qualified(
                    "w1",
                    ["id", "pName", "height", "weight", "score", "foot", "teamId"],
                ),
                vec![
                    vec![
                        Value::Int(6176),
                        Value::str("Lionel Messi"),
                        Value::Float(170.18),
                        Value::Int(159),
                        Value::Int(94),
                        Value::str("left"),
                        Value::Int(25),
                    ],
                    vec![
                        Value::Int(6177),
                        Value::str("Robert Lewandowski"),
                        Value::Float(184.0),
                        Value::Int(176),
                        Value::Int(92),
                        Value::str("right"),
                        Value::Int(27),
                    ],
                ],
            )
            .unwrap(),
        );
        catalog.register(
            "w2",
            Table::new(
                Schema::qualified("w2", ["id", "name", "shortName"]),
                vec![
                    vec![
                        Value::Int(25),
                        Value::str("FC Barcelona"),
                        Value::str("FCB"),
                    ],
                    vec![
                        Value::Int(27),
                        Value::str("Bayern Munich"),
                        Value::str("FCB2"),
                    ],
                    vec![
                        Value::Int(29),
                        Value::str("Manchester United"),
                        Value::str("MU"),
                    ],
                ],
            )
            .unwrap(),
        );
        // The v2 wrapper serving the *newer* players only.
        catalog.register(
            "w3",
            Table::new(
                Schema::qualified(
                    "w3",
                    [
                        "id",
                        "pName",
                        "height",
                        "weight",
                        "foot",
                        "teamId",
                        "nationality",
                    ],
                ),
                vec![vec![
                    Value::Int(6178),
                    Value::str("Zlatan Ibrahimovic"),
                    Value::Float(195.0),
                    Value::Int(209),
                    Value::str("right"),
                    Value::Int(29),
                    Value::Int(6),
                ]],
            )
            .unwrap(),
        );
        catalog
    }

    #[test]
    fn figure8_query_yields_table1_rows() {
        let o = figure7_ontology();
        let answer =
            answer_walk(&o, &figure8_walk(), &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 2);
        let rendered = answer.render();
        assert!(rendered.contains("Lionel Messi"));
        assert!(rendered.contains("FC Barcelona"));
    }

    #[test]
    fn evolved_ontology_unions_versions() {
        // With w3 mapped, the same walk now returns all three famous rows —
        // the §3 governance scenario's punchline.
        let o = evolved_ontology();
        let answer =
            answer_walk(&o, &figure8_walk(), &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 3);
        let rendered = answer.render();
        assert!(rendered.contains("Zlatan Ibrahimovic"));
        assert!(rendered.contains("Manchester United"));
        assert!(answer.rewriting.branch_count() >= 2);
    }

    #[test]
    fn missing_wrapper_in_catalog_is_execution_error() {
        let o = evolved_ontology();
        let mut partial = MemoryCatalog::new();
        // Only w1/w2 registered; the union needs w3.
        let full = catalog();
        for name in ["w1", "w2"] {
            let table = Executor::new(&full)
                .run(&mdm_relational::Plan::scan(name))
                .unwrap();
            partial.register(name, table);
        }
        let err =
            answer_walk(&o, &figure8_walk(), &partial, &RewriteOptions::default()).unwrap_err();
        assert_eq!(err.category(), "execution");
        assert!(err.message().contains("w3"));
    }

    #[test]
    fn provenance_labels_branches() {
        let o = evolved_ontology();
        let answer = answer_walk_with_provenance(
            &o,
            &figure8_walk(),
            &catalog(),
            &RewriteOptions::default(),
        )
        .unwrap();
        let labels: std::collections::BTreeSet<String> = answer
            .table
            .column(&mdm_relational::schema::ColumnRef::bare("provenance"))
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        // Messi comes from the w1 branch, Zlatan from the w3 branch.
        assert!(labels.iter().any(|l| l.contains("w1")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("w3")), "{labels:?}");
        let rows: Vec<String> = answer
            .table
            .rows()
            .iter()
            .map(|r| format!("{} | {}", r[0], r[2]))
            .collect();
        assert!(
            rows.iter()
                .any(|r| r.contains("Zlatan Ibrahimovic") && r.contains("w3")),
            "{rows:?}"
        );
    }

    #[test]
    fn single_concept_projection_query() {
        let o = figure7_ontology();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&ex("Player"), &ex("foot"));
        let answer = answer_walk(&o, &walk, &catalog(), &RewriteOptions::default()).unwrap();
        assert_eq!(answer.table.len(), 2);
        assert_eq!(
            answer.table.schema().join_names(", "),
            "ex:playerName, ex:foot"
        );
    }
}

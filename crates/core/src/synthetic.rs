//! Bridges `mdm-wrappers`' synthetic workloads into a fully-configured
//! [`Mdm`] instance — the harness used by the SUPERSEDE-style example and
//! the scaling/robustness benches (P1–P3, P6 in DESIGN.md).
//!
//! The synthetic ecosystem is a chain `c0 → c1 → … → c{n-1}`; this module
//! builds the matching global graph (one concept per source, one feature per
//! canonical attribute, `next` relations), registers every wrapper version,
//! and derives each wrapper's LAV mapping mechanically from its canonical
//! attribute names.

use mdm_rdf::term::Iri;
use mdm_wrappers::workload::SyntheticEcosystem;
use mdm_wrappers::Wrapper;

use crate::error::MdmError;
use crate::mapping::MappingBuilder;
use crate::mdm::Mdm;
use crate::walk::Walk;

/// Namespace for synthetic-domain IRIs.
pub const SYN_NS: &str = "http://www.essi.upc.edu/~snadal/synthetic/";

/// `syn:<local>`.
pub fn syn(local: &str) -> Iri {
    Iri::new(format!("{SYN_NS}{local}"))
}

/// The concept IRI of chain position `c`.
pub fn concept_iri(c: usize) -> Iri {
    syn(&format!("C{c}"))
}

/// The feature IRI for canonical attribute `name` of concept `c`. The
/// local name avoids `/` so the `syn:` prefix compacts it (`syn:C0_id`).
pub fn feature_iri(c: usize, name: &str) -> Iri {
    syn(&format!("C{c}_{name}"))
}

/// The relation IRI between concept `c` and `c+1`.
pub fn relation_iri(c: usize) -> Iri {
    syn(&format!("next{c}"))
}

/// Builds an [`Mdm`] with the ecosystem's ontology, wrappers and mappings.
pub fn mdm_from_synthetic(eco: &SyntheticEcosystem) -> Result<Mdm, MdmError> {
    let mut mdm = Mdm::new();
    mdm.ontology_bind_prefix();
    let concepts = eco.config.concepts;

    // Global graph.
    for c in 0..concepts {
        let concept = concept_iri(c);
        mdm.define_concept(&concept)?;
        for attribute in eco.concept_attributes(c) {
            let feature = feature_iri(c, &attribute);
            if attribute == "id" {
                mdm.define_identifier(&concept, &feature)?;
            } else {
                mdm.define_feature(&concept, &feature)?;
            }
        }
    }
    for c in 0..concepts.saturating_sub(1) {
        mdm.define_relation(&concept_iri(c), &relation_iri(c), &concept_iri(c + 1))?;
    }

    // Sources, wrappers, mappings.
    for source in &eco.sources {
        mdm.add_source(source.source.endpoint.name())?;
        for wrapper in &source.wrappers {
            register_synthetic_wrapper(&mut mdm, eco, source.concept, wrapper.clone())?;
        }
    }
    Ok(mdm)
}

/// Registers one synthetic wrapper plus its mechanical LAV mapping.
///
/// The mapping covers the wrapper's concept (all canonical attributes as
/// features); when the concept has a `next` foreign key, it also covers the
/// relation edge and the *next* concept's identifier — making the wrapper an
/// edge witness, like the paper's `w1` covering `sc:SportsTeam`'s id.
pub fn register_synthetic_wrapper(
    mdm: &mut Mdm,
    eco: &SyntheticEcosystem,
    concept: usize,
    wrapper: Wrapper,
) -> Result<(), MdmError> {
    let wrapper_name = wrapper.name().to_string();
    mdm.register_wrapper(wrapper)?;
    let concept_node = concept_iri(concept);
    let mut builder = MappingBuilder::for_wrapper(&wrapper_name).cover_concept(&concept_node);
    let has_next = concept + 1 < eco.config.concepts;
    for attribute in eco.concept_attributes(concept) {
        if attribute.ends_with("_next") {
            continue; // handled below as the edge link
        }
        let feature = feature_iri(concept, &attribute);
        builder = builder
            .cover_feature(&feature)
            .same_as(&attribute, &feature);
    }
    if has_next {
        let next_concept = concept_iri(concept + 1);
        let next_id = feature_iri(concept + 1, "id");
        builder = builder
            .cover_concept(&next_concept)
            .cover_feature(&next_id)
            .cover_relation(&concept_node, &relation_iri(concept), &next_concept)
            .same_as(&format!("c{concept}_next"), &next_id);
    }
    mdm.define_mapping(builder)?;
    Ok(())
}

/// A walk over the first `k` concepts of the chain, requesting one non-key
/// feature per concept (plus the relations linking them).
pub fn chain_walk(eco: &SyntheticEcosystem, k: usize) -> Walk {
    let mut walk = Walk::new();
    let k = k.min(eco.config.concepts);
    for c in 0..k {
        walk = walk.feature(&concept_iri(c), &feature_iri(c, &format!("c{c}_f0")));
    }
    for c in 0..k.saturating_sub(1) {
        walk = walk.relation(&concept_iri(c), &relation_iri(c), &concept_iri(c + 1));
    }
    walk
}

impl Mdm {
    /// Binds the synthetic prefix for rendering.
    fn ontology_bind_prefix(&mut self) {
        self.bind_prefix_internal("syn", SYN_NS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_wrappers::workload::{build, WorkloadConfig};

    #[test]
    fn synthetic_mdm_answers_chain_walks() {
        let eco = build(&WorkloadConfig {
            concepts: 3,
            features_per_concept: 2,
            versions_per_source: 2,
            rows_per_wrapper: 20,
            seed: 11,
        });
        let mdm = mdm_from_synthetic(&eco).unwrap();
        // 3 sources × 2 versions.
        assert_eq!(mdm.catalog().len(), 6);
        for k in 1..=3 {
            let walk = chain_walk(&eco, k);
            let answer = mdm.query(&walk).unwrap();
            assert!(
                !answer.table.is_empty(),
                "k={k} returned no rows:\n{}",
                answer.rewriting.algebra()
            );
            // Union width grows with versions: ≥ 2^k branches expected
            // (each concept contributes ≥2 single-wrapper covers).
            assert!(
                answer.rewriting.branch_count() >= (1 << k.min(4)) / 2,
                "k={k}: only {} branches",
                answer.rewriting.branch_count()
            );
        }
    }

    #[test]
    fn deterministic_rewrite_across_builds() {
        let config = WorkloadConfig::default();
        let a = mdm_from_synthetic(&build(&config)).unwrap();
        let b = mdm_from_synthetic(&build(&config)).unwrap();
        let eco = build(&config);
        let walk = chain_walk(&eco, 2);
        assert_eq!(
            a.rewrite(&walk).unwrap().algebra(),
            b.rewrite(&walk).unwrap().algebra()
        );
    }
}

//! Registration of data sources and wrapper releases (paper §2.2).
//!
//! "New wrappers are introduced either because we want to consider data from
//! a new data source, or because the schema of an existing source has
//! evolved. Nevertheless, in both cases the procedure to incorporate them is
//! the same." — the data steward provides the wrapper definition and its
//! signature `w(a1, …, an)`; MDM extracts the RDF representation of the
//! wrapper schema into the source graph, **reusing as many attributes as
//! possible from the previous wrappers of that data source**, and never
//! across sources.

use mdm_rdf::term::{Iri, Term};
use mdm_rdf::vocab::{bdi, rdf};

use crate::error::MdmError;
use crate::ontology::BdiOntology;

/// The outcome of a wrapper registration: which attributes were newly
/// minted and which were reused from previous wrappers of the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Registration {
    pub source: Iri,
    pub wrapper: Iri,
    /// Attribute IRIs in signature order.
    pub attributes: Vec<Iri>,
    /// Names reused from earlier wrappers of this source.
    pub reused: Vec<String>,
    /// Names minted fresh by this registration.
    pub minted: Vec<String>,
}

/// Registers a data source (idempotent).
pub fn register_source(ontology: &mut BdiOntology, name: &str) -> Result<Iri, MdmError> {
    if name.is_empty() || !is_safe_name(name) {
        return Err(MdmError::Registration(format!(
            "invalid source name '{name}' (use alphanumerics, '_', '-')"
        )));
    }
    let iri = BdiOntology::source_iri(name);
    ontology
        .source_graph_mut()
        .insert((iri.term(), rdf::TYPE.term(), bdi::DATA_SOURCE.term()));
    Ok(iri)
}

/// Registers a wrapper release for `source_name`: creates the `S:Wrapper`
/// node, its `S:version`, and one `S:Attribute` per signature attribute
/// (reused within the source when the name already exists).
pub fn register_wrapper(
    ontology: &mut BdiOntology,
    source_name: &str,
    wrapper_name: &str,
    version: u32,
    attributes: &[String],
) -> Result<Registration, MdmError> {
    let source = BdiOntology::source_iri(source_name);
    if !ontology.data_sources().contains(&source) {
        return Err(MdmError::Registration(format!(
            "unknown data source '{source_name}'; register it first"
        )));
    }
    if !is_safe_name(wrapper_name) {
        return Err(MdmError::Registration(format!(
            "invalid wrapper name '{wrapper_name}'"
        )));
    }
    if attributes.is_empty() {
        return Err(MdmError::Registration(format!(
            "wrapper '{wrapper_name}' has an empty signature"
        )));
    }
    let wrapper = BdiOntology::wrapper_iri(wrapper_name);
    if ontology.wrappers().contains(&wrapper) {
        return Err(MdmError::Registration(format!(
            "wrapper '{wrapper_name}' is already registered"
        )));
    }

    // Attribute reuse: names already present on *this source's* previous
    // wrappers resolve to the same IRI; others are minted.
    let existing: std::collections::BTreeSet<String> = ontology
        .wrappers_of(&source)
        .iter()
        .flat_map(|w| ontology.attributes_of(w))
        .map(|attr| BdiOntology::attribute_name(&attr).to_string())
        .collect();

    let mut reused = Vec::new();
    let mut minted = Vec::new();
    let mut attribute_iris = Vec::with_capacity(attributes.len());
    {
        let graph = ontology.source_graph_mut();
        graph.insert((wrapper.term(), rdf::TYPE.term(), bdi::WRAPPER.term()));
        graph.insert((source.term(), bdi::HAS_WRAPPER.term(), wrapper.term()));
        graph.insert((
            wrapper.term(),
            bdi::VERSION.term(),
            Term::integer(version as i64),
        ));
        for name in attributes {
            if !is_safe_name(name) {
                return Err(MdmError::Registration(format!(
                    "invalid attribute name '{name}' in wrapper '{wrapper_name}'"
                )));
            }
            let attr = BdiOntology::attribute_iri(source_name, name);
            if existing.contains(name) {
                reused.push(name.clone());
            } else {
                minted.push(name.clone());
            }
            graph.insert((attr.term(), rdf::TYPE.term(), bdi::ATTRIBUTE.term()));
            graph.insert((wrapper.term(), bdi::HAS_ATTRIBUTE.term(), attr.term()));
            attribute_iris.push(attr);
        }
    }
    for (position, attr) in attribute_iris.iter().enumerate() {
        ontology.set_attribute_position(&wrapper, attr, position);
    }
    Ok(Registration {
        source,
        wrapper,
        attributes: attribute_iris,
        reused,
        minted,
    })
}

fn is_safe_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn register_figure6_sources_and_wrappers() {
        let mut o = BdiOntology::new();
        register_source(&mut o, "PlayersAPI").unwrap();
        register_source(&mut o, "TeamsAPI").unwrap();
        let r1 = register_wrapper(
            &mut o,
            "PlayersAPI",
            "w1",
            1,
            &strings(&["id", "pName", "height", "weight", "score", "foot", "teamId"]),
        )
        .unwrap();
        let r2 = register_wrapper(
            &mut o,
            "TeamsAPI",
            "w2",
            1,
            &strings(&["id", "name", "shortName"]),
        )
        .unwrap();
        assert_eq!(o.data_sources().len(), 2);
        assert_eq!(o.wrappers().len(), 2);
        assert_eq!(r1.attributes.len(), 7);
        assert_eq!(r1.minted.len(), 7);
        assert!(r1.reused.is_empty());
        // Attributes are returned (and stored) in signature order.
        let names: Vec<String> = o
            .attributes_of(&r1.wrapper)
            .iter()
            .map(|a| BdiOntology::attribute_name(a).to_string())
            .collect();
        assert_eq!(
            names,
            vec!["id", "pName", "height", "weight", "score", "foot", "teamId"]
        );
        // Same-named attributes across *different* sources stay distinct.
        assert_ne!(r1.attributes[0], r2.attributes[0]);
        assert_eq!(o.wrapper_version(&r1.wrapper), Some(1));
    }

    #[test]
    fn attribute_reuse_within_source() {
        let mut o = BdiOntology::new();
        register_source(&mut o, "PlayersAPI").unwrap();
        let r1 = register_wrapper(
            &mut o,
            "PlayersAPI",
            "w1",
            1,
            &strings(&["id", "pName", "teamId"]),
        )
        .unwrap();
        // The evolved wrapper keeps id/teamId, renames pName, adds nationality.
        let r2 = register_wrapper(
            &mut o,
            "PlayersAPI",
            "w3",
            2,
            &strings(&["id", "pName", "teamId", "nationality"]),
        )
        .unwrap();
        assert_eq!(r2.reused, vec!["id", "pName", "teamId"]);
        assert_eq!(r2.minted, vec!["nationality"]);
        // Reused names resolve to the identical IRIs.
        assert_eq!(r1.attributes[0], r2.attributes[0]);
        // Both wrappers list the shared attribute.
        assert_eq!(o.attributes_of(&r1.wrapper).len(), 3);
        assert_eq!(o.attributes_of(&r2.wrapper).len(), 4);
    }

    #[test]
    fn signature_order_preserved_per_wrapper_even_when_shared() {
        let mut o = BdiOntology::new();
        register_source(&mut o, "S").unwrap();
        register_wrapper(&mut o, "S", "wa", 1, &strings(&["a", "b"])).unwrap();
        register_wrapper(&mut o, "S", "wb", 2, &strings(&["b", "a"])).unwrap();
        let wa = BdiOntology::wrapper_iri("wa");
        let wb = BdiOntology::wrapper_iri("wb");
        let names = |w: &Iri| -> Vec<String> {
            o.attributes_of(w)
                .iter()
                .map(|a| BdiOntology::attribute_name(a).to_string())
                .collect()
        };
        assert_eq!(names(&wa), vec!["a", "b"]);
        assert_eq!(names(&wb), vec!["b", "a"]);
    }

    #[test]
    fn unknown_source_rejected() {
        let mut o = BdiOntology::new();
        let err = register_wrapper(&mut o, "Nope", "w1", 1, &strings(&["id"])).unwrap_err();
        assert!(err.message().contains("unknown data source"));
    }

    #[test]
    fn duplicate_wrapper_rejected() {
        let mut o = BdiOntology::new();
        register_source(&mut o, "S").unwrap();
        register_wrapper(&mut o, "S", "w1", 1, &strings(&["id"])).unwrap();
        let err = register_wrapper(&mut o, "S", "w1", 2, &strings(&["id"])).unwrap_err();
        assert!(err.message().contains("already registered"));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut o = BdiOntology::new();
        assert!(register_source(&mut o, "bad name").is_err());
        assert!(register_source(&mut o, "").is_err());
        register_source(&mut o, "S").unwrap();
        assert!(register_wrapper(&mut o, "S", "w 1", 1, &strings(&["id"])).is_err());
        assert!(register_wrapper(&mut o, "S", "w1", 1, &strings(&["bad attr"])).is_err());
        assert!(register_wrapper(&mut o, "S", "w1", 1, &[]).is_err());
    }

    #[test]
    fn source_registration_is_idempotent() {
        let mut o = BdiOntology::new();
        let a = register_source(&mut o, "S").unwrap();
        let b = register_source(&mut o, "S").unwrap();
        assert_eq!(a, b);
        assert_eq!(o.data_sources().len(), 1);
    }
}

//! # mdm-core
//!
//! The primary contribution of *MDM: Governing Evolution in Big Data
//! Ecosystems* (Nadal, Abelló, Romero, Vansummeren, Vassiliadis — EDBT 2018):
//! a metadata management system that integrates continuously-evolving data
//! sources behind a vocabulary-based integration-oriented ontology, with
//! **LAV mappings** and a **dedicated query-rewriting algorithm** that
//! resolves ontology-mediated queries into unions of conjunctive queries
//! over wrappers — transparently spanning multiple schema versions.
//!
//! ## Layers
//!
//! * [`ontology`] — the BDI ontology: a **global graph** (concepts,
//!   features, user-defined relations, `sc:identifier` subtyping) and a
//!   **source graph** (data sources, wrappers, attributes), both RDF.
//! * [`release`] — the evolution lifecycle: registering sources and wrapper
//!   releases, schema extraction, attribute reuse across versions (§2.2).
//! * [`mapping`] — LAV mappings as RDF *named graphs* (one per wrapper) plus
//!   `owl:sameAs` attribute→feature links, with validation (§2.3).
//! * [`walk`] — OMQs posed as *walks*: connected subgraphs of the global
//!   graph (§2.4).
//! * [`expansion`] / [`intra`] / [`inter`] — the three rewriting phases:
//!   query expansion, intra-concept generation, inter-concept generation.
//! * [`rewrite`] — the pipeline gluing the phases into a relational-algebra
//!   plan over wrappers (the expression of Figure 8).
//! * [`sparql_gen`] — the walk → SPARQL translation the MDM UI displays.
//! * [`gav`] — a GAV (global-as-view) baseline rewriter, used to measure the
//!   robustness gap under schema evolution that motivates the paper.
//! * [`query`] — end-to-end OMQ execution over a wrapper catalog.
//! * [`render`] — deterministic textual renderings of the paper's figures
//!   (global graph, source graph, mappings, query artifacts).
//! * [`repo`] — snapshot/restore of the whole metadata state.
//! * [`journal`] / [`durable`] — steward mutations as replayable journal
//!   ops, bound to the `mdm-store` WAL for crash recovery.
//! * [`mdm`] — the [`mdm::Mdm`] facade: the steward and analyst APIs.
//!
//! ## Example: the four interactions of the paper
//!
//! ```
//! use mdm_core::{Mdm, Walk};
//! use mdm_core::mapping::MappingBuilder;
//! use mdm_rdf::Iri;
//! use mdm_wrappers::{Wrapper, Signature, Release, Format};
//!
//! let mut mdm = Mdm::new();
//!
//! // (a) the data steward defines the global graph …
//! let player = Iri::new("http://example.org/Player");
//! let name = Iri::new("http://example.org/playerName");
//! let id = Iri::new("http://example.org/playerId");
//! mdm.define_concept(&player)?;
//! mdm.define_identifier(&player, &id)?;
//! mdm.define_feature(&player, &name)?;
//!
//! // (b) … registers a source and a wrapper over one of its releases …
//! mdm.add_source("PlayersAPI")?;
//! let release = Release {
//!     version: 1,
//!     format: Format::Json,
//!     body: r#"[{"id": 6176, "name": "Lionel Messi"}]"#.into(),
//!     notes: "initial release".into(),
//! };
//! mdm.register_wrapper(Wrapper::over_release(
//!     Signature::new("w1", ["id", "pName"]).expect("valid signature"),
//!     "PlayersAPI",
//!     release,
//!     [("id", "id"), ("pName", "name")],
//! ).expect("valid bindings"))?;
//!
//! // (c) … and draws the LAV mapping (the Figure 7 contour).
//! mdm.define_mapping(
//!     MappingBuilder::for_wrapper("w1")
//!         .cover_concept(&player)
//!         .cover_feature(&id)
//!         .cover_feature(&name)
//!         .same_as("id", &id)
//!         .same_as("pName", &name),
//! )?;
//!
//! // (d) the analyst poses an OMQ as a walk; MDM rewrites and federates.
//! let answer = mdm.query(&Walk::new().feature(&player, &name))?;
//! assert!(answer.rewriting.sparql.contains("SELECT"));
//! assert!(answer.render().contains("Lionel Messi"));
//! # Ok::<(), mdm_core::MdmError>(())
//! ```

pub mod assist;
pub mod cache;
pub mod changes;
pub mod durable;
pub mod error;
pub mod expansion;
pub mod footprint;
pub mod gav;
pub mod inter;
pub mod intra;
pub mod journal;
pub mod mapping;
pub mod mdm;
pub mod ontology;
pub mod query;
pub mod release;
pub mod render;
pub mod repo;
pub mod rewrite;
pub mod sparql_gen;
pub mod stats;
pub mod synthetic;
#[cfg(test)]
pub(crate) mod testkit;
pub mod usecase;
pub mod walk;
pub mod walk_dsl;

pub use cache::{CacheStats, InvalidationMode, Lookup, PlanCache};
pub use changes::{ChangeLog, ChangeRecord};
pub use durable::{MetaStore, RecoveryReport};
pub use error::MdmError;
pub use footprint::Footprint;
pub use journal::{JournalSink, MutationOp};
pub use mdm::Mdm;
pub use mdm_store::FsyncPolicy;
pub use ontology::BdiOntology;
pub use query::{Completeness, DegradedAnswer, DroppedBranch, QueryAnswer};
pub use rewrite::{rewrite_walk, RewriteArtifacts, RewriteOptions, Rewriting};
pub use walk::Walk;

//! The MDM facade: the four kinds of interaction the paper demonstrates
//! (§2): (a) definition of the global graph, (b) registration of wrappers,
//! (c) definition of LAV mappings, (d) querying the global graph.

use std::collections::BTreeSet;
use std::sync::Arc;

use mdm_rdf::term::Iri;
use mdm_relational::{
    explain_tree, pool, BreakerConfig, BreakerRegistry, BreakerSnapshot, Catalog, Deadline,
    ExecOptions, Executor, Layout, OptimizeMode, Optimizer, Plan, Pool, PoolStats, RetryPolicy,
    ScanCache, StatsCatalog, StatsSnapshot,
};
use mdm_wrappers::{FaultPlan, Wrapper, WrapperCatalog};

use crate::cache::{CacheStats, InvalidationMode, Lookup, PlanCache};
use crate::changes::{ChangeLog, ChangeRecord, DEFAULT_CHANGELOG_CAPACITY};
use crate::error::MdmError;
use crate::gav::GavMapping;
use crate::intra::partial_walks;
use crate::journal::{JournalSink, MutationOp};
use crate::mapping::MappingBuilder;
use crate::ontology::BdiOntology;
use crate::query::{answer_walk_with, execute_degraded, DegradedAnswer, QueryAnswer};
use crate::release::{register_source, register_wrapper, Registration};
use crate::render;
use crate::rewrite::{
    assemble, rewrite_walk, rewrite_walk_with_artifacts, RewriteArtifacts, RewriteOptions,
    Rewriting,
};
use crate::walk::Walk;

/// Outcome of onboarding one wrapper via [`Mdm::onboard_source`].
#[derive(Clone, Debug)]
pub struct OnboardReport {
    pub wrapper: String,
    /// True when the suggested mapping was complete and applied.
    pub mapped: bool,
    /// Accepted suggestion count.
    pub suggestions: usize,
    /// Attributes without any mapping candidate.
    pub unmatched: Vec<String>,
    /// Covered concepts whose identifier stayed unmapped (compact IRIs).
    pub identifier_gaps: Vec<String>,
}

/// The Metadata Management System.
///
/// Owns the BDI ontology (metadata level) and the wrapper catalog
/// (execution level); the steward methods mutate the former and register
/// into the latter, the analyst methods rewrite and execute.
pub struct Mdm {
    ontology: BdiOntology,
    catalog: WrapperCatalog,
    options: RewriteOptions,
    /// Metadata epoch: bumped by every successful steward mutation, so
    /// derived artifacts (cached plans) can be validated against the
    /// metadata they were computed from.
    epoch: u64,
    plan_cache: PlanCache,
    /// Retry policy applied to every relation fetch during execution.
    retry: RetryPolicy,
    /// Per-wrapper circuit breakers shared by all query executions.
    breakers: BreakerRegistry,
    /// Worker pool fanning union branches (and large join probes) out
    /// across cores. `None` forces the legacy sequential path.
    pool: Option<Arc<Pool>>,
    /// Upper bound on tuples moved per operator batch while draining
    /// queries (the executor still adapts downward for small inputs).
    batch_size: usize,
    /// Physical data layout queries execute under: columnar (the default)
    /// or the row-at-a-time escape hatch.
    layout: Layout,
    /// Cardinality statistics feeding the cost-based optimizer. Shared with
    /// every executor this instance builds (scans feed observations back)
    /// and versioned by its own **stats epoch** — bumped by
    /// [`Mdm::refresh_stats`], never by metadata mutations.
    stats: Arc<StatsCatalog>,
    /// Plan-optimization mode applied before execution: `Cost` (default),
    /// `Heuristic`, or `Off`. Never changes query *results*, only the
    /// physical plan shape.
    optimize: OptimizeMode,
    /// Durability hook: every successful steward mutation is handed here as
    /// a [`MutationOp`] stamped with the post-mutation epoch. `None` (the
    /// default) keeps the instance purely in-memory.
    journal: Option<Arc<dyn JournalSink>>,
    /// The evolution changefeed: a bounded history of committed mutations
    /// with their footprints, serving `GET /changes?since=epoch` and the
    /// CLI `changes` command on every role (see [`crate::changes`]).
    changes: ChangeLog,
}

impl Default for Mdm {
    fn default() -> Self {
        Self::new()
    }
}

impl Mdm {
    /// A fresh, empty system.
    pub fn new() -> Self {
        Mdm {
            ontology: BdiOntology::new(),
            catalog: WrapperCatalog::new(),
            options: RewriteOptions::default(),
            epoch: 0,
            plan_cache: PlanCache::default(),
            retry: RetryPolicy::default(),
            breakers: BreakerRegistry::default(),
            pool: Some(pool::global()),
            batch_size: mdm_relational::physical::DEFAULT_BATCH,
            layout: Layout::default(),
            stats: mdm_relational::stats::global(),
            optimize: OptimizeMode::default(),
            journal: None,
            changes: ChangeLog::new(DEFAULT_CHANGELOG_CAPACITY),
        }
    }

    /// Sets the execution parallelism: `0` selects the process-wide shared
    /// pool sized from `available_parallelism`, `1` forces the legacy
    /// sequential path, and any other `n` builds a dedicated `n`-worker
    /// pool for this instance.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = match threads {
            0 => Some(pool::global()),
            1 => None,
            n => Some(Arc::new(Pool::new(n))),
        };
    }

    /// The number of workers query execution fans out on (1 = sequential).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.size())
    }

    /// Counters of the worker pool, if one is attached (for `/metrics`).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Sets the operator batch width used while draining queries. `0`
    /// restores the default. The executor caps the effective width at the
    /// query's input cardinality, so large values only matter for large
    /// inputs.
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = if batch_size == 0 {
            mdm_relational::physical::DEFAULT_BATCH
        } else {
            batch_size
        };
    }

    /// The configured operator batch width.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Sets the physical data layout for query execution: columnar runs
    /// the vectorized term-id kernels (the default), row restores the
    /// tuple-at-a-time engine. Results are byte-identical either way.
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
    }

    /// The configured physical data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Sets the plan-optimization mode: `cost` (default) runs the full
    /// stats-driven pipeline, `heuristic` only the stats-free rewrites,
    /// `off` executes rewritings verbatim. Results are identical in all
    /// three; only execution cost changes.
    pub fn set_optimize(&mut self, mode: OptimizeMode) {
        self.optimize = mode;
    }

    /// The configured plan-optimization mode.
    pub fn optimize_mode(&self) -> OptimizeMode {
        self.optimize
    }

    /// Replaces the statistics catalog — embedders and tests wanting
    /// isolation from the process-wide one.
    pub fn set_stats_catalog(&mut self, stats: Arc<StatsCatalog>) {
        self.stats = stats;
    }

    /// The current stats epoch (see [`Mdm::refresh_stats`]).
    pub fn stats_epoch(&self) -> u64 {
        self.stats.epoch()
    }

    /// The steward's "re-profile the ecosystem" action: bumps the stats
    /// epoch so the next scan of each relation re-observes it and every
    /// cached plan is re-optimized on next use. Takes `&self` and does
    /// **not** touch the metadata epoch — a stats refresh is not a release,
    /// so cached rewritings (and golden outputs) survive it.
    pub fn refresh_stats(&self) -> u64 {
        self.stats.refresh()
    }

    /// Inventory + counters of the statistics catalog (for `/metrics` and
    /// the CLI `stats` command).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Execution options for one query: the instance's retry policy, pool
    /// and metadata epoch (the scan-cache key component), plus the caller's
    /// deadline.
    fn exec_options(&self, deadline: Deadline) -> ExecOptions {
        ExecOptions {
            retry: self.retry.clone(),
            deadline,
            pool: self.pool.clone(),
            batch_size: self.batch_size,
            epoch: self.epoch,
            layout: self.layout,
            stats: Some(Arc::clone(&self.stats)),
        }
    }

    /// The metadata epoch. Strictly increases across steward mutations;
    /// two equal epochs guarantee the metadata (and thus every rewriting)
    /// is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters of the rewrite-plan cache backing [`Mdm::rewrite_cached`].
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Attaches (or detaches) the durability sink. Replay attaches it only
    /// *after* recovery completes, so replayed mutations never re-journal.
    pub fn set_journal(&mut self, sink: Option<Arc<dyn JournalSink>>) {
        self.journal = sink;
    }

    /// The attached durability sink, if any (drain paths flush through it).
    pub fn journal(&self) -> Option<&Arc<dyn JournalSink>> {
        self.journal.as_ref()
    }

    /// Commits one successfully applied mutation: bumps the metadata epoch,
    /// feeds the plan cache's invalidation log (which sweeps overlapping
    /// entries and slides disjoint ones forward), appends the changefeed
    /// record, and hands the op to the journal. Every steward mutator
    /// funnels through here, so the four surfaces cannot drift.
    ///
    /// A failing journal sink does not undo the in-memory change; the sink
    /// reports the durability loss through its own health surface
    /// (`/healthz` flips to `degraded`).
    fn commit(&mut self, op: MutationOp) {
        self.epoch += 1;
        let footprint = op.footprint();
        let extension = op.is_extension();
        self.plan_cache
            .note_mutation(self.epoch, footprint.clone(), extension);
        self.changes.push(ChangeRecord {
            epoch: self.epoch,
            kind: op.kind(),
            summary: op.summary(),
            footprint,
            extension,
        });
        if let Some(sink) = &self.journal {
            let _ = sink.record(&op, self.epoch);
        }
    }

    /// Changefeed records with `epoch > since`, oldest first, at most
    /// `limit`; the boolean reports cursor truncation (see
    /// [`ChangeLog::since`]).
    pub fn changes_since(&self, since: u64, limit: usize) -> (Vec<ChangeRecord>, bool) {
        self.changes.since(since, limit)
    }

    /// Switches the plan cache between surgical (footprint-interval) and
    /// coarse (epoch-equality) invalidation — the A/B knob for the churn
    /// experiment.
    pub fn set_invalidation_mode(&self, mode: InvalidationMode) {
        self.plan_cache.set_invalidation_mode(mode);
    }

    /// The plan cache's active invalidation mode.
    pub fn invalidation_mode(&self) -> InvalidationMode {
        self.plan_cache.invalidation_mode()
    }

    /// Raises the epoch to at least `floor`. A freshly restored [`Mdm`]
    /// starts at epoch 0; a long-running service swapping it in calls this
    /// with its previous epoch + 1 so observers see time move forward only.
    pub fn ensure_epoch_at_least(&mut self, floor: u64) {
        if self.epoch < floor {
            self.epoch = floor;
        }
    }

    /// The ontology (read-only).
    pub fn ontology(&self) -> &BdiOntology {
        &self.ontology
    }

    /// The wrapper catalog (read-only).
    pub fn catalog(&self) -> &WrapperCatalog {
        &self.catalog
    }

    /// Sets the rewriting options (distinct on/off). Options shape the
    /// generated plans, so this bumps the epoch like a metadata change.
    pub fn set_options(&mut self, options: RewriteOptions) {
        let op = MutationOp::SetOptions {
            distinct: options.distinct,
            max_branches: options.max_branches as u64,
        };
        self.options = options;
        self.commit(op);
    }

    /// Binds a rendering prefix on the underlying ontology. Prefixes flow
    /// into compacted column names, hence into plans: epoch bump.
    pub(crate) fn bind_prefix_internal(&mut self, prefix: &str, namespace: &str) {
        self.ontology.bind_prefix(prefix, namespace);
        self.commit(MutationOp::BindPrefix {
            prefix: prefix.to_string(),
            namespace: namespace.to_string(),
        });
    }

    // ------------------------------------------------------------------
    // (a) Definition of the global graph
    // ------------------------------------------------------------------

    /// Declares a concept.
    pub fn define_concept(&mut self, concept: &Iri) -> Result<(), MdmError> {
        self.ontology.add_concept(concept)?;
        self.commit(MutationOp::DefineConcept {
            concept: concept.to_string(),
        });
        Ok(())
    }

    /// Declares a feature of a concept.
    pub fn define_feature(&mut self, concept: &Iri, feature: &Iri) -> Result<(), MdmError> {
        self.ontology.add_feature(concept, feature)?;
        self.commit(MutationOp::DefineFeature {
            concept: concept.to_string(),
            feature: feature.to_string(),
            identifier: false,
        });
        Ok(())
    }

    /// Declares the identifier feature of a concept.
    pub fn define_identifier(&mut self, concept: &Iri, feature: &Iri) -> Result<(), MdmError> {
        self.ontology.add_identifier(concept, feature)?;
        self.commit(MutationOp::DefineFeature {
            concept: concept.to_string(),
            feature: feature.to_string(),
            identifier: true,
        });
        Ok(())
    }

    /// Relates two concepts.
    pub fn define_relation(
        &mut self,
        from: &Iri,
        property: &Iri,
        to: &Iri,
    ) -> Result<(), MdmError> {
        self.ontology.add_relation(from, property, to)?;
        self.commit(MutationOp::DefineRelation {
            from: from.to_string(),
            property: property.to_string(),
            to: to.to_string(),
        });
        Ok(())
    }

    /// Declares a concept taxonomy edge.
    pub fn define_subconcept(&mut self, sub: &Iri, sup: &Iri) -> Result<(), MdmError> {
        self.ontology.add_subconcept(sub, sup)?;
        self.commit(MutationOp::DefineSubconcept {
            sub: sub.to_string(),
            sup: sup.to_string(),
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // (b) Registration of data sources and wrappers
    // ------------------------------------------------------------------

    /// Registers a data source.
    pub fn add_source(&mut self, name: &str) -> Result<Iri, MdmError> {
        let iri = register_source(&mut self.ontology, name)?;
        self.commit(MutationOp::AddSource {
            name: name.to_string(),
        });
        Ok(iri)
    }

    /// Registers a wrapper release: extracts its schema into the source
    /// graph (reusing attributes of earlier releases of the same source)
    /// *and* installs the runnable wrapper in the execution catalog.
    ///
    /// The wrapper's signature and the metadata registration are taken from
    /// the same object, so they cannot drift.
    pub fn register_wrapper(&mut self, wrapper: Wrapper) -> Result<Registration, MdmError> {
        let attributes: Vec<String> = wrapper.signature().attributes().to_vec();
        let registration = self.register_wrapper_metadata(
            wrapper.source(),
            wrapper.name(),
            wrapper.version(),
            &attributes,
        )?;
        self.catalog.register(wrapper);
        Ok(registration)
    }

    /// Installs an executable wrapper into the catalog **without** touching
    /// metadata, the epoch, or the journal. This is the replica hydration
    /// path: journal replay registers wrapper *metadata* only (payloads are
    /// data, not metadata), so a replica fetches each payload from its
    /// primary and installs it here. The wrapper must already be known to
    /// the replayed metadata — hydrating an undeclared wrapper is an error,
    /// because plans would never route to it anyway.
    pub fn hydrate_wrapper(&mut self, wrapper: Wrapper) -> Result<(), MdmError> {
        let name = wrapper.name();
        let declared = self
            .ontology
            .wrappers()
            .iter()
            .any(|iri| iri.local_name() == name);
        if !declared {
            return Err(MdmError::Registration(format!(
                "cannot hydrate wrapper '{name}': not declared in the replayed metadata"
            )));
        }
        self.catalog.register(wrapper);
        Ok(())
    }

    /// Registers a wrapper's *metadata* (source-graph schema) without a
    /// runnable payload. This is what the journal replays on recovery —
    /// wrapper payloads are data, not metadata, so like
    /// [`Mdm::restore_metadata`] the execution catalog must be repopulated
    /// separately.
    pub fn register_wrapper_metadata(
        &mut self,
        source: &str,
        wrapper: &str,
        version: u32,
        attributes: &[String],
    ) -> Result<Registration, MdmError> {
        let registration =
            register_wrapper(&mut self.ontology, source, wrapper, version, attributes)?;
        self.commit(MutationOp::RegisterWrapper {
            source: source.to_string(),
            wrapper: wrapper.to_string(),
            version,
            attributes: attributes.to_vec(),
        });
        Ok(registration)
    }

    /// One-call onboarding of a source release: instantiates the wrappers a
    /// declarative config describes (see [`mdm_wrappers::config`]), registers
    /// each, runs the mapping-suggestion engine, and applies every draft
    /// that is complete. Returns a per-wrapper report; wrappers whose draft
    /// has gaps stay registered-but-unmapped for the steward to finish.
    ///
    /// This is the paper's "semi-automatically integrate new sources"
    /// pipeline end to end.
    pub fn onboard_source(
        &mut self,
        endpoint: &mdm_wrappers::RestSource,
        config_text: &str,
    ) -> Result<Vec<OnboardReport>, MdmError> {
        let config = mdm_wrappers::config::parse(config_text)
            .map_err(|e| MdmError::Registration(e.to_string()))?;
        let wrappers = config
            .instantiate(endpoint)
            .map_err(|e| MdmError::Registration(e.to_string()))?;
        self.add_source(&config.source)?;
        let mut reports = Vec::with_capacity(wrappers.len());
        for wrapper in wrappers {
            let name = wrapper.name().to_string();
            self.register_wrapper(wrapper)?;
            let draft = crate::assist::suggest_mapping(&self.ontology, &name)?;
            let mapped = if draft.is_applicable() {
                // Route through `define_mapping` so the applied draft is
                // journalled like a hand-written mapping.
                let builder = draft.to_builder(&self.ontology);
                self.define_mapping(builder).is_ok()
            } else {
                false
            };
            reports.push(OnboardReport {
                wrapper: name,
                mapped,
                suggestions: draft.accepted.len(),
                unmatched: draft.unmatched.clone(),
                identifier_gaps: draft
                    .identifier_gaps
                    .iter()
                    .map(|c| self.ontology.compact(c))
                    .collect(),
            });
        }
        Ok(reports)
    }

    // ------------------------------------------------------------------
    // (c) Definition of LAV mappings
    // ------------------------------------------------------------------

    /// Applies a LAV mapping built with [`MappingBuilder`].
    pub fn define_mapping(&mut self, builder: MappingBuilder) -> Result<Iri, MdmError> {
        let op = MutationOp::from_mapping(&builder);
        let graph = builder.apply(&mut self.ontology)?;
        self.commit(op);
        Ok(graph)
    }

    // ------------------------------------------------------------------
    // (d) Querying the global graph
    // ------------------------------------------------------------------

    /// Rewrites a walk without executing it (shows SPARQL + algebra, the
    /// Figure 8 view).
    pub fn rewrite(&self, walk: &Walk) -> Result<Rewriting, MdmError> {
        rewrite_walk(&self.ontology, walk, &self.options)
    }

    /// Like [`Mdm::rewrite`], but consulting the footprint-validated plan
    /// cache first: a walk already rewritten at the current metadata epoch —
    /// or whose cached plan survived every intervening mutation's footprint
    /// test — is served without re-running the three phases, and a plan
    /// stale *only* behind new mapping definitions is repaired by
    /// incremental UCQ extension instead of a cold rewrite. Safe under
    /// concurrency — the cache is internally synchronised, so shared
    /// (`&self`) callers on many threads all benefit.
    pub fn rewrite_cached(&self, walk: &Walk) -> Result<Arc<Rewriting>, MdmError> {
        let key = walk.canonical_key();
        match self.plan_cache.lookup(&key, self.epoch) {
            Lookup::Hit(plan) => Ok(plan),
            Lookup::Extend {
                artifacts,
                affected,
                ..
            } => match self.extend_rewriting(walk, &artifacts, &affected) {
                Ok((rewriting, extended)) => {
                    let rewriting = Arc::new(rewriting);
                    self.plan_cache.insert_extended(
                        key,
                        self.epoch,
                        Arc::clone(&rewriting),
                        Arc::new(extended),
                    );
                    Ok(rewriting)
                }
                // Extension is an optimization, never a correctness
                // dependency: any failure falls back to the cold path.
                Err(_) => self.rewrite_cold(walk, key),
            },
            Lookup::Miss => self.rewrite_cold(walk, key),
        }
    }

    /// The cold path of [`Mdm::rewrite_cached`]: full three-phase rewrite,
    /// cached with its artifacts so later mutations can validate or extend
    /// it surgically.
    fn rewrite_cold(&self, walk: &Walk, key: String) -> Result<Arc<Rewriting>, MdmError> {
        let (rewriting, artifacts) =
            rewrite_walk_with_artifacts(&self.ontology, walk, &self.options)?;
        let rewriting = Arc::new(rewriting);
        self.plan_cache.insert_with_artifacts(
            key,
            self.epoch,
            Arc::clone(&rewriting),
            Arc::new(artifacts),
        );
        Ok(rewriting)
    }

    /// Incremental UCQ extension: re-runs the intra-concept phase (b) only
    /// for walk concepts whose taxonomic closure intersects the concepts
    /// the intervening mappings cover, reuses the cached phase (a)/(b)
    /// outputs for everything else, and re-assembles. [`assemble`] is
    /// deterministic in its inputs, so the result is byte-identical to a
    /// cold rewrite at the same epoch — only cheaper.
    fn extend_rewriting(
        &self,
        walk: &Walk,
        artifacts: &RewriteArtifacts,
        affected: &BTreeSet<String>,
    ) -> Result<(Rewriting, RewriteArtifacts), MdmError> {
        let expanded = artifacts.expanded.clone();
        let mut alternatives = artifacts.alternatives.clone();
        for concept in expanded.walk.concepts() {
            let touched = std::iter::once(concept.clone())
                .chain(self.ontology.subconcepts_of(concept))
                .chain(self.ontology.superconcepts_of(concept))
                .any(|related| affected.contains(&related.to_string()));
            if touched {
                let features = expanded.walk.features_of(concept);
                alternatives.insert(
                    concept.clone(),
                    partial_walks(&self.ontology, concept, features)?,
                );
            }
        }
        assemble(&self.ontology, walk, expanded, alternatives, &self.options)
    }

    /// Applies the configured optimization mode to one plan, consulting the
    /// current statistics.
    fn optimize_plan(&self, plan: Plan) -> Plan {
        let resolve = |name: &str| self.catalog.relation_schema(name);
        Optimizer::new(self.stats.as_ref(), &resolve).optimize_with(self.optimize, plan)
    }

    /// The optimized physical form of a cached rewriting, served from the
    /// plan cache's stats-epoch-keyed side slot: optimization reruns only
    /// when the rewriting itself is fresh or the stats epoch moved on
    /// (a [`Mdm::refresh_stats`]). The *rewriting* entry — keyed by the
    /// metadata epoch — is untouched either way.
    fn optimized_plan(&self, walk: &Walk, rewriting: &Rewriting) -> Arc<Plan> {
        if self.optimize == OptimizeMode::Off {
            return Arc::new(rewriting.plan.clone());
        }
        let key = walk.canonical_key();
        let stats_epoch = self.stats.epoch();
        if let Some(plan) = self
            .plan_cache
            .lookup_optimized(&key, self.epoch, stats_epoch)
        {
            return plan;
        }
        let plan = Arc::new(self.optimize_plan(rewriting.plan.clone()));
        self.plan_cache
            .store_optimized(&key, self.epoch, stats_epoch, Arc::clone(&plan));
        plan
    }

    /// Rewrites through the plan cache and executes against the internal
    /// catalog. Execution always runs (results depend on wrapper *data*,
    /// which is not governed by the metadata epoch); only the rewriting
    /// and plan-optimization work is reused.
    pub fn query_cached(&self, walk: &Walk) -> Result<QueryAnswer, MdmError> {
        let rewriting = self.rewrite_cached(walk)?;
        let plan = self.optimized_plan(walk, &rewriting);
        let table = Executor::with_options(&self.catalog, self.exec_options(Deadline::none()))
            .run(&plan)
            .map_err(MdmError::from_exec)?
            .sorted();
        Ok(QueryAnswer {
            rewriting: (*rewriting).clone(),
            table,
        })
    }

    /// The `explain` surface: the optimized physical plan tree, each
    /// operator annotated with its estimated cardinality and — because
    /// MDM queries run against live wrappers anyway — the actual row count
    /// obtained by executing that subtree (one shared scan cache keeps
    /// every wrapper fetched once despite the per-node runs).
    pub fn explain_plan(&self, walk: &Walk) -> Result<String, MdmError> {
        let rewriting = self.rewrite_cached(walk)?;
        let plan = self.optimized_plan(walk, &rewriting);
        let resolve = |name: &str| self.catalog.relation_schema(name);
        let optimizer = Optimizer::new(self.stats.as_ref(), &resolve);
        let exec_options = self.exec_options(Deadline::none());
        let cache = ScanCache::new();
        let actual = |subtree: &Plan| {
            Executor::with_options(&self.catalog, exec_options.clone())
                .with_scan_cache(&cache)
                .run(subtree)
                .ok()
                .map(|table| table.len())
        };
        Ok(explain_tree(&plan, &|p| optimizer.estimate(p), &actual))
    }

    /// Rewrites and executes a walk against the internal wrapper catalog.
    pub fn query(&self, walk: &Walk) -> Result<QueryAnswer, MdmError> {
        answer_walk_with(
            &self.ontology,
            walk,
            &self.catalog,
            &self.options,
            &self.exec_options(Deadline::none()),
        )
    }

    /// Executes a walk in **degraded mode** under a deadline: the rewriting
    /// comes from the plan cache, every relation fetch goes through the
    /// retry policy and the per-wrapper circuit breakers, and a CQ branch
    /// that fails terminally is dropped (named in the completeness report)
    /// instead of failing the whole query. Only when no branch survives —
    /// or the deadline expires before any does — is this an `Err`.
    pub fn query_degraded(
        &self,
        walk: &Walk,
        deadline: Deadline,
    ) -> Result<DegradedAnswer, MdmError> {
        let rewriting = self.rewrite_cached(walk)?;
        let exec_options = self.exec_options(deadline);
        // Branch plans are derived per query (they depend on the distinct
        // flag and drop independently), so degraded mode optimizes each
        // branch inline instead of going through the plan-cache side slot.
        let optimize = |plan: Plan| self.optimize_plan(plan);
        let (table, mut completeness) = execute_degraded(
            &rewriting,
            &self.catalog,
            &self.options,
            &exec_options,
            Some(&self.breakers),
            (self.optimize != OptimizeMode::Off).then_some(&optimize as &dyn Fn(Plan) -> Plan),
        )?;
        // Enrich wrapper names with the version each one consumes
        // (`w3@v2`), so completeness reports pin down *which release*
        // contributed or was dropped.
        let label = |name: &String| match self.catalog.get(name) {
            Some(w) => format!("{name}@v{}", w.version()),
            None => name.clone(),
        };
        completeness.contributors = completeness.contributors.iter().map(label).collect();
        for dropped in &mut completeness.dropped {
            dropped.wrappers = dropped.wrappers.iter().map(label).collect();
        }
        Ok(DegradedAnswer {
            rewriting: (*rewriting).clone(),
            table,
            completeness,
        })
    }

    /// Attaches (or detaches) a fault-injection schedule to every wrapper
    /// in the catalog — the test/chaos hook behind `--fault-seed`.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.catalog.set_fault_plan(plan);
    }

    /// Sets the retry policy used by [`Mdm::query_degraded`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry policy used by [`Mdm::query_degraded`].
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Replaces the circuit-breaker configuration (and resets all state).
    pub fn set_breaker_config(&mut self, config: BreakerConfig) {
        self.breakers = BreakerRegistry::new(config);
    }

    /// Current circuit-breaker state per wrapper, for `/metrics`.
    pub fn breaker_snapshots(&self) -> Vec<BreakerSnapshot> {
        self.breakers.snapshot()
    }

    /// Like [`Mdm::query`], with a trailing `provenance` column naming the
    /// union branch (wrapper set) each row came from.
    pub fn query_with_provenance(&self, walk: &Walk) -> Result<QueryAnswer, MdmError> {
        crate::query::answer_walk_with_provenance(
            &self.ontology,
            walk,
            &self.catalog,
            &self.options,
        )
    }

    /// Rewrites and executes against an external catalog (tests/benches).
    pub fn query_with(&self, walk: &Walk, catalog: &dyn Catalog) -> Result<QueryAnswer, MdmError> {
        answer_walk_with(
            &self.ontology,
            walk,
            catalog,
            &self.options,
            &self.exec_options(Deadline::none()),
        )
    }

    /// Derives a GAV baseline mapping from the current metadata.
    pub fn derive_gav(&self) -> Result<GavMapping, MdmError> {
        GavMapping::derive(&self.ontology)
    }

    // ------------------------------------------------------------------
    // Renderings (the figures)
    // ------------------------------------------------------------------

    /// Figure 5: the global graph listing.
    pub fn render_global_graph(&self) -> String {
        render::global_graph_text(&self.ontology)
    }

    /// Figure 6: the source graph listing.
    pub fn render_source_graph(&self) -> String {
        render::source_graph_text(&self.ontology)
    }

    /// Figure 7: the LAV mapping listing.
    pub fn render_mappings(&self) -> String {
        render::mappings_text(&self.ontology)
    }

    /// The whole metadata state as TriG.
    pub fn render_trig(&self) -> String {
        render::ontology_trig(&self.ontology)
    }

    /// Serialises the metadata state (not the wrapper payloads). The text is
    /// epoch-free so that snapshot → restore → snapshot is a byte fixpoint;
    /// the durable store stamps the epoch itself (snapshot header + WAL
    /// header) via [`Mdm::snapshot_stamped`].
    pub fn snapshot(&self) -> String {
        crate::repo::snapshot(&self.ontology)
    }

    /// Like [`Mdm::snapshot`] but with the metadata epoch stamped into the
    /// header, so a restored process continues the epoch sequence instead of
    /// silently resetting it. This is what the durable store persists.
    pub fn snapshot_stamped(&self) -> String {
        crate::repo::snapshot_with_epoch(&self.ontology, self.epoch)
    }

    /// Restores the metadata state from a snapshot, **including the epoch**
    /// if one is stamped in its header (plain snapshots restore at 0 —
    /// callers wanting in-process monotonicity bump it, see the server's
    /// restore route); wrappers must be re-registered into the catalog
    /// separately (payloads are data, not metadata).
    pub fn restore_metadata(document: &str) -> Result<Mdm, MdmError> {
        let (ontology, epoch) = crate::repo::restore_with_epoch(document)?;
        Ok(Mdm {
            ontology,
            catalog: WrapperCatalog::new(),
            options: RewriteOptions::default(),
            epoch,
            plan_cache: PlanCache::default(),
            retry: RetryPolicy::default(),
            breakers: BreakerRegistry::default(),
            pool: Some(pool::global()),
            batch_size: mdm_relational::physical::DEFAULT_BATCH,
            layout: Layout::default(),
            stats: mdm_relational::stats::global(),
            optimize: OptimizeMode::default(),
            journal: None,
            changes: ChangeLog::new(DEFAULT_CHANGELOG_CAPACITY),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_rdf::vocab;
    use mdm_wrappers::football;

    fn ex(local: &str) -> Iri {
        Iri::new(format!("{}{local}", vocab::EXAMPLE_NS))
    }

    /// Sets up the full motivational use case through the facade, backed by
    /// the simulated football APIs.
    pub(crate) fn football_mdm() -> Mdm {
        let eco = football::build_default();
        let mut mdm = Mdm::new();
        let player = ex("Player");
        let team = vocab::schema::SPORTS_TEAM.iri();

        // (a) global graph.
        mdm.define_concept(&player).unwrap();
        mdm.define_concept(&team).unwrap();
        mdm.define_identifier(&player, &ex("playerId")).unwrap();
        mdm.define_feature(&player, &ex("playerName")).unwrap();
        mdm.define_feature(&player, &ex("height")).unwrap();
        mdm.define_feature(&player, &ex("weight")).unwrap();
        mdm.define_feature(&player, &ex("score")).unwrap();
        mdm.define_feature(&player, &ex("foot")).unwrap();
        mdm.define_identifier(&team, &ex("teamId")).unwrap();
        mdm.define_feature(&team, &ex("teamName")).unwrap();
        mdm.define_feature(&team, &ex("shortName")).unwrap();
        mdm.define_relation(&player, &ex("hasTeam"), &team).unwrap();

        // (b) sources + wrappers.
        mdm.add_source("PlayersAPI").unwrap();
        mdm.add_source("TeamsAPI").unwrap();
        mdm.register_wrapper(football::w1_players_v1(&eco)).unwrap();
        mdm.register_wrapper(football::w2_teams(&eco)).unwrap();

        // (c) LAV mappings (Figure 7).
        mdm.define_mapping(
            MappingBuilder::for_wrapper("w1")
                .cover_concept(&player)
                .cover_concept(&team)
                .cover_feature(&ex("playerId"))
                .cover_feature(&ex("playerName"))
                .cover_feature(&ex("height"))
                .cover_feature(&ex("weight"))
                .cover_feature(&ex("score"))
                .cover_feature(&ex("foot"))
                .cover_feature(&ex("teamId"))
                .cover_relation(&player, &ex("hasTeam"), &team)
                .same_as("id", &ex("playerId"))
                .same_as("pName", &ex("playerName"))
                .same_as("height", &ex("height"))
                .same_as("weight", &ex("weight"))
                .same_as("score", &ex("score"))
                .same_as("foot", &ex("foot"))
                .same_as("teamId", &ex("teamId")),
        )
        .unwrap();
        mdm.define_mapping(
            MappingBuilder::for_wrapper("w2")
                .cover_concept(&team)
                .cover_feature(&ex("teamId"))
                .cover_feature(&ex("teamName"))
                .cover_feature(&ex("shortName"))
                .same_as("id", &ex("teamId"))
                .same_as("name", &ex("teamName"))
                .same_as("shortName", &ex("shortName")),
        )
        .unwrap();
        mdm
    }

    #[test]
    fn end_to_end_figure8_query() {
        let mdm = football_mdm();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&vocab::schema::SPORTS_TEAM.iri(), &ex("teamName"))
            .relation(
                &ex("Player"),
                &ex("hasTeam"),
                &vocab::schema::SPORTS_TEAM.iri(),
            );
        let answer = mdm.query(&walk).unwrap();
        assert!(answer.table.len() >= 2);
        let rendered = answer.render();
        assert!(rendered.contains("Lionel Messi"));
        assert!(rendered.contains("FC Barcelona"));
        // v1 does not serve Zlatan (he ships on the v2 endpoint).
        assert!(!rendered.contains("Zlatan"));
    }

    #[test]
    fn governance_of_evolution_scenario() {
        // §3: release v2 with breaking changes, register w3 + mapping,
        // re-run the query — now both versions are fetched.
        let eco = football::build_default();
        let mut mdm = football_mdm();
        let player = ex("Player");
        let team = vocab::schema::SPORTS_TEAM.iri();
        mdm.define_feature(&player, &ex("nationality")).unwrap();
        mdm.register_wrapper(football::w3_players_v2(&eco)).unwrap();
        mdm.define_mapping(
            MappingBuilder::for_wrapper("w3")
                .cover_concept(&player)
                .cover_concept(&team)
                .cover_feature(&ex("playerId"))
                .cover_feature(&ex("playerName"))
                .cover_feature(&ex("height"))
                .cover_feature(&ex("weight"))
                .cover_feature(&ex("foot"))
                .cover_feature(&ex("nationality"))
                .cover_feature(&ex("teamId"))
                .cover_relation(&player, &ex("hasTeam"), &team)
                .same_as("id", &ex("playerId"))
                .same_as("pName", &ex("playerName"))
                .same_as("height", &ex("height"))
                .same_as("weight", &ex("weight"))
                .same_as("foot", &ex("foot"))
                .same_as("nationality", &ex("nationality"))
                .same_as("teamId", &ex("teamId")),
        )
        .unwrap();

        let walk = Walk::new()
            .feature(&player, &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&player, &ex("hasTeam"), &team);
        let answer = mdm.query(&walk).unwrap();
        let rendered = answer.render();
        assert!(rendered.contains("Lionel Messi"), "{rendered}");
        assert!(rendered.contains("Zlatan Ibrahimovic"), "{rendered}");
        assert!(answer.rewriting.branch_count() >= 2);
        // The union of versions covers every distinct (player, team) pair —
        // DISTINCT collapses synthetic name collisions, so compare sets.
        let team_name = |id: i64| {
            eco.teams
                .iter()
                .find(|t| t.id == id)
                .map(|t| t.name.clone())
                .unwrap_or_default()
        };
        let expected: std::collections::BTreeSet<(String, String)> = eco
            .players
            .iter()
            .map(|p| (p.name.clone(), team_name(p.team_id)))
            .collect();
        assert_eq!(
            answer.table.len(),
            expected.len(),
            "union of versions covers every distinct (player, team) pair"
        );
    }

    #[test]
    fn renderings_are_nonempty() {
        let mdm = football_mdm();
        assert!(mdm.render_global_graph().contains("GLOBAL GRAPH"));
        assert!(mdm.render_source_graph().contains("PlayersAPI"));
        assert!(mdm.render_mappings().contains("named graph w1"));
        assert!(mdm.render_trig().contains("GRAPH"));
    }

    #[test]
    fn restore_preserves_epoch_continuity() {
        // The epoch travels in the *stamped* snapshot header: a restored
        // process continues the sequence instead of silently resetting to 0.
        let mdm = football_mdm();
        let epoch = mdm.epoch();
        assert!(epoch > 0);
        let restored = Mdm::restore_metadata(&mdm.snapshot_stamped()).unwrap();
        assert_eq!(restored.epoch(), epoch);
        // Re-snapshotting the restored state is a byte fixpoint, both for
        // the stamped form and the plain (epoch-free) form.
        assert_eq!(restored.snapshot_stamped(), mdm.snapshot_stamped());
        assert_eq!(restored.snapshot(), mdm.snapshot());
        // The plain form stays epoch-free: restoring it starts a fresh
        // sequence (the durable store always persists the stamped form).
        assert_eq!(Mdm::restore_metadata(&mdm.snapshot()).unwrap().epoch(), 0);
    }

    #[test]
    fn snapshot_round_trip_through_facade() {
        let mdm = football_mdm();
        let snap = mdm.snapshot();
        let restored = Mdm::restore_metadata(&snap).unwrap();
        assert_eq!(restored.ontology().concepts(), mdm.ontology().concepts());
        // Rewriting works on restored metadata (execution needs wrappers).
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&vocab::schema::SPORTS_TEAM.iri(), &ex("teamName"))
            .relation(
                &ex("Player"),
                &ex("hasTeam"),
                &vocab::schema::SPORTS_TEAM.iri(),
            );
        restored.rewrite(&walk).unwrap();
    }

    #[test]
    fn onboarding_pipeline_registers_and_maps() {
        // A fresh Teams-like source onboards fully automatically because its
        // attribute names match global features.
        let mut mdm = football_mdm();
        let mut endpoint = mdm_wrappers::RestSource::new("TeamsMirror");
        endpoint.publish(mdm_wrappers::Release {
            version: 1,
            format: mdm_wrappers::Format::Json,
            body: r#"[{"team_id":25,"team_name":"FC Barcelona","short_name":"FCB"}]"#.to_string(),
            notes: String::new(),
        });
        let config = r#"{
            "source": "TeamsMirror",
            "wrappers": [{
                "name": "wm1",
                "version": 1,
                "bindings": [
                    {"attribute": "teamId",    "column": "team_id"},
                    {"attribute": "teamName",  "column": "team_name"},
                    {"attribute": "shortName", "column": "short_name"}
                ]
            }]
        }"#;
        let reports = mdm.onboard_source(&endpoint, config).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].mapped, "report: {:?}", reports[0]);
        // The onboarded wrapper serves walks immediately.
        let walk = Walk::new().feature(&vocab::schema::SPORTS_TEAM.iri(), &ex("teamName"));
        let answer = mdm.query(&walk).unwrap();
        assert!(answer.rewriting.branch_count() >= 2); // w2 ∪ wm1
    }

    #[test]
    fn onboarding_reports_gaps_without_mapping() {
        let mut mdm = football_mdm();
        let mut endpoint = mdm_wrappers::RestSource::new("NamesOnly");
        endpoint.publish(mdm_wrappers::Release {
            version: 1,
            format: mdm_wrappers::Format::Json,
            body: r#"[{"team_name":"FC Barcelona"}]"#.to_string(),
            notes: String::new(),
        });
        let config = r#"{
            "source": "NamesOnly",
            "wrappers": [{
                "name": "wn1",
                "version": 1,
                "bindings": [{"attribute": "teamName", "column": "team_name"}]
            }]
        }"#;
        let reports = mdm.onboard_source(&endpoint, config).unwrap();
        assert!(!reports[0].mapped);
        assert_eq!(reports[0].identifier_gaps, vec!["sc:SportsTeam"]);
        // Registered but unmapped: metadata knows it, rewriting ignores it.
        assert!(mdm
            .ontology()
            .wrappers()
            .iter()
            .any(|w| w.local_name() == "wn1"));
    }

    #[test]
    fn epoch_increases_with_every_steward_call() {
        let mut mdm = Mdm::new();
        assert_eq!(mdm.epoch(), 0);
        mdm.define_concept(&ex("Player")).unwrap();
        let after_concept = mdm.epoch();
        assert!(after_concept > 0);
        mdm.define_feature(&ex("Player"), &ex("playerName"))
            .unwrap();
        let after_feature = mdm.epoch();
        assert!(after_feature > after_concept);
        // Failed mutations leave the epoch alone.
        assert!(mdm.define_feature(&ex("Ghost"), &ex("x")).is_err());
        assert_eq!(mdm.epoch(), after_feature);
        mdm.set_options(RewriteOptions::default());
        assert!(mdm.epoch() > after_feature);
    }

    #[test]
    fn cached_rewrite_hits_and_matches_uncached() {
        let mdm = football_mdm();
        let team = vocab::schema::SPORTS_TEAM.iri();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&ex("Player"), &ex("hasTeam"), &team);
        let fresh = mdm.rewrite(&walk).unwrap();
        let first = mdm.rewrite_cached(&walk).unwrap();
        let second = mdm.rewrite_cached(&walk).unwrap();
        assert_eq!(first.algebra(), fresh.algebra());
        assert_eq!(first.sparql, second.sparql);
        let stats = mdm.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // query_cached returns the same table as the uncached path.
        let cached_answer = mdm.query_cached(&walk).unwrap();
        let plain_answer = mdm.query(&walk).unwrap();
        assert_eq!(cached_answer.render(), plain_answer.render());
        assert_eq!(mdm.cache_stats().hits, 2);
    }

    #[test]
    fn release_registration_invalidates_cached_plans() {
        // The governance scenario through the cached path: the post-release
        // rewriting must gain the new version's union branch, never serve
        // the pre-release plan.
        let eco = football::build_default();
        let mut mdm = football_mdm();
        let player = ex("Player");
        let team = vocab::schema::SPORTS_TEAM.iri();
        let walk = Walk::new()
            .feature(&player, &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&player, &ex("hasTeam"), &team);
        let before = mdm.query_cached(&walk).unwrap();
        let branches_before = before.rewriting.branch_count();
        assert!(!before.render().contains("Zlatan"));

        mdm.define_feature(&player, &ex("nationality")).unwrap();
        mdm.register_wrapper(football::w3_players_v2(&eco)).unwrap();
        mdm.define_mapping(
            MappingBuilder::for_wrapper("w3")
                .cover_concept(&player)
                .cover_concept(&team)
                .cover_feature(&ex("playerId"))
                .cover_feature(&ex("playerName"))
                .cover_feature(&ex("teamId"))
                .cover_relation(&player, &ex("hasTeam"), &team)
                .same_as("id", &ex("playerId"))
                .same_as("pName", &ex("playerName"))
                .same_as("teamId", &ex("teamId")),
        )
        .unwrap();

        let after = mdm.query_cached(&walk).unwrap();
        assert!(after.rewriting.branch_count() > branches_before);
        assert!(after.render().contains("Zlatan Ibrahimovic"));
        assert!(mdm.cache_stats().invalidations >= 1);
    }

    #[test]
    fn stats_refresh_reoptimizes_without_a_metadata_release() {
        let mut mdm = football_mdm();
        // Isolated catalog: other tests in the process share the global one.
        let stats = Arc::new(StatsCatalog::new());
        mdm.set_stats_catalog(Arc::clone(&stats));
        let team = vocab::schema::SPORTS_TEAM.iri();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&ex("Player"), &ex("hasTeam"), &team);

        let before = mdm.query_cached(&walk).unwrap();
        assert!(
            !stats.snapshot().relations.is_empty(),
            "execution feeds scan observations into the catalog"
        );
        // Second run: the optimized plan serves from the side slot.
        mdm.query_cached(&walk).unwrap();
        assert_eq!(mdm.cache_stats().reoptimizations, 0);

        // Steward refreshes statistics: the stats epoch moves, the
        // metadata epoch must not — a refresh is not a release.
        let metadata_epoch = mdm.epoch();
        let invalidations = mdm.cache_stats().invalidations;
        let hits = mdm.cache_stats().hits;
        let stats_epoch = mdm.refresh_stats();
        assert_eq!(
            mdm.epoch(),
            metadata_epoch,
            "refresh must not touch metadata"
        );
        assert_eq!(mdm.stats_epoch(), stats_epoch);

        let after = mdm.query_cached(&walk).unwrap();
        assert_eq!(after.render(), before.render(), "results are unchanged");
        let cache = mdm.cache_stats();
        assert_eq!(cache.reoptimizations, 1, "cached plan was re-optimized");
        assert_eq!(
            cache.invalidations, invalidations,
            "no rewriting entry was invalidated by the refresh"
        );
        assert!(cache.hits > hits, "the rewriting itself kept serving");
    }

    #[test]
    fn optimize_modes_agree_end_to_end() {
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&vocab::schema::SPORTS_TEAM.iri(), &ex("teamName"))
            .relation(
                &ex("Player"),
                &ex("hasTeam"),
                &vocab::schema::SPORTS_TEAM.iri(),
            );
        let mut renders = Vec::new();
        let mut degraded = Vec::new();
        for mode in [
            OptimizeMode::Off,
            OptimizeMode::Heuristic,
            OptimizeMode::Cost,
        ] {
            let mut mdm = football_mdm();
            mdm.set_optimize(mode);
            assert_eq!(mdm.optimize_mode(), mode);
            renders.push(mdm.query_cached(&walk).unwrap().render());
            degraded.push(
                mdm.query_degraded(&walk, Deadline::none())
                    .unwrap()
                    .render(),
            );
        }
        assert_eq!(renders[0], renders[1]);
        assert_eq!(renders[0], renders[2]);
        assert_eq!(degraded[0], degraded[1]);
        assert_eq!(degraded[0], degraded[2]);
    }

    #[test]
    fn explain_annotates_the_optimized_plan() {
        let mut mdm = football_mdm();
        mdm.set_stats_catalog(Arc::new(StatsCatalog::new()));
        let team = vocab::schema::SPORTS_TEAM.iri();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&team, &ex("teamName"))
            .relation(&ex("Player"), &ex("hasTeam"), &team);
        // Warm the stats so the tree carries estimates, not just actuals.
        mdm.query_cached(&walk).unwrap();
        let tree = mdm.explain_plan(&walk).unwrap();
        assert!(tree.contains("scan w1"), "{tree}");
        assert!(tree.contains("act="), "{tree}");
        assert!(tree.contains("est≈"), "{tree}");
    }

    #[test]
    fn registration_and_metadata_stay_consistent() {
        let mdm = football_mdm();
        // Every catalog wrapper has a source-graph node and vice versa.
        let metadata_wrappers: Vec<String> = mdm
            .ontology()
            .wrappers()
            .iter()
            .map(|w| w.local_name().to_string())
            .collect();
        let catalog_wrappers: Vec<String> = mdm
            .catalog()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(metadata_wrappers.len(), catalog_wrappers.len());
        for name in catalog_wrappers {
            assert!(metadata_wrappers.contains(&name));
        }
    }
}

//! The durable metadata store: `mdm-store`'s WAL/compaction machinery bound
//! to [`Mdm`]'s mutation journal.
//!
//! [`MetaStore`] is the [`JournalSink`] a durable deployment attaches to its
//! [`Mdm`]: every steward mutation appends one encoded [`MutationOp`] to the
//! live generation's write-ahead log, and [`MetaStore::compact`] folds the
//! log into a fresh canonical snapshot. [`MetaStore::attach`] is the
//! open-or-create entry point a process calls on startup: it recovers the
//! latest complete generation (snapshot + surviving WAL prefix), replays
//! the journal, and returns an [`Mdm`] whose epoch continues where the
//! crashed process stopped.
//!
//! A journal write failure (disk full, permissions) does **not** fail the
//! steward call — the in-memory mutation stands, the store flips to
//! unhealthy, and the service surfaces `degraded` on `/healthz` until a
//! later append or an explicit [`MetaStore::sync`]/[`MetaStore::compact`]
//! succeeds.

use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use mdm_store::{FsyncPolicy, ReplicationBatch, Store, StoreStats};

use crate::error::MdmError;
use crate::journal::{JournalSink, MutationOp};
use crate::mdm::Mdm;

/// What [`MetaStore::attach`] found (or created) on disk.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The live generation after open/create.
    pub generation: u64,
    /// Epoch of the generation's snapshot.
    pub base_epoch: u64,
    /// WAL records replayed on top of the snapshot (0 for a fresh store).
    pub replayed: u64,
    /// True when a torn or corrupt WAL tail was cut during recovery.
    pub truncated_tail: bool,
    /// True when the store already existed; false when this call created it.
    pub recovered: bool,
    /// The fencing term the store persists (1 for a fresh store).
    pub term: u64,
    /// Epoch at which that term began.
    pub term_start_epoch: u64,
}

struct Inner {
    store: Store,
    healthy: bool,
    last_error: Option<String>,
}

/// A thread-safe durable journal for one metadata store directory.
pub struct MetaStore {
    inner: Mutex<Inner>,
    /// Signalled on every append and compaction so replication streams can
    /// long-poll for new records instead of spinning.
    changed: Condvar,
}

impl MetaStore {
    /// Opens the store in `dir` if one exists, otherwise creates one seeded
    /// with `initial`'s state. Returns the store, the system to serve (the
    /// recovered state when one existed, else `initial`), and a report. The
    /// journal sink is **already attached** to the returned [`Mdm`].
    pub fn attach(
        dir: &Path,
        policy: FsyncPolicy,
        initial: Mdm,
    ) -> Result<(std::sync::Arc<MetaStore>, Mdm, RecoveryReport), MdmError> {
        match Store::open(dir, policy).map_err(store_err)? {
            Some((store, recovered)) => {
                let mut mdm = Mdm::restore_metadata(&recovered.snapshot)?;
                mdm.ensure_epoch_at_least(recovered.base_epoch);
                for record in &recovered.records {
                    let op = MutationOp::decode(&record.payload)?;
                    op.apply(&mut mdm).map_err(|e| {
                        MdmError::Repository(format!("journal replay of {} failed: {e}", op.kind()))
                    })?;
                    // The record carries the post-mutation epoch of the
                    // crashed process; replay must not lag behind it.
                    mdm.ensure_epoch_at_least(record.epoch);
                }
                let report = RecoveryReport {
                    generation: recovered.generation,
                    base_epoch: recovered.base_epoch,
                    replayed: recovered.records.len() as u64,
                    truncated_tail: recovered.truncated_tail,
                    recovered: true,
                    term: recovered.term,
                    term_start_epoch: recovered.term_start_epoch,
                };
                let meta = std::sync::Arc::new(MetaStore {
                    inner: Mutex::new(Inner {
                        store,
                        healthy: true,
                        last_error: None,
                    }),
                    changed: Condvar::new(),
                });
                mdm.set_journal(Some(meta.clone()));
                Ok((meta, mdm, report))
            }
            None => {
                let store =
                    Store::create(dir, policy, &initial.snapshot_stamped(), initial.epoch())
                        .map_err(store_err)?;
                let report = RecoveryReport {
                    generation: store.generation(),
                    base_epoch: initial.epoch(),
                    replayed: 0,
                    truncated_tail: false,
                    recovered: false,
                    term: store.term(),
                    term_start_epoch: store.term_start_epoch(),
                };
                let meta = std::sync::Arc::new(MetaStore {
                    inner: Mutex::new(Inner {
                        store,
                        healthy: true,
                        last_error: None,
                    }),
                    changed: Condvar::new(),
                });
                let mut mdm = initial;
                mdm.set_journal(Some(meta.clone()));
                Ok((meta, mdm, report))
            }
        }
    }

    /// Folds the journal into a fresh snapshot of `mdm`'s current state and
    /// swaps generations atomically. Returns the new generation number.
    pub fn compact(&self, mdm: &Mdm) -> Result<u64, MdmError> {
        let snapshot = mdm.snapshot_stamped();
        let epoch = mdm.epoch();
        let mut inner = self.lock();
        match inner.store.compact(&snapshot, epoch) {
            Ok(generation) => {
                inner.healthy = true;
                inner.last_error = None;
                // Generation changed: wake long-polling replicas so they
                // re-bootstrap promptly instead of waiting out the poll.
                self.changed.notify_all();
                Ok(generation)
            }
            Err(e) => {
                inner.healthy = false;
                inner.last_error = Some(e.to_string());
                Err(store_err(e))
            }
        }
    }

    /// Forces buffered WAL records to stable storage (drain/shutdown path).
    pub fn sync(&self) -> Result<(), MdmError> {
        let mut inner = self.lock();
        match inner.store.sync() {
            Ok(()) => {
                inner.healthy = true;
                inner.last_error = None;
                Ok(())
            }
            Err(e) => {
                inner.healthy = false;
                inner.last_error = Some(e.to_string());
                Err(store_err(e))
            }
        }
    }

    /// Durability counters for `/metrics`.
    pub fn stats(&self) -> StoreStats {
        self.lock().store.stats()
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.lock().store.policy()
    }

    /// Opens (or creates) a store in `dir` for a replica promoting itself
    /// to primary at `new_term`: `mdm`'s current state becomes the new
    /// generation's snapshot and the term swap commits atomically with it.
    /// The journal sink is **not** attached here — the caller swaps it in
    /// under its own write lock once the server's role flips.
    pub fn promote_in(
        dir: &Path,
        policy: FsyncPolicy,
        mdm: &Mdm,
        new_term: u64,
    ) -> Result<std::sync::Arc<MetaStore>, MdmError> {
        let snapshot = mdm.snapshot_stamped();
        let epoch = mdm.epoch();
        let store = match Store::open(dir, policy).map_err(store_err)? {
            Some((mut store, _recovered)) => {
                // An existing store here is the node's own pre-demotion
                // timeline; the promotion snapshot supersedes it entirely.
                store
                    .promote(&snapshot, epoch, new_term)
                    .map_err(store_err)?;
                store
            }
            None => {
                Store::create_at_term(dir, policy, &snapshot, epoch, new_term).map_err(store_err)?
            }
        };
        Ok(std::sync::Arc::new(MetaStore {
            inner: Mutex::new(Inner {
                store,
                healthy: true,
                last_error: None,
            }),
            changed: Condvar::new(),
        }))
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.lock().store.generation()
    }

    /// The fencing term the store persists.
    pub fn term(&self) -> u64 {
        self.lock().store.term()
    }

    /// Epoch at which the current term began.
    pub fn term_start_epoch(&self) -> u64 {
        self.lock().store.term_start_epoch()
    }

    /// Cuts a replication batch for a replica at (`generation`, `from`);
    /// see [`mdm_store::Store::replication_batch`] for the resync rules.
    pub fn replication_batch(
        &self,
        generation: u64,
        from: u64,
        max_records: usize,
        primary_epoch: u64,
    ) -> ReplicationBatch {
        self.lock()
            .store
            .replication_batch(generation, from, max_records, primary_epoch)
    }

    /// Blocks until the store has records past `from` in `generation`, the
    /// generation changes, or `timeout` elapses — the long-poll primitive
    /// behind `/replication/stream`. Returns true when there is something
    /// new to ship.
    pub fn wait_for_records(&self, generation: u64, from: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.store.generation() != generation || inner.store.wal_len() > from {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|poison| poison.into_inner());
            inner = guard;
        }
    }

    /// False after a journal write failure: acknowledged mutations since the
    /// failure are **not** durable (`/healthz` reports `degraded`).
    pub fn healthy(&self) -> bool {
        self.lock().healthy
    }

    /// The last journal failure, if the store is unhealthy.
    pub fn last_error(&self) -> Option<String> {
        self.lock().last_error.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock poisons it; the store's state is
        // still consistent (appends are atomic at the record level), so
        // recover the guard rather than propagating the poison.
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl JournalSink for MetaStore {
    fn record(&self, op: &MutationOp, epoch: u64) -> Result<(), String> {
        let mut inner = self.lock();
        match inner.store.append(epoch, &op.encode()) {
            Ok(()) => {
                inner.healthy = true;
                inner.last_error = None;
                self.changed.notify_all();
                Ok(())
            }
            Err(e) => {
                let message = format!("journal append of {} failed: {e}", op.kind());
                inner.healthy = false;
                inner.last_error = Some(message.clone());
                Err(message)
            }
        }
    }

    fn flush(&self) -> Result<(), String> {
        self.sync().map_err(|e| e.to_string())
    }
}

fn store_err(e: mdm_store::StoreError) -> MdmError {
    MdmError::Repository(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_rdf::term::Iri;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mdm-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ex(local: &str) -> Iri {
        Iri::new(format!("{}{local}", mdm_rdf::vocab::EXAMPLE_NS))
    }

    #[test]
    fn fresh_store_journals_and_recovers() {
        let dir = temp_dir("fresh");
        let (meta, mut mdm, report) =
            MetaStore::attach(&dir, FsyncPolicy::Always, Mdm::new()).unwrap();
        assert!(!report.recovered);
        mdm.define_concept(&ex("Player")).unwrap();
        mdm.define_identifier(&ex("Player"), &ex("playerId"))
            .unwrap();
        mdm.add_source("PlayersAPI").unwrap();
        assert_eq!(meta.stats().wal_records, 3);
        assert!(meta.healthy());
        let expected = mdm.snapshot();
        let expected_epoch = mdm.epoch();
        drop((meta, mdm));

        // "Restart": open the same directory, replay the journal.
        let (_meta2, recovered, report) =
            MetaStore::attach(&dir, FsyncPolicy::Always, Mdm::new()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed, 3);
        assert_eq!(recovered.snapshot(), expected);
        assert_eq!(recovered.epoch(), expected_epoch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_advances_generation_and_preserves_state() {
        let dir = temp_dir("compact");
        let (meta, mut mdm, _) = MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        mdm.define_concept(&ex("Team")).unwrap();
        let generation = meta.compact(&mdm).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(meta.stats().wal_records, 0);
        mdm.define_feature(&ex("Team"), &ex("teamName")).unwrap();
        meta.sync().unwrap();
        let expected = mdm.snapshot();
        drop((meta, mdm));

        let (meta2, recovered, report) =
            MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.snapshot(), expected);
        // A second compaction from the recovered state keeps the bytes.
        meta2.compact(&recovered).unwrap();
        drop((meta2, recovered));
        let (_, again, _) = MetaStore::attach(&dir, FsyncPolicy::Never, Mdm::new()).unwrap();
        assert_eq!(again.snapshot(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_failure_degrades_instead_of_failing_mutations() {
        let dir = temp_dir("degrade");
        let (meta, mut mdm, _) = MetaStore::attach(&dir, FsyncPolicy::Always, Mdm::new()).unwrap();
        // Tear down the directory under the store to force append failures
        // on the next fsync-ed write.
        drop(std::fs::remove_dir_all(&dir));
        let before = mdm.epoch();
        // The mutation itself still succeeds...
        let result = mdm.define_concept(&ex("Ghost"));
        assert!(result.is_ok());
        assert!(mdm.epoch() > before);
        // ...and durability loss is visible, not silent. (With the directory
        // gone the buffered write may still land in the page cache; force it
        // out to observe the failure deterministically.)
        let _ = meta.sync();
        if meta.healthy() {
            // Some filesystems keep the unlinked file writable; at minimum
            // the sink interface must stay callable.
            let sink: Arc<dyn JournalSink> = meta;
            let _ = sink.flush();
        } else {
            assert!(meta.last_error().is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

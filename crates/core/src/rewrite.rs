//! The rewriting pipeline: walk → expansion → intra → inter → relational
//! algebra (paper §2.4, Figure 8).

use std::collections::BTreeMap;

use mdm_rdf::term::Iri;
use mdm_relational::schema::ColumnRef;
use mdm_relational::{Expr, Plan};

use crate::error::MdmError;
use crate::expansion::{expand, ExpandedWalk};
use crate::footprint::Footprint;
use crate::inter::{generate_ucq, ConjunctiveQuery, QualifiedColumn};
use crate::intra::{partial_walks, PartialWalk};
use crate::ontology::BdiOntology;
use crate::sparql_gen;
use crate::walk::Walk;

/// Options controlling plan generation.
#[derive(Clone, Debug)]
pub struct RewriteOptions {
    /// Wrap the union in a `Distinct` (set semantics). MDM's UI shows
    /// deduplicated tabular results; benches can turn it off.
    pub distinct: bool,
    /// Upper bound on enumerated union branches; the rewriting refuses
    /// wider UCQs with a typed error instead of exploding. Defaults to
    /// [`crate::inter::MAX_UCQ_BRANCHES`]; raise it for wide ecosystems
    /// (the SUPERSEDE-scale example does).
    pub max_branches: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            distinct: true,
            max_branches: crate::inter::MAX_UCQ_BRANCHES,
        }
    }
}

/// The rewriting output: the UCQ, its relational-algebra plan, and the
/// SPARQL text of the walk (what the MDM interface shows side by side).
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The conjunctive queries, one per union branch.
    pub queries: Vec<ConjunctiveQuery>,
    /// The executable plan over wrapper relations.
    pub plan: Plan,
    /// The SPARQL translation of the walk.
    pub sparql: String,
    /// Output column names, in walk order (compacted feature IRIs).
    pub output_columns: Vec<String>,
    /// Identifiers injected by phase (a), for explanations.
    pub expanded_identifiers: Vec<(Iri, Iri)>,
}

impl Rewriting {
    /// Number of union branches.
    pub fn branch_count(&self) -> usize {
        self.queries.len()
    }

    /// The plan rendered in algebra notation (Figure 8's right-hand side).
    pub fn algebra(&self) -> String {
        self.plan.to_string()
    }

    /// A human-readable derivation report: what phase (a) injected and what
    /// each union branch scans, joins and projects — the narration the demo
    /// gives while showing Figure 8.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "REWRITING — {} union branch(es)", self.branch_count()).unwrap();
        if self.expanded_identifiers.is_empty() {
            writeln!(out, "phase (a) query expansion: nothing to add").unwrap();
        } else {
            writeln!(out, "phase (a) query expansion added:").unwrap();
            for (concept, id) in &self.expanded_identifiers {
                writeln!(
                    out,
                    "    {} ⇐ identifier {}",
                    concept.local_name(),
                    id.local_name()
                )
                .unwrap();
            }
        }
        for (index, cq) in self.queries.iter().enumerate() {
            writeln!(out, "branch {}:", index + 1).unwrap();
            writeln!(out, "    scans {}", cq.atoms.join(", ")).unwrap();
            for ((wa, ca), (wb, cb)) in &cq.joins {
                writeln!(out, "    joins {wa}.{ca} = {wb}.{cb}").unwrap();
            }
            for ((feature, (wrapper, column)), name) in
                cq.projections.iter().zip(&self.output_columns)
            {
                let _ = feature;
                writeln!(out, "    emits {wrapper}.{column} as {name}").unwrap();
            }
        }
        out
    }
}

/// The reusable intermediate state of one rewrite, cached alongside the
/// plan so evolution can *extend* it instead of recomputing everything.
///
/// Phase (a) and the per-concept phase (b) outputs are independent per
/// concept; when a new mapping lands for one concept, the cache re-runs
/// phase (b) for that concept only and re-assembles with [`assemble`] —
/// which, being deterministic, yields byte-identical output to a cold
/// rewrite at the same metadata epoch.
#[derive(Clone, Debug)]
pub struct RewriteArtifacts {
    /// Phase (a) output: the walk with identifiers injected.
    pub expanded: ExpandedWalk,
    /// Phase (b) output: partial walks per walk concept.
    pub alternatives: BTreeMap<Iri, Vec<PartialWalk>>,
    /// What the rewrite read: each walk concept's taxonomic closure plus
    /// every wrapper appearing in the UCQ (see [`Footprint`]).
    pub footprint: Footprint,
}

/// Runs the three phases and builds the plan.
pub fn rewrite_walk(
    ontology: &BdiOntology,
    walk: &Walk,
    options: &RewriteOptions,
) -> Result<Rewriting, MdmError> {
    rewrite_walk_with_artifacts(ontology, walk, options).map(|(rewriting, _)| rewriting)
}

/// Like [`rewrite_walk`], but also returning the reusable intermediate
/// artifacts and the read footprint — what the plan cache stores.
pub fn rewrite_walk_with_artifacts(
    ontology: &BdiOntology,
    walk: &Walk,
    options: &RewriteOptions,
) -> Result<(Rewriting, RewriteArtifacts), MdmError> {
    // Phase (a): query expansion.
    let expanded = expand(walk, ontology)?;

    // Phase (b): intra-concept generation.
    let mut alternatives = BTreeMap::new();
    for concept in expanded.walk.concepts() {
        let features = expanded.walk.features_of(concept);
        alternatives.insert(concept.clone(), partial_walks(ontology, concept, features)?);
    }

    assemble(ontology, walk, expanded, alternatives, options)
}

/// Phase (c) + relational-algebra assembly over precomputed phase (a)/(b)
/// outputs. Deterministic in its inputs: `generate_ucq` enumerates and
/// sorts branches canonically, and plan construction is purely structural —
/// so re-assembling with partially reused `alternatives` produces exactly
/// the plan a cold rewrite would.
pub fn assemble(
    ontology: &BdiOntology,
    walk: &Walk,
    expanded: ExpandedWalk,
    alternatives: BTreeMap<Iri, Vec<PartialWalk>>,
    options: &RewriteOptions,
) -> Result<(Rewriting, RewriteArtifacts), MdmError> {
    // Phase (c): inter-concept generation.
    let queries = generate_ucq(ontology, walk, &alternatives, options.max_branches)?;
    if queries.is_empty() {
        return Err(MdmError::Rewrite(
            "the rewriting produced no conjunctive query".to_string(),
        ));
    }

    // Assemble the relational algebra.
    let output_columns: Vec<String> = queries[0]
        .projections
        .iter()
        .map(|(feature, _)| ontology.compact(feature))
        .collect();
    let branches: Vec<Plan> = queries
        .iter()
        .map(|cq| plan_for_cq(cq, &output_columns))
        .collect::<Result<_, _>>()?;
    let mut plan = if branches.len() == 1 {
        branches.into_iter().next().expect("len checked")
    } else {
        Plan::union(branches)
    };
    if options.distinct {
        plan = plan.distinct();
    }

    let footprint = read_footprint(ontology, &expanded, &queries);
    let rewriting = Rewriting {
        sparql: sparql_gen::walk_to_sparql(ontology, walk),
        plan,
        output_columns,
        expanded_identifiers: expanded.added_identifiers.clone(),
        queries,
    };
    let artifacts = RewriteArtifacts {
        expanded,
        alternatives,
        footprint,
    };
    Ok((rewriting, artifacts))
}

/// The metadata this rewrite read: every walk concept with its full
/// taxonomic closure (coverage iterates subconcepts; identifier and
/// feature resolution consult superconcepts), plus every wrapper any
/// union branch scans. Conservative by construction — a mutation disjoint
/// from this set cannot change the rewrite's output.
fn read_footprint(
    ontology: &BdiOntology,
    expanded: &ExpandedWalk,
    queries: &[ConjunctiveQuery],
) -> Footprint {
    let mut footprint = Footprint::default();
    for concept in expanded.walk.concepts() {
        footprint.concepts.insert(concept.to_string());
        for related in ontology.subconcepts_of(concept) {
            footprint.concepts.insert(related.to_string());
        }
        for related in ontology.superconcepts_of(concept) {
            footprint.concepts.insert(related.to_string());
        }
    }
    for cq in queries {
        for atom in &cq.atoms {
            footprint.wrappers.insert(atom.clone());
        }
    }
    footprint
}

/// Builds the join tree + projection for one conjunctive query.
///
/// Atoms join left-deep in connectivity (BFS) order; join conditions attach
/// as equi-join keys when they link the new atom to the tree, or as filters
/// when a cycle closes over atoms already joined.
pub fn plan_for_cq(cq: &ConjunctiveQuery, output_columns: &[String]) -> Result<Plan, MdmError> {
    if cq.atoms.is_empty() {
        return Err(MdmError::Rewrite(
            "conjunctive query with no atom".to_string(),
        ));
    }
    if output_columns.len() != cq.projections.len() {
        return Err(MdmError::Rewrite(format!(
            "internal: {} output names for {} projections",
            output_columns.len(),
            cq.projections.len()
        )));
    }

    // Order atoms by connectivity so every join has at least one key.
    let ordered = connectivity_order(&cq.atoms, &cq.joins);

    let mut included: Vec<&str> = vec![&ordered[0]];
    let mut plan = Plan::scan(ordered[0].clone());
    let mut remaining: Vec<&(QualifiedColumn, QualifiedColumn)> = cq.joins.iter().collect();

    for atom in &ordered[1..] {
        // Keys linking `atom` to the current tree.
        let mut keys: Vec<(ColumnRef, ColumnRef)> = Vec::new();
        remaining.retain(|((wa, ca), (wb, cb))| {
            let a_in = included.contains(&wa.as_str());
            let b_in = included.contains(&wb.as_str());
            if a_in && wb == atom {
                keys.push((ColumnRef::qualified(wa, ca), ColumnRef::qualified(wb, cb)));
                false
            } else if b_in && wa == atom {
                keys.push((ColumnRef::qualified(wb, cb), ColumnRef::qualified(wa, ca)));
                false
            } else {
                true
            }
        });
        plan = plan.join(Plan::scan(atom.clone()), keys);
        included.push(atom);
    }

    // Any leftover conditions close cycles: apply as filters.
    for ((wa, ca), (wb, cb)) in remaining {
        plan = plan.filter(
            Expr::Column(ColumnRef::qualified(wa, ca))
                .eq(Expr::Column(ColumnRef::qualified(wb, cb))),
        );
    }

    // Final projection with the compacted feature names.
    let columns: Vec<(Expr, ColumnRef)> = cq
        .projections
        .iter()
        .zip(output_columns)
        .map(|((_, (wrapper, column)), name)| {
            (
                Expr::Column(ColumnRef::qualified(wrapper, column)),
                ColumnRef::bare(name.clone()),
            )
        })
        .collect();
    Ok(plan.project(columns))
}

/// BFS order over the join graph starting from the first atom; disconnected
/// atoms (cross products) append at the end.
fn connectivity_order(
    atoms: &[String],
    joins: &[(QualifiedColumn, QualifiedColumn)],
) -> Vec<String> {
    let mut ordered: Vec<String> = Vec::with_capacity(atoms.len());
    let mut frontier: Vec<&str> = vec![&atoms[0]];
    while let Some(current) = frontier.pop() {
        if ordered.iter().any(|a| a == current) {
            continue;
        }
        ordered.push(current.to_string());
        for ((wa, _), (wb, _)) in joins {
            if wa == current && !ordered.contains(wb) {
                frontier.push(wb);
            }
            if wb == current && !ordered.contains(wa) {
                frontier.push(wa);
            }
        }
    }
    for atom in atoms {
        if !ordered.contains(atom) {
            ordered.push(atom.clone());
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk};

    #[test]
    fn figure8_algebra_expression() {
        let o = figure7_ontology();
        let rewriting = rewrite_walk(&o, &figure8_walk(), &RewriteOptions::default()).unwrap();
        assert_eq!(rewriting.branch_count(), 1);
        assert_eq!(
            rewriting.algebra(),
            "δ(π[w1.pName→ex:playerName, w2.name→ex:teamName]\
             ((w1 ⋈[w1.teamId=w2.id] w2)))"
        );
        assert_eq!(
            rewriting.output_columns,
            vec!["ex:playerName", "ex:teamName"]
        );
        // Expansion injected both identifiers.
        assert_eq!(rewriting.expanded_identifiers.len(), 2);
    }

    #[test]
    fn without_distinct_no_delta() {
        let o = figure7_ontology();
        let rewriting = rewrite_walk(
            &o,
            &figure8_walk(),
            &RewriteOptions {
                distinct: false,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert!(!rewriting.algebra().starts_with("δ"));
    }

    #[test]
    fn evolution_produces_union() {
        let o = evolved_ontology();
        let rewriting = rewrite_walk(&o, &figure8_walk(), &RewriteOptions::default()).unwrap();
        assert!(rewriting.branch_count() >= 2);
        assert!(rewriting.algebra().contains('∪'));
        // All branches project identically.
        assert_eq!(rewriting.plan.union_width(), rewriting.branch_count());
    }

    #[test]
    fn single_concept_walk() {
        let o = figure7_ontology();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&ex("Player"), &ex("height"));
        let rewriting = rewrite_walk(&o, &walk, &RewriteOptions::default()).unwrap();
        assert_eq!(rewriting.branch_count(), 1);
        assert_eq!(rewriting.queries[0].atoms, vec!["w1"]);
        assert!(rewriting.queries[0].joins.is_empty());
    }

    #[test]
    fn explain_narrates_the_derivation() {
        let o = figure7_ontology();
        let rewriting = rewrite_walk(&o, &figure8_walk(), &RewriteOptions::default()).unwrap();
        let explanation = rewriting.explain();
        assert!(explanation.contains("1 union branch"));
        assert!(explanation.contains("Player ⇐ identifier playerId"));
        assert!(explanation.contains("scans w1, w2") || explanation.contains("scans w2, w1"));
        assert!(explanation.contains("joins w1.teamId = w2.id"));
        assert!(explanation.contains("emits w1.pName as ex:playerName"));
    }

    #[test]
    fn sparql_is_generated() {
        let o = figure7_ontology();
        let rewriting = rewrite_walk(&o, &figure8_walk(), &RewriteOptions::default()).unwrap();
        assert!(rewriting.sparql.contains("SELECT"));
        assert!(rewriting.sparql.contains("ex:playerName"));
    }

    #[test]
    fn cyclic_join_conditions_all_consumed_as_keys() {
        // Synthetic CQ with a 3-cycle: a-b, b-c, c-a. Connectivity-ordered
        // insertion attaches every condition when its *later* endpoint joins
        // the tree, so the full cycle lands in equi-join keys (the σ
        // fallback in plan_for_cq is purely defensive).
        let cq = ConjunctiveQuery {
            atoms: vec!["a".to_string(), "b".to_string(), "c".to_string()],
            joins: vec![
                (("a".into(), "x".into()), ("b".into(), "x".into())),
                (("b".into(), "y".into()), ("c".into(), "y".into())),
                (("c".into(), "z".into()), ("a".into(), "z".into())),
            ],
            projections: vec![(ex("f"), ("a".to_string(), "x".to_string()))],
        };
        let plan = plan_for_cq(&cq, &["f".to_string()]).unwrap();
        let rendered = plan.to_string();
        assert!(!rendered.contains("σ["), "no filter expected: {rendered}");
        assert_eq!(rendered.matches('⋈').count(), 2);
        assert_eq!(rendered.matches('=').count(), 3, "{rendered}");
    }

    #[test]
    fn disconnected_atoms_cross_join() {
        let cq = ConjunctiveQuery {
            atoms: vec!["a".to_string(), "b".to_string()],
            joins: vec![],
            projections: vec![(ex("f"), ("a".to_string(), "x".to_string()))],
        };
        let plan = plan_for_cq(&cq, &["f".to_string()]).unwrap();
        assert!(plan.to_string().contains("⋈[]"));
    }
}

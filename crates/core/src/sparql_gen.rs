//! Walk → SPARQL translation (paper §2.4, Figure 8 left-hand side).
//!
//! "The current de-facto standard to query ontologies is the SPARQL query
//! language; … OMQs are graphically posed as subgraph patterns of the global
//! graph, which are automatically translated to SPARQL." The translation is
//! mechanical: one instance variable per concept, one triple pattern per
//! requested feature, one triple pattern per relation edge.
//!
//! The generated text parses with `mdm-sparql`, and — when the walk's
//! concepts/features/relations are materialised as instance triples — the
//! SPARQL evaluation agrees with the rewritten federated query (tested by
//! the integration suite).

use std::collections::BTreeMap;

use mdm_rdf::term::Iri;

use crate::ontology::BdiOntology;
use crate::walk::Walk;

/// Translates a walk into a SPARQL SELECT query.
pub fn walk_to_sparql(ontology: &BdiOntology, walk: &Walk) -> String {
    let mut out = String::new();
    // PREFIX declarations for every namespace the query mentions.
    let mut used_prefixes: BTreeMap<String, String> = BTreeMap::new();
    let mut note_prefix = |iri: &Iri| {
        if let Some(compacted) = ontology.prefixes().compact(iri) {
            if let Some((prefix, _)) = compacted.split_once(':') {
                if let Some(ns) = ontology.prefixes().expand_prefix(prefix) {
                    used_prefixes.insert(prefix.to_string(), ns.to_string());
                }
            }
        }
    };
    for concept in walk.concepts() {
        note_prefix(concept);
        for feature in walk.features_of(concept) {
            note_prefix(feature);
        }
    }
    for (from, property, to) in walk.relations() {
        note_prefix(from);
        note_prefix(property);
        note_prefix(to);
    }

    // Variable names: one per concept instance, one per requested feature.
    let concept_vars: BTreeMap<&Iri, String> =
        walk.concepts().iter().map(|c| (c, sparql_var(c))).collect();
    let select_vars: Vec<(String, &Iri, &Iri)> = walk
        .concepts()
        .iter()
        .flat_map(|c| {
            walk.features_of(c)
                .iter()
                .map(move |f| (sparql_var(f), c, f))
        })
        .collect();

    for (prefix, ns) in &used_prefixes {
        out.push_str(&format!("PREFIX {prefix}: <{ns}>\n"));
    }
    out.push_str("SELECT");
    for (var, _, _) in &select_vars {
        out.push_str(&format!(" ?{var}"));
    }
    out.push_str("\nWHERE {\n");
    for concept in walk.concepts() {
        out.push_str(&format!(
            "    ?{} a {} .\n",
            concept_vars[concept],
            term(ontology, concept)
        ));
    }
    for (var, concept, feature) in &select_vars {
        out.push_str(&format!(
            "    ?{} {} ?{var} .\n",
            concept_vars[*concept],
            term(ontology, feature)
        ));
    }
    for (from, property, to) in walk.relations() {
        out.push_str(&format!(
            "    ?{} {} ?{} .\n",
            concept_vars[from],
            term(ontology, property),
            concept_vars[to]
        ));
    }
    out.push('}');
    out
}

/// Renders an IRI as a SPARQL term (prefixed when possible).
fn term(ontology: &BdiOntology, iri: &Iri) -> String {
    ontology
        .prefixes()
        .compact(iri)
        .unwrap_or_else(|| format!("<{}>", iri.as_str()))
}

/// A SPARQL-safe variable name from an IRI's local name.
fn sparql_var(iri: &Iri) -> String {
    let mut name: String = iri
        .local_name()
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        name.insert(0, 'v');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ex, figure7_ontology, figure8_walk};

    #[test]
    fn figure8_sparql_shape() {
        let o = figure7_ontology();
        let sparql = walk_to_sparql(&o, &figure8_walk());
        assert!(sparql.contains("SELECT ?playerName ?teamName"));
        assert!(sparql.contains("?Player a ex:Player ."));
        assert!(sparql.contains("?SportsTeam a sc:SportsTeam ."));
        assert!(sparql.contains("?Player ex:playerName ?playerName ."));
        assert!(sparql.contains("?SportsTeam ex:teamName ?teamName ."));
        assert!(sparql.contains("?Player ex:hasTeam ?SportsTeam ."));
        assert!(sparql.contains("PREFIX ex:"));
        assert!(sparql.contains("PREFIX sc:"));
    }

    #[test]
    fn generated_sparql_parses() {
        let o = figure7_ontology();
        let sparql = walk_to_sparql(&o, &figure8_walk());
        mdm_sparql::parse_query(&sparql).unwrap();
    }

    #[test]
    fn generated_sparql_evaluates_on_instance_data() {
        use mdm_rdf::{Dataset, Term};
        let o = figure7_ontology();
        let sparql = walk_to_sparql(&o, &figure8_walk());
        // Materialise one player and one team as instance triples.
        let mut ds = Dataset::new();
        let g = ds.default_graph_mut();
        let messi = Term::iri("http://e.x/messi");
        let fcb = Term::iri("http://e.x/fcb");
        g.insert((
            messi.clone(),
            mdm_rdf::vocab::rdf::TYPE.term(),
            ex("Player").term(),
        ));
        g.insert((
            fcb.clone(),
            mdm_rdf::vocab::rdf::TYPE.term(),
            mdm_rdf::vocab::schema::SPORTS_TEAM.term(),
        ));
        g.insert((
            messi.clone(),
            ex("playerName").term(),
            Term::string("Lionel Messi"),
        ));
        g.insert((
            fcb.clone(),
            ex("teamName").term(),
            Term::string("FC Barcelona"),
        ));
        g.insert((messi, ex("hasTeam").term(), fcb));
        let results = mdm_sparql::execute(&sparql, &ds).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results.get(0, "playerName").unwrap().short(),
            "Lionel Messi"
        );
    }

    #[test]
    fn variable_sanitisation() {
        assert_eq!(sparql_var(&Iri::new("http://e.x/some-name")), "some_name");
        assert_eq!(sparql_var(&Iri::new("http://e.x/1st")), "v1st");
    }
}

//! LAV mappings (paper §2.3).
//!
//! A LAV mapping for wrapper `w` has two components:
//!
//! 1. a **named graph** identified by `w`'s IRI, holding the subgraph of the
//!    global graph that `w` populates (concepts, their `G:hasFeature` edges
//!    and concept relations — the contour the steward draws in Figure 7);
//! 2. **`owl:sameAs` links** from `w`'s attributes to features inside that
//!    named graph.
//!
//! [`MappingBuilder`] accumulates both and [`MappingBuilder::apply`]
//! validates everything before touching the ontology, so a failed mapping
//! never leaves partial state behind.

use mdm_rdf::term::Iri;
use mdm_rdf::vocab::bdi;

use crate::error::MdmError;
use crate::ontology::BdiOntology;

/// A builder for one wrapper's LAV mapping.
#[derive(Clone, Debug)]
pub struct MappingBuilder {
    // Crate-visible so `journal` can encode a mapping mutation for the WAL.
    pub(crate) wrapper: Iri,
    pub(crate) concepts: Vec<Iri>,
    pub(crate) features: Vec<Iri>,
    pub(crate) relations: Vec<(Iri, Iri, Iri)>,
    pub(crate) same_as: Vec<(String, Iri)>, // (attribute name, feature)
}

impl MappingBuilder {
    /// Starts a mapping for the wrapper registered under `wrapper_name`.
    pub fn for_wrapper(wrapper_name: &str) -> Self {
        MappingBuilder {
            wrapper: BdiOntology::wrapper_iri(wrapper_name),
            concepts: Vec::new(),
            features: Vec::new(),
            relations: Vec::new(),
            same_as: Vec::new(),
        }
    }

    /// Adds a concept to the wrapper's contour.
    pub fn cover_concept(mut self, concept: &Iri) -> Self {
        if !self.concepts.contains(concept) {
            self.concepts.push(concept.clone());
        }
        self
    }

    /// Adds a feature (with its `G:hasFeature` edge) to the contour.
    pub fn cover_feature(mut self, feature: &Iri) -> Self {
        if !self.features.contains(feature) {
            self.features.push(feature.clone());
        }
        self
    }

    /// Adds a concept-to-concept relation edge to the contour.
    pub fn cover_relation(mut self, from: &Iri, property: &Iri, to: &Iri) -> Self {
        let edge = (from.clone(), property.clone(), to.clone());
        if !self.relations.contains(&edge) {
            self.relations.push(edge);
        }
        self
    }

    /// Links attribute `attribute_name` (of the mapping's wrapper) to
    /// `feature` via `owl:sameAs`.
    pub fn same_as(mut self, attribute_name: &str, feature: &Iri) -> Self {
        self.same_as
            .push((attribute_name.to_string(), feature.clone()));
        self
    }

    /// Validates and applies the mapping to the ontology.
    ///
    /// Checks (all are `MdmError::Mapping`):
    /// * the wrapper exists and has no mapping yet;
    /// * every covered element exists in the global graph (subgraph
    ///   property) and covered features belong to covered concepts;
    /// * every relation edge is a relation of the global graph with both
    ///   endpoints covered;
    /// * every `sameAs` names an attribute of this wrapper and a covered
    ///   feature, each attribute maps at most once, and no two attributes
    ///   map the same feature;
    /// * every covered concept has its identifier covered *and mapped* —
    ///   the joinability invariant the rewriting algorithm relies on;
    /// * the contour is connected (a walkable mapping, like Figure 7's).
    pub fn apply(self, ontology: &mut BdiOntology) -> Result<Iri, MdmError> {
        let wrapper = self.wrapper.clone();
        let wrapper_name = wrapper.local_name().to_string();
        if !ontology.wrappers().contains(&wrapper) {
            return Err(MdmError::Mapping(format!(
                "wrapper '{wrapper_name}' is not registered"
            )));
        }
        if ontology.mappings().named_graph(&wrapper).is_some() {
            return Err(MdmError::Mapping(format!(
                "wrapper '{wrapper_name}' already has a mapping"
            )));
        }
        if self.concepts.is_empty() {
            return Err(MdmError::Mapping(format!(
                "mapping for '{wrapper_name}' covers no concept"
            )));
        }
        for concept in &self.concepts {
            if !ontology.is_concept(concept) {
                return Err(MdmError::Mapping(format!(
                    "'{concept}' is not a concept of the global graph"
                )));
            }
        }
        // A feature may be covered under its owning concept *or* under a
        // covered subconcept of the owner (taxonomies, §2.1): subconcept
        // instances carry the super's features. The named-graph triple uses
        // the covered (sub)concept as subject.
        let mut feature_owners: Vec<(Iri, Iri)> = Vec::with_capacity(self.features.len());
        for feature in &self.features {
            let owner = ontology.concept_of_feature(feature).ok_or_else(|| {
                MdmError::Mapping(format!("'{feature}' is not a feature of the global graph"))
            })?;
            let carrier = self
                .concepts
                .iter()
                .find(|covered| ontology.superconcepts_of(covered).contains(&owner));
            let Some(carrier) = carrier else {
                return Err(MdmError::Mapping(format!(
                    "feature '{feature}' belongs to '{owner}', which the contour covers \
                     neither directly nor through a subconcept"
                )));
            };
            feature_owners.push((feature.clone(), carrier.clone()));
        }
        for (from, property, to) in &self.relations {
            if !self.concepts.contains(from) || !self.concepts.contains(to) {
                return Err(MdmError::Mapping(format!(
                    "relation '{property}' endpoints must be covered concepts"
                )));
            }
            if !ontology.relations_between(from, to).contains(property) {
                return Err(MdmError::Mapping(format!(
                    "'{from}' -{property}-> '{to}' is not a relation of the global graph"
                )));
            }
        }

        // sameAs validation.
        let attributes = ontology.attributes_of(&wrapper);
        let attribute_names: Vec<String> = attributes
            .iter()
            .map(|a| BdiOntology::attribute_name(a).to_string())
            .collect();
        let mut seen_attributes = std::collections::BTreeSet::new();
        let mut seen_features = std::collections::BTreeSet::new();
        for (attribute, feature) in &self.same_as {
            if !attribute_names.contains(attribute) {
                return Err(MdmError::Mapping(format!(
                    "'{attribute}' is not an attribute of wrapper '{wrapper_name}' \
                     (signature: {attribute_names:?})"
                )));
            }
            if !self.features.contains(feature) {
                return Err(MdmError::Mapping(format!(
                    "sameAs target '{feature}' is not covered by the contour"
                )));
            }
            if !seen_attributes.insert(attribute.clone()) {
                return Err(MdmError::Mapping(format!(
                    "attribute '{attribute}' is mapped twice"
                )));
            }
            if !seen_features.insert(feature.clone()) {
                return Err(MdmError::Mapping(format!(
                    "feature '{feature}' is mapped by two attributes of '{wrapper_name}'"
                )));
            }
        }

        // Joinability: each covered concept's identifier must be covered and
        // mapped by some attribute.
        for concept in &self.concepts {
            let id = ontology.identifier_of(concept).ok_or_else(|| {
                MdmError::Mapping(format!(
                    "concept '{concept}' has no identifier feature; it cannot be mapped"
                ))
            })?;
            if !self.features.contains(&id) {
                return Err(MdmError::Mapping(format!(
                    "contour covers '{concept}' but not its identifier '{id}'"
                )));
            }
            if !self.same_as.iter().any(|(_, f)| f == &id) {
                return Err(MdmError::Mapping(format!(
                    "identifier '{id}' of '{concept}' is covered but no attribute maps it"
                )));
            }
        }

        // Connectivity of the contour over concepts and relation edges
        // (taxonomy edges between covered concepts connect too).
        if !self.is_connected(ontology) {
            return Err(MdmError::Mapping(format!(
                "the contour of '{wrapper_name}' is not connected; \
                 add the relation edges between its concepts"
            )));
        }

        // All checks passed — materialise the named graph and sameAs links.
        {
            let named = ontology.mappings_mut().named_graph_mut(&wrapper);
            for concept in &self.concepts {
                named.insert((
                    concept.term(),
                    mdm_rdf::vocab::rdf::TYPE.term(),
                    bdi::CONCEPT.term(),
                ));
            }
            for (feature, owner) in &feature_owners {
                named.insert((owner.term(), bdi::HAS_FEATURE.term(), feature.term()));
            }
            for (from, property, to) in &self.relations {
                named.insert((from.term(), property.term(), to.term()));
            }
        }
        for (attribute, feature) in &self.same_as {
            let attribute_iri = attributes
                .iter()
                .find(|a| BdiOntology::attribute_name(a) == attribute)
                .expect("validated attribute exists")
                .clone();
            ontology.source_graph_mut().insert((
                attribute_iri.term(),
                mdm_rdf::vocab::owl::SAME_AS.term(),
                feature.term(),
            ));
        }
        Ok(wrapper)
    }

    /// Connectivity over the covered concepts using the covered relations;
    /// a covered sub/superconcept pair is connected through the taxonomy.
    fn is_connected(&self, ontology: &BdiOntology) -> bool {
        if self.concepts.len() <= 1 {
            return true;
        }
        let mut reached = std::collections::BTreeSet::new();
        let mut frontier = vec![self.concepts[0].clone()];
        while let Some(current) = frontier.pop() {
            if !reached.insert(current.clone()) {
                continue;
            }
            for (from, _, to) in &self.relations {
                if *from == current && !reached.contains(to) {
                    frontier.push(to.clone());
                }
                if *to == current && !reached.contains(from) {
                    frontier.push(from.clone());
                }
            }
            for other in &self.concepts {
                if reached.contains(other) {
                    continue;
                }
                let related = ontology.superconcepts_of(&current).contains(other)
                    || ontology.subconcepts_of(&current).contains(other);
                if related {
                    frontier.push(other.clone());
                }
            }
        }
        self.concepts.iter().all(|c| reached.contains(c))
    }
}

/// Returns the wrappers whose named graph covers `concept` together with
/// the triple `(concept, G:hasFeature, feature)` — the primitive the
/// rewriting phases use.
pub fn wrappers_covering_feature(ontology: &BdiOntology, concept: &Iri, feature: &Iri) -> Vec<Iri> {
    ontology
        .mappings()
        .graphs_containing(&concept.term(), &bdi::HAS_FEATURE.term(), &feature.term())
        .into_iter()
        .cloned()
        .collect()
}

/// Returns the wrappers whose named graph covers the relation edge.
pub fn wrappers_covering_relation(
    ontology: &BdiOntology,
    from: &Iri,
    property: &Iri,
    to: &Iri,
) -> Vec<Iri> {
    ontology
        .mappings()
        .graphs_containing(&from.term(), &property.term(), &to.term())
        .into_iter()
        .cloned()
        .collect()
}

/// Taxonomy-aware edge witnesses: wrappers covering `(from', property, to')`
/// for any subconcepts `from' ⊑ from`, `to' ⊑ to`. Deduplicated, in
/// wrapper-IRI order.
pub fn wrappers_covering_relation_taxonomic(
    ontology: &BdiOntology,
    from: &Iri,
    property: &Iri,
    to: &Iri,
) -> Vec<Iri> {
    let mut out: Vec<Iri> = Vec::new();
    for from_sub in ontology.subconcepts_of(from) {
        for to_sub in ontology.subconcepts_of(to) {
            for wrapper in wrappers_covering_relation(ontology, &from_sub, property, &to_sub) {
                if !out.contains(&wrapper) {
                    out.push(wrapper);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::{register_source, register_wrapper};
    use crate::testkit;
    use mdm_rdf::vocab;

    fn ex(local: &str) -> Iri {
        Iri::new(format!("{}{local}", vocab::EXAMPLE_NS))
    }

    /// Global graph + registered wrappers, no mappings yet.
    fn prepared() -> BdiOntology {
        let mut o = testkit::figure5_ontology();
        register_source(&mut o, "PlayersAPI").unwrap();
        register_source(&mut o, "TeamsAPI").unwrap();
        register_wrapper(
            &mut o,
            "PlayersAPI",
            "w1",
            1,
            &testkit::strings(&["id", "pName", "height", "weight", "score", "foot", "teamId"]),
        )
        .unwrap();
        register_wrapper(
            &mut o,
            "TeamsAPI",
            "w2",
            1,
            &testkit::strings(&["id", "name", "shortName"]),
        )
        .unwrap();
        o
    }

    /// The paper's Figure 7 mapping for w1 (red contour): all of Player,
    /// the hasTeam edge, and SportsTeam's identifier.
    fn w1_mapping() -> MappingBuilder {
        let team = vocab::schema::SPORTS_TEAM.iri();
        MappingBuilder::for_wrapper("w1")
            .cover_concept(&ex("Player"))
            .cover_concept(&team)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .cover_feature(&ex("height"))
            .cover_feature(&ex("weight"))
            .cover_feature(&ex("score"))
            .cover_feature(&ex("foot"))
            .cover_feature(&ex("teamId"))
            .cover_relation(&ex("Player"), &ex("hasTeam"), &team)
            .same_as("id", &ex("playerId"))
            .same_as("pName", &ex("playerName"))
            .same_as("height", &ex("height"))
            .same_as("weight", &ex("weight"))
            .same_as("score", &ex("score"))
            .same_as("foot", &ex("foot"))
            .same_as("teamId", &ex("teamId"))
    }

    /// Figure 7's w2 (green contour): SportsTeam with id and names.
    fn w2_mapping() -> MappingBuilder {
        let team = vocab::schema::SPORTS_TEAM.iri();
        MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("teamName"))
            .cover_feature(&ex("shortName"))
            .same_as("id", &ex("teamId"))
            .same_as("name", &ex("teamName"))
            .same_as("shortName", &ex("shortName"))
    }

    #[test]
    fn figure7_mappings_apply() {
        let mut o = prepared();
        let w1 = w1_mapping().apply(&mut o).unwrap();
        let w2 = w2_mapping().apply(&mut o).unwrap();
        assert_eq!(o.mappings().named_graph_count(), 2);
        // w1's named graph holds the relation edge.
        let ng = o.mappings().named_graph(&w1).unwrap();
        assert!(ng.contains(
            &ex("Player").term(),
            &ex("hasTeam").term(),
            &vocab::schema::SPORTS_TEAM.term(),
        ));
        // The overlap of Figure 7: both wrappers cover SportsTeam's teamId.
        let covering =
            wrappers_covering_feature(&o, &vocab::schema::SPORTS_TEAM.iri(), &ex("teamId"));
        assert_eq!(covering, vec![w1, w2]);
        // sameAs links landed in the source graph.
        let attr = BdiOntology::attribute_iri("PlayersAPI", "pName");
        assert_eq!(o.feature_of_attribute(&attr), Some(ex("playerName")));
    }

    #[test]
    fn mapping_unknown_wrapper_rejected() {
        let mut o = prepared();
        let err = MappingBuilder::for_wrapper("ghost")
            .cover_concept(&ex("Player"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not registered"));
    }

    #[test]
    fn duplicate_mapping_rejected() {
        let mut o = prepared();
        w2_mapping().apply(&mut o).unwrap();
        let err = w2_mapping().apply(&mut o).unwrap_err();
        assert!(err.message().contains("already has a mapping"));
    }

    #[test]
    fn contour_must_be_global_subgraph() {
        let mut o = prepared();
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&ex("Alien"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not a concept"));
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&vocab::schema::SPORTS_TEAM.iri())
            .cover_feature(&ex("alienFeature"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not a feature"));
    }

    #[test]
    fn feature_of_uncovered_concept_rejected() {
        let mut o = prepared();
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&vocab::schema::SPORTS_TEAM.iri())
            .cover_feature(&ex("playerName")) // belongs to Player
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("covers"));
    }

    #[test]
    fn same_as_must_point_at_own_attribute_and_covered_feature() {
        let mut o = prepared();
        let team = vocab::schema::SPORTS_TEAM.iri();
        // 'pName' is w1's attribute, not w2's.
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("teamName"))
            .same_as("id", &ex("teamId"))
            .same_as("pName", &ex("teamName"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not an attribute of wrapper 'w2'"));
        // Feature outside the contour.
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamId"))
            .same_as("id", &ex("teamId"))
            .same_as("name", &ex("teamName"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not covered"));
    }

    #[test]
    fn double_mapping_rejected_both_directions() {
        let mut o = prepared();
        let team = vocab::schema::SPORTS_TEAM.iri();
        let base = || {
            MappingBuilder::for_wrapper("w2")
                .cover_concept(&team)
                .cover_feature(&ex("teamId"))
                .cover_feature(&ex("teamName"))
        };
        let err = base()
            .same_as("id", &ex("teamId"))
            .same_as("id", &ex("teamName"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("mapped twice"));
        let err = base()
            .same_as("id", &ex("teamId"))
            .same_as("name", &ex("teamId"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("two attributes"));
    }

    #[test]
    fn identifier_coverage_enforced() {
        let mut o = prepared();
        let team = vocab::schema::SPORTS_TEAM.iri();
        // Covers the concept and a feature but not the identifier.
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamName"))
            .same_as("name", &ex("teamName"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("identifier"));
        // Covers the identifier but maps nothing to it.
        let err = MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("teamName"))
            .same_as("name", &ex("teamName"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("no attribute maps it"));
    }

    #[test]
    fn disconnected_contour_rejected() {
        let mut o = prepared();
        let team = vocab::schema::SPORTS_TEAM.iri();
        // Player and Team covered but no relation edge → two islands.
        let err = MappingBuilder::for_wrapper("w1")
            .cover_concept(&ex("Player"))
            .cover_concept(&team)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("teamId"))
            .same_as("id", &ex("playerId"))
            .same_as("teamId", &ex("teamId"))
            .apply(&mut o)
            .unwrap_err();
        assert!(err.message().contains("not connected"));
    }

    #[test]
    fn failed_apply_leaves_no_state() {
        let mut o = prepared();
        let before_mappings = o.mappings().named_graph_count();
        let before_source = o.source_graph().len();
        let _ = MappingBuilder::for_wrapper("w2")
            .cover_concept(&vocab::schema::SPORTS_TEAM.iri())
            .cover_feature(&ex("teamId"))
            .same_as("id", &ex("teamId"))
            .same_as("nope", &ex("teamId"))
            .apply(&mut o)
            .unwrap_err();
        assert_eq!(o.mappings().named_graph_count(), before_mappings);
        assert_eq!(o.source_graph().len(), before_source);
    }
}

//! Snapshot and restore of the metadata state.
//!
//! The paper's stack persists metadata in Jena TDB plus a MongoDB store;
//! this module is the equivalent durability layer: the whole
//! [`BdiOntology`] serialises to one self-contained text document (three
//! Turtle/TriG sections) and restores losslessly.

use mdm_rdf::turtle;

use crate::error::MdmError;
use crate::ontology::BdiOntology;

const HEADER: &str = "# MDM SNAPSHOT v1";
const GLOBAL_MARK: &str = "=== GLOBAL ===";
const SOURCE_MARK: &str = "=== SOURCE ===";
const MAPPINGS_MARK: &str = "=== MAPPINGS ===";

/// Serialises the ontology into a snapshot document.
pub fn snapshot(ontology: &BdiOntology) -> String {
    let prefixes = ontology.prefixes();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(GLOBAL_MARK);
    out.push('\n');
    out.push_str(&turtle::write_graph(ontology.global_graph(), prefixes));
    out.push_str(SOURCE_MARK);
    out.push('\n');
    out.push_str(&turtle::write_graph(ontology.source_graph(), prefixes));
    out.push_str(MAPPINGS_MARK);
    out.push('\n');
    out.push_str(&turtle::write_dataset(ontology.mappings(), prefixes));
    out
}

/// Restores an ontology from a snapshot document.
pub fn restore(document: &str) -> Result<BdiOntology, MdmError> {
    if !document.starts_with(HEADER) {
        return Err(MdmError::Repository(format!(
            "not an MDM snapshot (expected leading '{HEADER}')"
        )));
    }
    let global_section = section(document, GLOBAL_MARK, SOURCE_MARK)?;
    let source_section = section(document, SOURCE_MARK, MAPPINGS_MARK)?;
    let mappings_section = document
        .split_once(MAPPINGS_MARK)
        .map(|(_, rest)| rest)
        .ok_or_else(|| MdmError::Repository(format!("missing '{MAPPINGS_MARK}'")))?;

    let (global, prefixes) = turtle::parse_graph_with_prefixes(global_section)
        .map_err(|e| MdmError::Repository(format!("global graph: {e}")))?;
    let source = turtle::parse_graph(source_section)
        .map_err(|e| MdmError::Repository(format!("source graph: {e}")))?;
    let mappings = turtle::parse_dataset(mappings_section)
        .map_err(|e| MdmError::Repository(format!("mappings: {e}")))?;

    let mut ontology = BdiOntology::new();
    // Re-bind the snapshot's prefixes (custom vocabularies the steward
    // registered) so renderings and compaction survive the round trip.
    for (prefix, namespace) in prefixes.iter() {
        ontology.bind_prefix(prefix, namespace);
    }
    for triple in global.iter() {
        ontology.global_graph_restore().insert(triple);
    }
    for triple in source.iter() {
        ontology.source_graph_mut().insert(triple);
    }
    for name in mappings.graph_names() {
        let graph = mappings.named_graph(name).expect("enumerated name");
        let target = ontology.mappings_mut().named_graph_mut(name);
        for triple in graph.iter() {
            target.insert(triple);
        }
    }
    Ok(ontology)
}

fn section<'a>(document: &'a str, from: &str, to: &str) -> Result<&'a str, MdmError> {
    let start = document
        .find(from)
        .ok_or_else(|| MdmError::Repository(format!("missing '{from}'")))?
        + from.len();
    let end = document[start..]
        .find(to)
        .ok_or_else(|| MdmError::Repository(format!("missing '{to}'")))?
        + start;
    Ok(&document[start..end])
}

impl BdiOntology {
    /// Restore-path access to the global graph (kept out of the public API;
    /// normal construction goes through the typed methods).
    pub(crate) fn global_graph_restore(&mut self) -> &mut mdm_rdf::Graph {
        // Safe: restore re-inserts triples produced by this crate.
        self.global_graph_mut_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology};
    use crate::walk::Walk;

    #[test]
    fn snapshot_restores_losslessly() {
        let original = figure7_ontology();
        let document = snapshot(&original);
        let restored = restore(&document).unwrap();
        assert_eq!(restored.global_graph().len(), original.global_graph().len());
        assert_eq!(restored.source_graph().len(), original.source_graph().len());
        assert_eq!(
            restored.mappings().named_graph_count(),
            original.mappings().named_graph_count()
        );
        assert_eq!(restored.concepts(), original.concepts());
        // The restored metadata answers queries identically.
        let walk = crate::testkit::figure8_walk();
        let a = crate::rewrite::rewrite_walk(
            &original,
            &walk,
            &crate::rewrite::RewriteOptions::default(),
        )
        .unwrap();
        let b = crate::rewrite::rewrite_walk(
            &restored,
            &walk,
            &crate::rewrite::RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(a.algebra(), b.algebra());
    }

    #[test]
    fn evolved_state_round_trips() {
        let original = evolved_ontology();
        let restored = restore(&snapshot(&original)).unwrap();
        assert_eq!(restored.wrappers().len(), 3);
        // Walks over the new feature still rewrite.
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerId"))
            .feature(&ex("Player"), &ex("nationality"));
        crate::rewrite::rewrite_walk(&restored, &walk, &crate::rewrite::RewriteOptions::default())
            .unwrap();
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(restore("not a snapshot").is_err());
        assert!(restore(HEADER).is_err());
        let truncated = format!("{HEADER}\n{GLOBAL_MARK}\n");
        assert!(restore(&truncated).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = snapshot(&figure7_ontology());
        let b = snapshot(&figure7_ontology());
        assert_eq!(a, b);
    }
}

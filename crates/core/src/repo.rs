//! Snapshot and restore of the metadata state.
//!
//! The paper's stack persists metadata in Jena TDB plus a MongoDB store;
//! this module is the equivalent durability layer: the whole
//! [`BdiOntology`] serialises to one self-contained text document (three
//! Turtle/TriG sections) and restores losslessly.

use mdm_rdf::turtle;

use crate::error::MdmError;
use crate::ontology::BdiOntology;

const HEADER: &str = "# MDM SNAPSHOT v1";
const EPOCH_MARK: &str = "# epoch: ";
const GLOBAL_MARK: &str = "=== GLOBAL ===";
const SOURCE_MARK: &str = "=== SOURCE ===";
const MAPPINGS_MARK: &str = "=== MAPPINGS ===";

/// Serialises the ontology into a snapshot document without an epoch
/// stamp — the form `Mdm::snapshot` exposes, chosen so that snapshot →
/// restore → snapshot is a byte fixpoint. The durable store writes
/// [`snapshot_with_epoch`] instead.
pub fn snapshot(ontology: &BdiOntology) -> String {
    snapshot_document(ontology, None)
}

/// Serialises the ontology with the metadata epoch in the header, so a
/// restored process continues the epoch sequence instead of re-issuing
/// values remote clients have already seen against different plans.
pub fn snapshot_with_epoch(ontology: &BdiOntology, epoch: u64) -> String {
    snapshot_document(ontology, Some(epoch))
}

fn snapshot_document(ontology: &BdiOntology, epoch: Option<u64>) -> String {
    let prefixes = ontology.prefixes();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    if let Some(epoch) = epoch {
        out.push_str(EPOCH_MARK);
        out.push_str(&epoch.to_string());
        out.push('\n');
    }
    out.push_str(GLOBAL_MARK);
    out.push('\n');
    out.push_str(&turtle::write_graph(ontology.global_graph(), prefixes));
    out.push_str(SOURCE_MARK);
    out.push('\n');
    out.push_str(&turtle::write_graph(ontology.source_graph(), prefixes));
    out.push_str(MAPPINGS_MARK);
    out.push('\n');
    out.push_str(&turtle::write_dataset(ontology.mappings(), prefixes));
    out
}

/// Restores an ontology from a snapshot document, ignoring any epoch
/// stamp. Callers that must preserve epoch continuity (the facade, the
/// durable store) use [`restore_with_epoch`].
pub fn restore(document: &str) -> Result<BdiOntology, MdmError> {
    restore_with_epoch(document).map(|(ontology, _)| ontology)
}

/// Restores an ontology plus the epoch recorded in the snapshot header
/// (0 for pre-epoch documents, which remain readable).
pub fn restore_with_epoch(document: &str) -> Result<(BdiOntology, u64), MdmError> {
    if !document.starts_with(HEADER) {
        return Err(MdmError::Repository(format!(
            "not an MDM snapshot (expected leading '{HEADER}')"
        )));
    }
    let epoch = document
        .lines()
        .nth(1)
        .and_then(|line| line.strip_prefix(EPOCH_MARK))
        .map(|raw| {
            raw.trim()
                .parse::<u64>()
                .map_err(|_| MdmError::Repository(format!("invalid epoch stamp '{}'", raw.trim())))
        })
        .transpose()?
        .unwrap_or(0);
    let global_section = section(document, GLOBAL_MARK, SOURCE_MARK)?;
    let source_section = section(document, SOURCE_MARK, MAPPINGS_MARK)?;
    let mappings_section = document
        .split_once(MAPPINGS_MARK)
        .map(|(_, rest)| rest)
        .ok_or_else(|| MdmError::Repository(format!("missing '{MAPPINGS_MARK}'")))?;

    let (global, prefixes) = turtle::parse_graph_with_prefixes(global_section)
        .map_err(|e| MdmError::Repository(format!("global graph: {e}")))?;
    let source = turtle::parse_graph(source_section)
        .map_err(|e| MdmError::Repository(format!("source graph: {e}")))?;
    let mappings = turtle::parse_dataset(mappings_section)
        .map_err(|e| MdmError::Repository(format!("mappings: {e}")))?;

    let mut ontology = BdiOntology::new();
    // Re-bind the snapshot's prefixes (custom vocabularies the steward
    // registered) so renderings and compaction survive the round trip.
    for (prefix, namespace) in prefixes.iter() {
        ontology.bind_prefix(prefix, namespace);
    }
    for triple in global.iter() {
        ontology.global_graph_restore().insert(triple);
    }
    for triple in source.iter() {
        ontology.source_graph_mut().insert(triple);
    }
    for name in mappings.graph_names() {
        let graph = mappings.named_graph(name).expect("enumerated name");
        let target = ontology.mappings_mut().named_graph_mut(name);
        for triple in graph.iter() {
            target.insert(triple);
        }
    }
    Ok((ontology, epoch))
}

fn section<'a>(document: &'a str, from: &str, to: &str) -> Result<&'a str, MdmError> {
    let start = document
        .find(from)
        .ok_or_else(|| MdmError::Repository(format!("missing '{from}'")))?
        + from.len();
    let end = document[start..]
        .find(to)
        .ok_or_else(|| MdmError::Repository(format!("missing '{to}'")))?
        + start;
    Ok(&document[start..end])
}

impl BdiOntology {
    /// Restore-path access to the global graph (kept out of the public API;
    /// normal construction goes through the typed methods).
    pub(crate) fn global_graph_restore(&mut self) -> &mut mdm_rdf::Graph {
        // Safe: restore re-inserts triples produced by this crate.
        self.global_graph_mut_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology};
    use crate::walk::Walk;

    #[test]
    fn snapshot_restores_losslessly() {
        let original = figure7_ontology();
        let document = snapshot(&original);
        let restored = restore(&document).unwrap();
        assert_eq!(restored.global_graph().len(), original.global_graph().len());
        assert_eq!(restored.source_graph().len(), original.source_graph().len());
        assert_eq!(
            restored.mappings().named_graph_count(),
            original.mappings().named_graph_count()
        );
        assert_eq!(restored.concepts(), original.concepts());
        // The restored metadata answers queries identically.
        let walk = crate::testkit::figure8_walk();
        let a = crate::rewrite::rewrite_walk(
            &original,
            &walk,
            &crate::rewrite::RewriteOptions::default(),
        )
        .unwrap();
        let b = crate::rewrite::rewrite_walk(
            &restored,
            &walk,
            &crate::rewrite::RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(a.algebra(), b.algebra());
    }

    #[test]
    fn evolved_state_round_trips() {
        let original = evolved_ontology();
        let restored = restore(&snapshot(&original)).unwrap();
        assert_eq!(restored.wrappers().len(), 3);
        // Walks over the new feature still rewrite.
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerId"))
            .feature(&ex("Player"), &ex("nationality"));
        crate::rewrite::rewrite_walk(&restored, &walk, &crate::rewrite::RewriteOptions::default())
            .unwrap();
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(restore("not a snapshot").is_err());
        assert!(restore(HEADER).is_err());
        let truncated = format!("{HEADER}\n{GLOBAL_MARK}\n");
        assert!(restore(&truncated).is_err());
    }

    #[test]
    fn epoch_stamp_round_trips_and_is_optional() {
        let original = figure7_ontology();
        let stamped = snapshot_with_epoch(&original, 42);
        let (restored, epoch) = restore_with_epoch(&stamped).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(restored.concepts(), original.concepts());
        // Restoring and re-snapshotting keeps the stamp byte-identical.
        assert_eq!(snapshot_with_epoch(&restored, epoch), stamped);
        // Pre-epoch documents restore with epoch 0.
        let (_, epoch) = restore_with_epoch(&snapshot(&original)).unwrap();
        assert_eq!(epoch, 0);
        // A mangled stamp is rejected, not silently zeroed.
        let broken = stamped.replace("# epoch: 42", "# epoch: forty-two");
        assert!(restore_with_epoch(&broken).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = snapshot(&figure7_ontology());
        let b = snapshot(&figure7_ontology());
        assert_eq!(a, b);
    }
}

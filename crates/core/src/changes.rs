//! The evolution changefeed: a bounded in-memory journal of committed
//! steward mutations, each stamped with its epoch and dependency footprint.
//!
//! This is the data behind `GET /changes?since=epoch` on `mdm-server` and
//! the CLI's `changes` command. It lives on [`crate::Mdm`] itself (not on
//! the durable store) so every role serves it: an in-memory primary, a
//! WAL-backed primary (recovery replays mutations through the public
//! mutators, repopulating the log), and a replica (stream replay does the
//! same). Epochs increase strictly, so a cursor — "give me everything after
//! epoch N" — observes each committed mutation exactly once.
//!
//! The log is bounded: when it overflows, the oldest records are dropped
//! and [`ChangeLog::since`] reports `truncated = true` for cursors that
//! predate the retained horizon, so consumers know to re-sync instead of
//! silently missing changes.

use std::collections::VecDeque;

use crate::footprint::Footprint;

/// Retained records; at one record per steward mutation this covers far
/// more history than any live cursor lags behind.
pub const DEFAULT_CHANGELOG_CAPACITY: usize = 4096;

/// One committed steward mutation, as the changefeed serves it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeRecord {
    /// The metadata epoch the mutation produced.
    pub epoch: u64,
    /// The op kind (`define_concept`, `define_mapping`, …).
    pub kind: &'static str,
    /// One-line human summary.
    pub summary: String,
    /// What the mutation touched (see [`Footprint`]).
    pub footprint: Footprint,
    /// True when overlapping cached plans are incrementally extendable
    /// over this mutation instead of fully invalidated.
    pub extension: bool,
}

/// Bounded, append-only change history.
#[derive(Debug, Default)]
pub struct ChangeLog {
    records: VecDeque<ChangeRecord>,
    /// Epoch of the newest *dropped* record (0 = nothing dropped): cursors
    /// at or before this may have missed changes.
    truncated_at: u64,
    capacity: usize,
}

impl ChangeLog {
    /// An empty log holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> ChangeLog {
        ChangeLog {
            records: VecDeque::new(),
            truncated_at: 0,
            capacity: capacity.max(1),
        }
    }

    /// Appends one record; epochs must increase strictly.
    pub fn push(&mut self, record: ChangeRecord) {
        debug_assert!(
            self.records
                .back()
                .is_none_or(|last| last.epoch < record.epoch),
            "change log epochs must increase strictly"
        );
        self.records.push_back(record);
        while self.records.len() > self.capacity {
            if let Some(dropped) = self.records.pop_front() {
                self.truncated_at = dropped.epoch;
            }
        }
    }

    /// Records with `epoch > since`, oldest first, at most `limit`. The
    /// boolean is true when records after `since` were already dropped —
    /// the cursor predates the retained horizon and should re-sync.
    pub fn since(&self, since: u64, limit: usize) -> (Vec<ChangeRecord>, bool) {
        let truncated = since < self.truncated_at;
        let records = self
            .records
            .iter()
            .filter(|r| r.epoch > since)
            .take(limit)
            .cloned()
            .collect();
        (records, truncated)
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> ChangeRecord {
        ChangeRecord {
            epoch,
            kind: "define_concept",
            summary: format!("concept C{epoch}"),
            footprint: Footprint::default(),
            extension: false,
        }
    }

    #[test]
    fn cursor_sees_each_record_exactly_once() {
        let mut log = ChangeLog::new(16);
        for epoch in 1..=6 {
            log.push(record(epoch));
        }
        let mut cursor = 0;
        let mut seen = Vec::new();
        loop {
            let (batch, truncated) = log.since(cursor, 2);
            assert!(!truncated);
            if batch.is_empty() {
                break;
            }
            cursor = batch.last().unwrap().epoch;
            seen.extend(batch.into_iter().map(|r| r.epoch));
        }
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn overflow_truncates_and_flags_stale_cursors() {
        let mut log = ChangeLog::new(3);
        for epoch in 1..=5 {
            log.push(record(epoch));
        }
        assert_eq!(log.len(), 3);
        let (records, truncated) = log.since(0, 10);
        assert!(truncated, "cursor 0 predates the horizon");
        assert_eq!(records.first().unwrap().epoch, 3);
        let (_, truncated) = log.since(2, 10);
        assert!(!truncated, "cursor 2 saw everything dropped");
    }
}

//! Dependency footprints: the metadata a mutation touches, and the metadata
//! a cached rewriting was derived from.
//!
//! The plan cache's surgical invalidation (see [`crate::cache`]) reduces
//! "is this cached plan still valid?" to a set-intersection test: a cached
//! rewriting records the concepts and wrappers it *read* while rewriting,
//! every steward mutation records the concepts and wrappers it *wrote*, and
//! the plan survives a mutation iff the two footprints are disjoint. Options
//! and prefix changes reshape every plan (column names, distinct), so they
//! carry a `global` footprint that overlaps everything.
//!
//! Footprints name concepts by full IRI text and wrappers by their local
//! name (`w1`) — the same representations [`crate::journal::MutationOp`]
//! stores, so the overlap test never needs the ontology.

use std::collections::BTreeSet;

/// The set of metadata a mutation writes or a plan reads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Concept IRIs (full text). A plan's footprint includes each walk
    /// concept's taxonomic closure (sub- and superconcepts), because
    /// coverage and identifier resolution consult both directions.
    pub concepts: BTreeSet<String>,
    /// Wrapper local names.
    pub wrappers: BTreeSet<String>,
    /// Touches every plan regardless of sets (options, prefixes).
    pub global: bool,
}

impl Footprint {
    /// The footprint that overlaps every other footprint.
    pub fn global() -> Footprint {
        Footprint {
            global: true,
            ..Footprint::default()
        }
    }

    /// A footprint over the given concept IRIs.
    pub fn concepts<I: IntoIterator<Item = String>>(concepts: I) -> Footprint {
        Footprint {
            concepts: concepts.into_iter().collect(),
            ..Footprint::default()
        }
    }

    /// True when the two footprints share a concept or a wrapper, or either
    /// is global. An empty footprint overlaps nothing.
    pub fn overlaps(&self, other: &Footprint) -> bool {
        if self.global || other.global {
            return true;
        }
        self.concepts.intersection(&other.concepts).next().is_some()
            || self.wrappers.intersection(&other.wrappers).next().is_some()
    }

    /// True when the footprint touches nothing (e.g. `add_source`, which
    /// creates a node no rewriting ever reads).
    pub fn is_empty(&self) -> bool {
        !self.global && self.concepts.is_empty() && self.wrappers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(concepts: &[&str], wrappers: &[&str]) -> Footprint {
        Footprint {
            concepts: concepts.iter().map(|s| s.to_string()).collect(),
            wrappers: wrappers.iter().map(|s| s.to_string()).collect(),
            global: false,
        }
    }

    #[test]
    fn disjoint_sets_do_not_overlap() {
        assert!(!fp(&["A"], &["w1"]).overlaps(&fp(&["B"], &["w2"])));
        assert!(fp(&["A"], &[]).overlaps(&fp(&["A", "B"], &[])));
        assert!(fp(&[], &["w1"]).overlaps(&fp(&[], &["w1"])));
    }

    #[test]
    fn global_overlaps_everything_even_empty() {
        assert!(Footprint::global().overlaps(&Footprint::default()));
        assert!(fp(&["A"], &[]).overlaps(&Footprint::global()));
        assert!(Footprint::global().overlaps(&Footprint::global()));
    }

    #[test]
    fn empty_overlaps_nothing_but_global() {
        let empty = Footprint::default();
        assert!(empty.is_empty());
        assert!(!empty.overlaps(&fp(&["A"], &["w1"])));
        assert!(!empty.overlaps(&Footprint::default()));
        assert!(empty.overlaps(&Footprint::global()));
    }
}

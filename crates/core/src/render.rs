//! Deterministic textual renderings of the paper's figures.
//!
//! The reference implementation renders these with D3.js in a browser; here
//! every figure has (a) an ASCII listing and (b) a Graphviz DOT document, so
//! the artifacts regenerate from the running system and diff cleanly.

use std::fmt::Write as _;

use mdm_rdf::term::Iri;
use mdm_rdf::turtle;

use crate::ontology::BdiOntology;
use crate::walk::Walk;

/// Figure 5 (ASCII): the global graph — concepts with their features,
/// identifiers flagged, then relations.
pub fn global_graph_text(ontology: &BdiOntology) -> String {
    let mut out = String::new();
    writeln!(out, "GLOBAL GRAPH").unwrap();
    writeln!(out, "===========").unwrap();
    for concept in ontology.concepts() {
        writeln!(out, "concept {}", ontology.compact(&concept)).unwrap();
        for feature in ontology.features_of(&concept) {
            let marker = if ontology.is_identifier(&feature) {
                "  [id] "
            } else {
                "       "
            };
            writeln!(out, "{marker}{}", ontology.compact(&feature)).unwrap();
        }
    }
    let relations = ontology.relations();
    if !relations.is_empty() {
        writeln!(out, "relations").unwrap();
        for (from, property, to) in relations {
            writeln!(
                out,
                "       {} --{}--> {}",
                ontology.compact(&from),
                ontology.compact(&property),
                ontology.compact(&to)
            )
            .unwrap();
        }
    }
    out
}

/// Figure 5 (DOT): blue concept nodes, yellow feature nodes — the paper's
/// colour legend.
pub fn global_graph_dot(ontology: &BdiOntology) -> String {
    let mut out = String::new();
    writeln!(out, "digraph global_graph {{").unwrap();
    writeln!(out, "    rankdir=LR;").unwrap();
    writeln!(out, "    node [style=filled];").unwrap();
    for concept in ontology.concepts() {
        writeln!(
            out,
            "    \"{}\" [fillcolor=lightblue, shape=ellipse];",
            ontology.compact(&concept)
        )
        .unwrap();
        for feature in ontology.features_of(&concept) {
            let colour = if ontology.is_identifier(&feature) {
                "gold"
            } else {
                "lightyellow"
            };
            writeln!(
                out,
                "    \"{}\" [fillcolor={colour}, shape=box];",
                ontology.compact(&feature)
            )
            .unwrap();
            writeln!(
                out,
                "    \"{}\" -> \"{}\" [label=\"G:hasFeature\"];",
                ontology.compact(&concept),
                ontology.compact(&feature)
            )
            .unwrap();
        }
    }
    for (from, property, to) in ontology.relations() {
        writeln!(
            out,
            "    \"{}\" -> \"{}\" [label=\"{}\", penwidth=2];",
            ontology.compact(&from),
            ontology.compact(&to),
            ontology.compact(&property)
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Figure 6 (ASCII): the source graph — sources, wrappers (with versions and
/// signatures), attributes.
pub fn source_graph_text(ontology: &BdiOntology) -> String {
    let mut out = String::new();
    writeln!(out, "SOURCE GRAPH").unwrap();
    writeln!(out, "============").unwrap();
    for source in ontology.data_sources() {
        writeln!(out, "dataSource {}", source.local_name()).unwrap();
        for wrapper in ontology.wrappers_of(&source) {
            let version = ontology
                .wrapper_version(&wrapper)
                .map(|v| format!(" (v{v})"))
                .unwrap_or_default();
            let attributes: Vec<String> = ontology
                .attributes_of(&wrapper)
                .iter()
                .map(|a| BdiOntology::attribute_name(a).to_string())
                .collect();
            writeln!(
                out,
                "    wrapper {}{version}: {}({})",
                wrapper.local_name(),
                wrapper.local_name(),
                attributes.join(", ")
            )
            .unwrap();
        }
    }
    out
}

/// Figure 6 (DOT): red sources, orange wrappers, blue attributes.
pub fn source_graph_dot(ontology: &BdiOntology) -> String {
    let mut out = String::new();
    writeln!(out, "digraph source_graph {{").unwrap();
    writeln!(out, "    rankdir=LR;").unwrap();
    writeln!(out, "    node [style=filled];").unwrap();
    for source in ontology.data_sources() {
        let source_label = source.local_name();
        writeln!(
            out,
            "    \"{source_label}\" [fillcolor=salmon, shape=ellipse];"
        )
        .unwrap();
        for wrapper in ontology.wrappers_of(&source) {
            let wrapper_label = wrapper.local_name();
            writeln!(
                out,
                "    \"{wrapper_label}\" [fillcolor=orange, shape=ellipse];"
            )
            .unwrap();
            writeln!(
                out,
                "    \"{source_label}\" -> \"{wrapper_label}\" [label=\"S:hasWrapper\"];"
            )
            .unwrap();
            for attribute in ontology.attributes_of(&wrapper) {
                // Attribute node ids are source-scoped to keep reuse visible.
                let attribute_id =
                    format!("{source_label}.{}", BdiOntology::attribute_name(&attribute));
                writeln!(
                    out,
                    "    \"{attribute_id}\" [fillcolor=lightblue, shape=box, label=\"{}\"];",
                    BdiOntology::attribute_name(&attribute)
                )
                .unwrap();
                writeln!(
                    out,
                    "    \"{wrapper_label}\" -> \"{attribute_id}\" [label=\"S:hasAttribute\"];"
                )
                .unwrap();
            }
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Figure 7 (ASCII): per wrapper, the named-graph contour and the sameAs
/// links.
pub fn mappings_text(ontology: &BdiOntology) -> String {
    let mut out = String::new();
    writeln!(out, "LAV MAPPINGS").unwrap();
    writeln!(out, "============").unwrap();
    let names: Vec<Iri> = ontology.mappings().graph_names().cloned().collect();
    for wrapper in names {
        writeln!(out, "named graph {}", wrapper.local_name()).unwrap();
        let graph = ontology
            .mappings()
            .named_graph(&wrapper)
            .expect("name enumerated from dataset");
        for (s, p, o) in graph.iter() {
            let compact = |t: &mdm_rdf::Term| -> String {
                match t.as_iri() {
                    Some(iri) => ontology.compact(iri),
                    None => t.to_string(),
                }
            };
            writeln!(out, "    {} {} {}", compact(&s), compact(&p), compact(&o)).unwrap();
        }
        for attribute in ontology.attributes_of(&wrapper) {
            if let Some(feature) = ontology.feature_of_attribute(&attribute) {
                writeln!(
                    out,
                    "    sameAs: {} ≡ {}",
                    BdiOntology::attribute_name(&attribute),
                    ontology.compact(&feature)
                )
                .unwrap();
            }
        }
    }
    out
}

/// The whole metadata state as a TriG document (global graph in the default
/// graph, one named graph per mapping) — the serialisation a Jena TDB dump
/// would give.
pub fn ontology_trig(ontology: &BdiOntology) -> String {
    let mut dataset = ontology.mappings().clone();
    dataset
        .default_graph_mut()
        .extend_from(ontology.global_graph());
    dataset
        .default_graph_mut()
        .extend_from(ontology.source_graph());
    turtle::write_dataset(&dataset, ontology.prefixes())
}

/// Figure 8 (ASCII): the walk as a pattern listing.
pub fn walk_text(ontology: &BdiOntology, walk: &Walk) -> String {
    let mut out = String::new();
    writeln!(out, "WALK").unwrap();
    writeln!(out, "====").unwrap();
    for concept in walk.concepts() {
        let features: Vec<String> = walk
            .features_of(concept)
            .iter()
            .map(|f| ontology.compact(f))
            .collect();
        writeln!(
            out,
            "    {} {{ {} }}",
            ontology.compact(concept),
            features.join(", ")
        )
        .unwrap();
    }
    for (from, property, to) in walk.relations() {
        writeln!(
            out,
            "    {} --{}--> {}",
            ontology.compact(from),
            ontology.compact(property),
            ontology.compact(to)
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure7_ontology, figure8_walk};

    #[test]
    fn global_graph_text_lists_concepts_and_ids() {
        let o = figure7_ontology();
        let text = global_graph_text(&o);
        assert!(text.contains("concept ex:Player"));
        assert!(text.contains("concept sc:SportsTeam"));
        assert!(text.contains("[id] ex:playerId"));
        assert!(text.contains("ex:Player --ex:hasTeam--> sc:SportsTeam"));
    }

    #[test]
    fn source_graph_text_shows_signatures() {
        let o = figure7_ontology();
        let text = source_graph_text(&o);
        assert!(text.contains("dataSource PlayersAPI"));
        assert!(text.contains("w1(id, pName, height, weight, score, foot, teamId)"));
        assert!(text.contains("(v1)"));
    }

    #[test]
    fn mappings_text_shows_contours_and_sameas() {
        let o = figure7_ontology();
        let text = mappings_text(&o);
        assert!(text.contains("named graph w1"));
        assert!(text.contains("sameAs: pName ≡ ex:playerName"));
        assert!(text.contains("ex:Player ex:hasTeam sc:SportsTeam"));
    }

    #[test]
    fn dot_documents_are_well_formed() {
        let o = figure7_ontology();
        for dot in [global_graph_dot(&o), source_graph_dot(&o)] {
            assert!(dot.starts_with("digraph"));
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        }
    }

    #[test]
    fn trig_round_trips_through_the_turtle_reader() {
        let o = figure7_ontology();
        let trig = ontology_trig(&o);
        let parsed = mdm_rdf::turtle::parse_dataset(&trig).unwrap();
        assert_eq!(parsed.named_graph_count(), 2);
        assert_eq!(
            parsed.default_graph().len(),
            o.global_graph().len() + o.source_graph().len()
        );
    }

    #[test]
    fn walk_text_lists_pattern() {
        let o = figure7_ontology();
        let text = walk_text(&o, &figure8_walk());
        assert!(text.contains("ex:Player { ex:playerName }"));
        assert!(text.contains("sc:SportsTeam { ex:teamName }"));
    }
}

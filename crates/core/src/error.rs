//! The crate-wide error type.

use std::fmt;

/// Errors raised across the MDM metadata lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MdmError {
    /// Ontology construction or lookup failed (unknown concept, duplicate
    /// feature, feature owned by two concepts, missing identifier, …).
    Ontology(String),
    /// Source/wrapper registration failed.
    Registration(String),
    /// A LAV mapping is invalid (not a subgraph of the global graph,
    /// sameAs to a foreign attribute, …).
    Mapping(String),
    /// A walk is invalid (empty, disconnected, references unknown elements).
    Walk(String),
    /// Query rewriting found no way to answer the walk (a concept or
    /// relation has no covering wrapper).
    Rewrite(String),
    /// Federated execution failed.
    Execution(String),
    /// A query exceeded its deadline budget.
    Timeout(String),
    /// Snapshot/restore failed.
    Repository(String),
}

impl MdmError {
    /// The error's category name (stable, used in tests and logs).
    pub fn category(&self) -> &'static str {
        match self {
            MdmError::Ontology(_) => "ontology",
            MdmError::Registration(_) => "registration",
            MdmError::Mapping(_) => "mapping",
            MdmError::Walk(_) => "walk",
            MdmError::Rewrite(_) => "rewrite",
            MdmError::Execution(_) => "execution",
            MdmError::Timeout(_) => "timeout",
            MdmError::Repository(_) => "repository",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            MdmError::Ontology(m)
            | MdmError::Registration(m)
            | MdmError::Mapping(m)
            | MdmError::Walk(m)
            | MdmError::Rewrite(m)
            | MdmError::Execution(m)
            | MdmError::Timeout(m)
            | MdmError::Repository(m) => m,
        }
    }

    /// Lifts an engine error, keeping the timeout distinction (a timeout
    /// maps to HTTP 504, an execution failure to 500).
    pub fn from_exec(error: mdm_relational::ExecError) -> MdmError {
        match error.kind {
            mdm_relational::ErrorKind::Timeout => MdmError::Timeout(error.message),
            _ => MdmError::Execution(error.message),
        }
    }
}

impl fmt::Display for MdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for MdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_and_message() {
        let e = MdmError::Mapping("w1 maps a foreign attribute".to_string());
        assert_eq!(e.category(), "mapping");
        assert_eq!(e.message(), "w1 maps a foreign attribute");
        assert_eq!(e.to_string(), "mapping error: w1 maps a foreign attribute");
    }
}

//! Journalled steward mutations: the replayable unit of the durable store.
//!
//! Every successful metadata mutation on [`crate::Mdm`] is describable as
//! one [`MutationOp`] — a small, self-contained value that encodes to a
//! compact binary payload for the write-ahead log (`mdm-store` treats it as
//! opaque bytes) and **replays** against a fresh `Mdm` during recovery.
//! Replaying the ops recorded since the last compaction on top of the
//! generation's snapshot reproduces the pre-crash metadata state exactly —
//! the crash-recovery property tests assert byte-identical canonical
//! snapshots.
//!
//! Wrapper *payloads* are data, not metadata: `RegisterWrapper` journals
//! only the signature-level registration (source, name, version,
//! attributes), mirroring the long-standing snapshot/restore semantics
//! where the execution catalog is rebuilt separately.
//!
//! ## Encoding
//!
//! One tag byte, then fields in order: strings as `u32 LE` length + UTF-8
//! bytes, vectors as `u32 LE` count + elements, booleans as one byte,
//! integers little-endian. No self-description — the WAL header's format
//! version gates compatibility.

use crate::error::MdmError;
use crate::footprint::Footprint;
use crate::mapping::MappingBuilder;
use crate::mdm::Mdm;
use crate::rewrite::RewriteOptions;
use mdm_rdf::term::Iri;

/// The sink half of the storage hook: [`crate::Mdm`] hands every mutation
/// here right after applying it in memory. Implementations (the durable
/// [`crate::durable::MetaStore`], test capture sinks) are shared behind an
/// `Arc`, hence `&self` + interior mutability.
pub trait JournalSink: Send + Sync {
    /// Records one mutation stamped with the post-mutation epoch. An `Err`
    /// means durability was lost for this record (disk full, permissions);
    /// the in-memory mutation stands, and the sink is expected to surface
    /// the failure through its health reporting.
    fn record(&self, op: &MutationOp, epoch: u64) -> Result<(), String>;

    /// Flushes buffered records to stable storage (drain/shutdown path).
    fn flush(&self) -> Result<(), String> {
        Ok(())
    }
}

/// One steward mutation, in journal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationOp {
    DefineConcept {
        concept: String,
    },
    DefineFeature {
        concept: String,
        feature: String,
        identifier: bool,
    },
    DefineRelation {
        from: String,
        property: String,
        to: String,
    },
    DefineSubconcept {
        sub: String,
        sup: String,
    },
    AddSource {
        name: String,
    },
    RegisterWrapper {
        source: String,
        wrapper: String,
        version: u32,
        attributes: Vec<String>,
    },
    DefineMapping {
        wrapper: String,
        concepts: Vec<String>,
        features: Vec<String>,
        relations: Vec<(String, String, String)>,
        same_as: Vec<(String, String)>,
    },
    BindPrefix {
        prefix: String,
        namespace: String,
    },
    SetOptions {
        distinct: bool,
        max_branches: u64,
    },
}

const TAG_CONCEPT: u8 = 1;
const TAG_FEATURE: u8 = 2;
const TAG_RELATION: u8 = 3;
const TAG_SUBCONCEPT: u8 = 4;
const TAG_SOURCE: u8 = 5;
const TAG_WRAPPER: u8 = 6;
const TAG_MAPPING: u8 = 7;
const TAG_PREFIX: u8 = 8;
const TAG_OPTIONS: u8 = 9;

impl MutationOp {
    /// Captures a mapping mutation from the builder about to be applied.
    pub(crate) fn from_mapping(builder: &MappingBuilder) -> MutationOp {
        MutationOp::DefineMapping {
            wrapper: builder.wrapper.local_name().to_string(),
            concepts: builder.concepts.iter().map(|c| c.to_string()).collect(),
            features: builder.features.iter().map(|f| f.to_string()).collect(),
            relations: builder
                .relations
                .iter()
                .map(|(f, p, t)| (f.to_string(), p.to_string(), t.to_string()))
                .collect(),
            same_as: builder
                .same_as
                .iter()
                .map(|(a, f)| (a.clone(), f.to_string()))
                .collect(),
        }
    }

    /// The binary journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            MutationOp::DefineConcept { concept } => {
                out.push(TAG_CONCEPT);
                put_str(&mut out, concept);
            }
            MutationOp::DefineFeature {
                concept,
                feature,
                identifier,
            } => {
                out.push(TAG_FEATURE);
                put_str(&mut out, concept);
                put_str(&mut out, feature);
                out.push(u8::from(*identifier));
            }
            MutationOp::DefineRelation { from, property, to } => {
                out.push(TAG_RELATION);
                put_str(&mut out, from);
                put_str(&mut out, property);
                put_str(&mut out, to);
            }
            MutationOp::DefineSubconcept { sub, sup } => {
                out.push(TAG_SUBCONCEPT);
                put_str(&mut out, sub);
                put_str(&mut out, sup);
            }
            MutationOp::AddSource { name } => {
                out.push(TAG_SOURCE);
                put_str(&mut out, name);
            }
            MutationOp::RegisterWrapper {
                source,
                wrapper,
                version,
                attributes,
            } => {
                out.push(TAG_WRAPPER);
                put_str(&mut out, source);
                put_str(&mut out, wrapper);
                out.extend_from_slice(&version.to_le_bytes());
                put_count(&mut out, attributes.len());
                for attribute in attributes {
                    put_str(&mut out, attribute);
                }
            }
            MutationOp::DefineMapping {
                wrapper,
                concepts,
                features,
                relations,
                same_as,
            } => {
                out.push(TAG_MAPPING);
                put_str(&mut out, wrapper);
                put_count(&mut out, concepts.len());
                for concept in concepts {
                    put_str(&mut out, concept);
                }
                put_count(&mut out, features.len());
                for feature in features {
                    put_str(&mut out, feature);
                }
                put_count(&mut out, relations.len());
                for (from, property, to) in relations {
                    put_str(&mut out, from);
                    put_str(&mut out, property);
                    put_str(&mut out, to);
                }
                put_count(&mut out, same_as.len());
                for (attribute, feature) in same_as {
                    put_str(&mut out, attribute);
                    put_str(&mut out, feature);
                }
            }
            MutationOp::BindPrefix { prefix, namespace } => {
                out.push(TAG_PREFIX);
                put_str(&mut out, prefix);
                put_str(&mut out, namespace);
            }
            MutationOp::SetOptions {
                distinct,
                max_branches,
            } => {
                out.push(TAG_OPTIONS);
                out.push(u8::from(*distinct));
                out.extend_from_slice(&max_branches.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one journal payload; the inverse of [`MutationOp::encode`].
    pub fn decode(bytes: &[u8]) -> Result<MutationOp, MdmError> {
        let mut cursor = Cursor { bytes, offset: 0 };
        let tag = cursor.byte()?;
        let op = match tag {
            TAG_CONCEPT => MutationOp::DefineConcept {
                concept: cursor.string()?,
            },
            TAG_FEATURE => MutationOp::DefineFeature {
                concept: cursor.string()?,
                feature: cursor.string()?,
                identifier: cursor.byte()? != 0,
            },
            TAG_RELATION => MutationOp::DefineRelation {
                from: cursor.string()?,
                property: cursor.string()?,
                to: cursor.string()?,
            },
            TAG_SUBCONCEPT => MutationOp::DefineSubconcept {
                sub: cursor.string()?,
                sup: cursor.string()?,
            },
            TAG_SOURCE => MutationOp::AddSource {
                name: cursor.string()?,
            },
            TAG_WRAPPER => MutationOp::RegisterWrapper {
                source: cursor.string()?,
                wrapper: cursor.string()?,
                version: cursor.u32()?,
                attributes: cursor.strings()?,
            },
            TAG_MAPPING => MutationOp::DefineMapping {
                wrapper: cursor.string()?,
                concepts: cursor.strings()?,
                features: cursor.strings()?,
                relations: {
                    let count = cursor.count()?;
                    let mut edges = Vec::with_capacity(count);
                    for _ in 0..count {
                        edges.push((cursor.string()?, cursor.string()?, cursor.string()?));
                    }
                    edges
                },
                same_as: {
                    let count = cursor.count()?;
                    let mut links = Vec::with_capacity(count);
                    for _ in 0..count {
                        links.push((cursor.string()?, cursor.string()?));
                    }
                    links
                },
            },
            TAG_PREFIX => MutationOp::BindPrefix {
                prefix: cursor.string()?,
                namespace: cursor.string()?,
            },
            TAG_OPTIONS => MutationOp::SetOptions {
                distinct: cursor.byte()? != 0,
                max_branches: cursor.u64()?,
            },
            other => {
                return Err(MdmError::Repository(format!(
                    "unknown journal op tag {other}"
                )))
            }
        };
        if cursor.offset != bytes.len() {
            return Err(MdmError::Repository(format!(
                "journal op has {} trailing bytes",
                bytes.len() - cursor.offset
            )));
        }
        Ok(op)
    }

    /// Replays this mutation against a system. Used during recovery, where
    /// the sink is not yet attached — the replay must not re-journal.
    pub fn apply(&self, mdm: &mut Mdm) -> Result<(), MdmError> {
        match self {
            MutationOp::DefineConcept { concept } => mdm.define_concept(&iri(concept)),
            MutationOp::DefineFeature {
                concept,
                feature,
                identifier,
            } => {
                let concept = iri(concept);
                let feature = iri(feature);
                if *identifier {
                    mdm.define_identifier(&concept, &feature)
                } else {
                    mdm.define_feature(&concept, &feature)
                }
            }
            MutationOp::DefineRelation { from, property, to } => {
                mdm.define_relation(&iri(from), &iri(property), &iri(to))
            }
            MutationOp::DefineSubconcept { sub, sup } => {
                mdm.define_subconcept(&iri(sub), &iri(sup))
            }
            MutationOp::AddSource { name } => mdm.add_source(name).map(|_| ()),
            MutationOp::RegisterWrapper {
                source,
                wrapper,
                version,
                attributes,
            } => mdm
                .register_wrapper_metadata(source, wrapper, *version, attributes)
                .map(|_| ()),
            MutationOp::DefineMapping {
                wrapper,
                concepts,
                features,
                relations,
                same_as,
            } => {
                let mut builder = MappingBuilder::for_wrapper(wrapper);
                for concept in concepts {
                    builder = builder.cover_concept(&iri(concept));
                }
                for feature in features {
                    builder = builder.cover_feature(&iri(feature));
                }
                for (from, property, to) in relations {
                    builder = builder.cover_relation(&iri(from), &iri(property), &iri(to));
                }
                for (attribute, feature) in same_as {
                    builder = builder.same_as(attribute, &iri(feature));
                }
                mdm.define_mapping(builder).map(|_| ())
            }
            MutationOp::BindPrefix { prefix, namespace } => {
                mdm.bind_prefix_internal(prefix, namespace);
                Ok(())
            }
            MutationOp::SetOptions {
                distinct,
                max_branches,
            } => {
                mdm.set_options(RewriteOptions {
                    distinct: *distinct,
                    max_branches: *max_branches as usize,
                });
                Ok(())
            }
        }
    }

    /// The dependency footprint this mutation *writes*: which concepts and
    /// wrappers it touches. The plan cache invalidates a cached rewriting
    /// only when a mutation's footprint intersects the plan's read
    /// footprint (see [`crate::cache`]).
    ///
    /// Per-op reasoning:
    /// * graph definitions touch the concepts they name (a relation or
    ///   taxonomy edge touches both endpoints);
    /// * `AddSource` creates a source node no rewriting ever reads — empty;
    /// * `RegisterWrapper` touches only the (necessarily fresh — duplicate
    ///   names are rejected) wrapper name: an unmapped wrapper is invisible
    ///   to rewriting, so this never overlaps an existing plan;
    /// * `DefineMapping` touches its wrapper plus every concept the mapping
    ///   covers (coverage is scoped to the mapping's own contour, so the
    ///   covered-concepts list bounds its effect);
    /// * prefixes flow into compacted column names and options into plan
    ///   shape, so both are global.
    pub fn footprint(&self) -> Footprint {
        let mut fp = Footprint::default();
        match self {
            MutationOp::DefineConcept { concept } => {
                fp.concepts.insert(concept.clone());
            }
            MutationOp::DefineFeature { concept, .. } => {
                fp.concepts.insert(concept.clone());
            }
            MutationOp::DefineRelation { from, to, .. } => {
                fp.concepts.insert(from.clone());
                fp.concepts.insert(to.clone());
            }
            MutationOp::DefineSubconcept { sub, sup } => {
                fp.concepts.insert(sub.clone());
                fp.concepts.insert(sup.clone());
            }
            MutationOp::AddSource { .. } => {}
            MutationOp::RegisterWrapper { wrapper, .. } => {
                fp.wrappers.insert(wrapper.clone());
            }
            MutationOp::DefineMapping {
                wrapper, concepts, ..
            } => {
                fp.wrappers.insert(wrapper.clone());
                fp.concepts.extend(concepts.iter().cloned());
            }
            MutationOp::BindPrefix { .. } | MutationOp::SetOptions { .. } => {
                fp.global = true;
            }
        }
        fp
    }

    /// True when a cached plan overlapping *only* mutations of this kind
    /// can be extended incrementally instead of rewritten from scratch.
    /// Mappings are immutable once defined (duplicates are rejected), so a
    /// `DefineMapping` strictly *adds* union branches for its covered
    /// concepts — the cache re-runs phase (b) for just those concepts and
    /// re-assembles. Every other overlapping mutation changes inputs the
    /// reusable fragments were computed from, so it forces a full rewrite.
    pub fn is_extension(&self) -> bool {
        matches!(self, MutationOp::DefineMapping { .. })
    }

    /// One-line human summary for the `/changes` feed and the CLI.
    pub fn summary(&self) -> String {
        fn local(text: &str) -> &str {
            text.rsplit(['/', '#']).next().unwrap_or(text)
        }
        match self {
            MutationOp::DefineConcept { concept } => {
                format!("concept {}", local(concept))
            }
            MutationOp::DefineFeature {
                concept,
                feature,
                identifier,
            } => format!(
                "{} {} of {}",
                if *identifier { "identifier" } else { "feature" },
                local(feature),
                local(concept)
            ),
            MutationOp::DefineRelation { from, property, to } => {
                format!(
                    "relation {} -{}-> {}",
                    local(from),
                    local(property),
                    local(to)
                )
            }
            MutationOp::DefineSubconcept { sub, sup } => {
                format!("{} subconcept of {}", local(sub), local(sup))
            }
            MutationOp::AddSource { name } => format!("source {name}"),
            MutationOp::RegisterWrapper {
                source,
                wrapper,
                version,
                attributes,
            } => format!(
                "wrapper {wrapper} v{version} over {source} ({} attributes)",
                attributes.len()
            ),
            MutationOp::DefineMapping {
                wrapper, concepts, ..
            } => format!(
                "mapping {wrapper} covering {}",
                concepts
                    .iter()
                    .map(|c| local(c))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            MutationOp::BindPrefix { prefix, namespace } => {
                format!("prefix {prefix}: <{namespace}>")
            }
            MutationOp::SetOptions {
                distinct,
                max_branches,
            } => format!("options distinct={distinct} max_branches={max_branches}"),
        }
    }

    /// A short label for logs and error contexts.
    pub fn kind(&self) -> &'static str {
        match self {
            MutationOp::DefineConcept { .. } => "define_concept",
            MutationOp::DefineFeature { .. } => "define_feature",
            MutationOp::DefineRelation { .. } => "define_relation",
            MutationOp::DefineSubconcept { .. } => "define_subconcept",
            MutationOp::AddSource { .. } => "add_source",
            MutationOp::RegisterWrapper { .. } => "register_wrapper",
            MutationOp::DefineMapping { .. } => "define_mapping",
            MutationOp::BindPrefix { .. } => "bind_prefix",
            MutationOp::SetOptions { .. } => "set_options",
        }
    }
}

fn iri(text: &str) -> Iri {
    Iri::new(text)
}

fn put_str(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

fn put_count(out: &mut Vec<u8>, count: usize) {
    out.extend_from_slice(&(count as u32).to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], MdmError> {
        if self.offset + n > self.bytes.len() {
            return Err(MdmError::Repository(
                "journal op truncated mid-field".to_string(),
            ));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, MdmError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MdmError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, MdmError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn count(&mut self) -> Result<usize, MdmError> {
        Ok(self.u32()? as usize)
    }

    fn string(&mut self) -> Result<String, MdmError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| MdmError::Repository("journal op holds non-UTF-8 text".to_string()))
    }

    fn strings(&mut self) -> Result<Vec<String>, MdmError> {
        let count = self.count()?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.string()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MutationOp> {
        vec![
            MutationOp::DefineConcept {
                concept: "http://example.org/Player".into(),
            },
            MutationOp::DefineFeature {
                concept: "http://example.org/Player".into(),
                feature: "http://example.org/playerId".into(),
                identifier: true,
            },
            MutationOp::DefineRelation {
                from: "http://example.org/Player".into(),
                property: "http://example.org/hasTeam".into(),
                to: "http://schema.org/SportsTeam".into(),
            },
            MutationOp::DefineSubconcept {
                sub: "http://example.org/Goalkeeper".into(),
                sup: "http://example.org/Player".into(),
            },
            MutationOp::AddSource {
                name: "PlayersAPI".into(),
            },
            MutationOp::RegisterWrapper {
                source: "PlayersAPI".into(),
                wrapper: "w1".into(),
                version: 2,
                attributes: vec!["id".into(), "pName".into()],
            },
            MutationOp::DefineMapping {
                wrapper: "w1".into(),
                concepts: vec!["http://example.org/Player".into()],
                features: vec!["http://example.org/playerId".into()],
                relations: vec![(
                    "http://example.org/Player".into(),
                    "http://example.org/hasTeam".into(),
                    "http://schema.org/SportsTeam".into(),
                )],
                same_as: vec![("id".into(), "http://example.org/playerId".into())],
            },
            MutationOp::BindPrefix {
                prefix: "ex".into(),
                namespace: "http://example.org/".into(),
            },
            MutationOp::SetOptions {
                distinct: false,
                max_branches: 4096,
            },
        ]
    }

    #[test]
    fn every_op_round_trips_through_bytes() {
        for op in sample_ops() {
            let bytes = op.encode();
            let decoded = MutationOp::decode(&bytes).unwrap();
            assert_eq!(decoded, op, "op {:?}", op.kind());
        }
    }

    #[test]
    fn truncated_and_garbage_payloads_rejected() {
        let bytes = sample_ops()[1].encode();
        for cut in 1..bytes.len() {
            assert!(
                MutationOp::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(MutationOp::decode(&[]).is_err());
        assert!(MutationOp::decode(&[250, 0, 0]).is_err());
        // Trailing bytes after a complete op are rejected too.
        let mut padded = bytes;
        padded.push(0);
        assert!(MutationOp::decode(&padded).is_err());
    }

    #[test]
    fn replayed_ops_rebuild_the_state() {
        let mut direct = Mdm::new();
        let player = Iri::new("http://example.org/Player");
        let id = Iri::new("http://example.org/playerId");
        direct.define_concept(&player).unwrap();
        direct.define_identifier(&player, &id).unwrap();
        direct.add_source("PlayersAPI").unwrap();

        let ops = vec![
            MutationOp::DefineConcept {
                concept: player.to_string(),
            },
            MutationOp::DefineFeature {
                concept: player.to_string(),
                feature: id.to_string(),
                identifier: true,
            },
            MutationOp::AddSource {
                name: "PlayersAPI".into(),
            },
        ];
        let mut replayed = Mdm::new();
        for op in &ops {
            let round_tripped = MutationOp::decode(&op.encode()).unwrap();
            round_tripped.apply(&mut replayed).unwrap();
        }
        assert_eq!(replayed.snapshot(), direct.snapshot());
        assert_eq!(replayed.epoch(), direct.epoch());
    }
}

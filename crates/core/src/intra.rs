//! Phase (b) of query rewriting: **intra-concept generation** (paper §2.4).
//!
//! For each concept in the (expanded) walk, this phase "generates partial
//! walks per concept indicating how to query the wrappers in order to obtain
//! the requested features for the concept at hand".
//!
//! A wrapper *covers* feature `f` of concept `c` when its LAV named graph
//! contains the `(c, G:hasFeature, f)` edge **and** one of its attributes is
//! `owl:sameAs f`. A [`PartialWalk`] is a *minimal* set of covering wrappers
//! that together provide all requested features of `c`; when it contains
//! more than one wrapper they join on the attributes mapped to `c`'s
//! identifier (the only join MDM permits, §2.3). Distinct minimal covers are
//! alternative ways to answer — they become union branches downstream.
//! Multiple *versions* of a source naturally appear here as distinct
//! single-wrapper covers, which is how old and new schema versions are both
//! fetched (§3, "governance of evolution").

use std::collections::BTreeMap;

use mdm_rdf::term::Iri;
use mdm_rdf::vocab::bdi;

use crate::error::MdmError;
use crate::ontology::BdiOntology;

/// Upper bound on alternatives per concept; beyond this the walk is
/// ambiguous enough that the steward should restructure mappings.
pub const MAX_COVERS_PER_CONCEPT: usize = 256;

/// One wrapper's contribution to one concept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// The wrapper IRI.
    pub wrapper: Iri,
    /// The wrapper's relation name (IRI local name), e.g. `w1`.
    pub wrapper_name: String,
    /// The concept node through which this wrapper covers — the walk's
    /// concept itself, or one of its subconcepts (taxonomies, §2.1).
    pub via: Iri,
    /// Covered requested features → the wrapper attribute (column) name.
    pub feature_columns: BTreeMap<Iri, String>,
    /// The column bound to the concept's identifier.
    pub id_column: String,
}

/// One alternative to obtain a concept's requested features: a minimal set
/// of wrappers, joined pairwise on their identifier columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialWalk {
    pub concept: Iri,
    /// The concept's identifier feature.
    pub identifier: Iri,
    /// The participating wrappers (deterministic order).
    pub wrappers: Vec<Coverage>,
}

impl PartialWalk {
    /// The column providing `feature`, with its wrapper name, if any
    /// wrapper of this partial walk covers it.
    pub fn column_for(&self, feature: &Iri) -> Option<(&str, &str)> {
        self.wrappers.iter().find_map(|coverage| {
            coverage
                .feature_columns
                .get(feature)
                .map(|column| (coverage.wrapper_name.as_str(), column.as_str()))
        })
    }
}

/// Computes every wrapper's coverage of `concept`'s requested features.
///
/// Only wrappers that map the concept's identifier participate — without
/// the identifier a wrapper's rows cannot be joined or deduplicated, so the
/// BDI ontology's design guidelines exclude them (our mapping validator
/// enforces id coverage, so in practice this filters wrappers mapped to
/// *other* concepts).
pub fn coverages(
    ontology: &BdiOntology,
    concept: &Iri,
    features: &[Iri],
) -> Result<(Iri, Vec<Coverage>), MdmError> {
    let identifier = ontology
        .identifier_of(concept)
        .ok_or_else(|| MdmError::Rewrite(format!("concept '{concept}' has no identifier")))?;
    let mut out = Vec::new();
    // A wrapper may cover the walk's concept directly or through a
    // subconcept (taxonomies, §2.1). Subconcepts participate only when they
    // *share* the concept's identifier (their own would not join).
    for via in ontology.subconcepts_of(concept) {
        if ontology.identifier_of(&via).as_ref() != Some(&identifier) {
            continue;
        }
        for wrapper in ontology.wrappers() {
            let Some(named) = ontology.mappings().named_graph(&wrapper) else {
                continue; // registered but unmapped
            };
            // The wrapper must cover the identifier edge under `via` and
            // map the identifier.
            if !named.contains(&via.term(), &bdi::HAS_FEATURE.term(), &identifier.term()) {
                continue;
            }
            // One pass over the wrapper's sameAs links instead of a scan
            // per probed feature.
            let columns = ontology.wrapper_feature_columns(&wrapper);
            let Some(id_column) = columns.get(&identifier) else {
                continue;
            };
            let mut feature_columns = BTreeMap::new();
            for feature in features {
                if !named.contains(&via.term(), &bdi::HAS_FEATURE.term(), &feature.term()) {
                    continue;
                }
                if let Some(column) = columns.get(feature) {
                    feature_columns.insert(feature.clone(), column.clone());
                }
            }
            if feature_columns.is_empty() {
                continue;
            }
            out.push(Coverage {
                wrapper_name: wrapper.local_name().to_string(),
                id_column: id_column.clone(),
                wrapper,
                via: via.clone(),
                feature_columns,
            });
        }
    }
    Ok((identifier, out))
}

/// Generates the partial walks (minimal covers) for one concept.
pub fn partial_walks(
    ontology: &BdiOntology,
    concept: &Iri,
    features: &[Iri],
) -> Result<Vec<PartialWalk>, MdmError> {
    let (identifier, candidates) = coverages(ontology, concept, features)?;
    if candidates.is_empty() {
        return Err(MdmError::Rewrite(format!(
            "no wrapper covers concept '{concept}'; the walk cannot be answered"
        )));
    }
    // Unanswerable features fail fast with a precise message.
    for feature in features {
        if !candidates
            .iter()
            .any(|c| c.feature_columns.contains_key(feature))
        {
            return Err(MdmError::Rewrite(format!(
                "no wrapper covers feature '{feature}' of concept '{concept}'"
            )));
        }
    }
    // Multi-wrapper covers only combine wrappers reaching the concept
    // through the *same* node (joining a Goalkeeper wrapper with a Striker
    // wrapper would compute an intersection, not a cover), so enumeration
    // runs per `via` group; alternatives union across groups.
    let mut vias: Vec<Iri> = Vec::new();
    for candidate in &candidates {
        if !vias.contains(&candidate.via) {
            vias.push(candidate.via.clone());
        }
    }
    let mut out: Vec<PartialWalk> = Vec::new();
    for via in vias {
        let group: Vec<Coverage> = candidates
            .iter()
            .filter(|c| c.via == via)
            .cloned()
            .collect();
        // A group that cannot cover all features contributes nothing (but
        // another group might; completeness is checked above over all
        // candidates — here we only require *some* group to cover).
        let coverable = features
            .iter()
            .all(|f| group.iter().any(|c| c.feature_columns.contains_key(f)));
        if !coverable {
            continue;
        }
        let mut covers: Vec<Vec<usize>> = Vec::new();
        enumerate_minimal_covers(&group, features, &mut covers)?;
        out.extend(covers.into_iter().map(|indices| PartialWalk {
            concept: concept.clone(),
            identifier: identifier.clone(),
            wrappers: indices.into_iter().map(|i| group[i].clone()).collect(),
        }));
    }
    if out.is_empty() {
        return Err(MdmError::Rewrite(format!(
            "the features requested of '{concept}' are spread across subconcepts \
             no single taxonomy branch covers"
        )));
    }
    // Deterministic alternative order: by participating wrapper names.
    out.sort_by_key(|pw| {
        pw.wrappers
            .iter()
            .map(|c| c.wrapper_name.clone())
            .collect::<Vec<_>>()
    });
    Ok(out)
}

/// Enumerates all minimal index-sets of `candidates` whose coverages union
/// to `features`.
fn enumerate_minimal_covers(
    candidates: &[Coverage],
    features: &[Iri],
    out: &mut Vec<Vec<usize>>,
) -> Result<(), MdmError> {
    // Represent coverage as bitmasks over the feature list.
    let masks: Vec<u64> = candidates
        .iter()
        .map(|c| {
            features
                .iter()
                .enumerate()
                .filter(|(_, f)| c.feature_columns.contains_key(*f))
                .fold(0u64, |mask, (i, _)| mask | (1 << i))
        })
        .collect();
    if features.len() > 63 {
        return Err(MdmError::Rewrite(format!(
            "walk requests {} features of one concept; the supported maximum is 63",
            features.len()
        )));
    }
    let full: u64 = if features.is_empty() {
        0
    } else {
        (1u64 << features.len()) - 1
    };
    let mut chosen: Vec<usize> = Vec::new();
    search(&masks, full, 0, &mut chosen, out);
    if out.len() > MAX_COVERS_PER_CONCEPT {
        return Err(MdmError::Rewrite(format!(
            "{} alternative covers for one concept exceed the limit of {MAX_COVERS_PER_CONCEPT}",
            out.len()
        )));
    }
    // Keep only minimal covers (no chosen wrapper is redundant).
    out.retain(|indices| {
        indices.iter().all(|&skip| {
            let without: u64 = indices
                .iter()
                .filter(|&&i| i != skip)
                .fold(0, |m, &i| m | masks[i]);
            without != full
        })
    });
    // Dedup (search can find the same set along different paths — it cannot
    // with index-increasing recursion, but keep the invariant locally
    // checkable).
    out.sort();
    out.dedup();
    Ok(())
}

fn search(
    masks: &[u64],
    full: u64,
    covered: u64,
    chosen: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if covered == full {
        let mut cover = chosen.clone();
        cover.sort_unstable();
        out.push(cover);
        return;
    }
    if out.len() > MAX_COVERS_PER_CONCEPT {
        return; // caller reports the overflow
    }
    // Branch only over wrappers covering the *first* uncovered feature:
    // every cover must contain one, so this is complete, and it prunes
    // most non-minimal supersets. Unlike an index-increasing scan it may
    // reach the same set along two traces (two chosen wrappers covering
    // each other's trigger features); the caller's sort+dedup collapses
    // those.
    let first_uncovered = (!covered & full).trailing_zeros();
    for i in 0..masks.len() {
        if chosen.contains(&i) {
            continue;
        }
        if masks[i] & (1 << first_uncovered) == 0 {
            continue;
        }
        chosen.push(i);
        search(masks, full, covered | masks[i], chosen, out);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::expand;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk};
    use mdm_rdf::vocab;

    #[test]
    fn player_concept_is_covered_by_w1() {
        let o = figure7_ontology();
        let walk = expand(&figure8_walk(), &o).unwrap().walk;
        let features = walk.features_of(&ex("Player")).to_vec();
        let alternatives = partial_walks(&o, &ex("Player"), &features).unwrap();
        assert_eq!(alternatives.len(), 1);
        let pw = &alternatives[0];
        assert_eq!(pw.wrappers.len(), 1);
        assert_eq!(pw.wrappers[0].wrapper_name, "w1");
        assert_eq!(pw.column_for(&ex("playerName")), Some(("w1", "pName")));
        assert_eq!(pw.wrappers[0].id_column, "id");
    }

    #[test]
    fn team_concept_prefers_minimal_cover() {
        let o = figure7_ontology();
        let team = vocab::schema::SPORTS_TEAM.iri();
        // Request teamId + teamName: w2 covers both; w1 covers only teamId,
        // so {w1, w2} is non-minimal and {w1} incomplete.
        let alternatives = partial_walks(&o, &team, &[ex("teamId"), ex("teamName")]).unwrap();
        assert_eq!(alternatives.len(), 1);
        assert_eq!(alternatives[0].wrappers[0].wrapper_name, "w2");
    }

    #[test]
    fn id_only_request_yields_both_wrappers_as_alternatives() {
        let o = figure7_ontology();
        let team = vocab::schema::SPORTS_TEAM.iri();
        // Both w1 and w2 map sc:SportsTeam's id (Figure 7's overlap) —
        // two single-wrapper alternatives (a union).
        let alternatives = partial_walks(&o, &team, &[ex("teamId")]).unwrap();
        assert_eq!(alternatives.len(), 2);
        let names: Vec<&str> = alternatives
            .iter()
            .map(|a| a.wrappers[0].wrapper_name.as_str())
            .collect();
        assert_eq!(names, vec!["w1", "w2"]);
    }

    #[test]
    fn versions_become_alternatives() {
        let o = evolved_ontology();
        // Player name is covered by w1 (v1) and w3 (v2).
        let alternatives =
            partial_walks(&o, &ex("Player"), &[ex("playerId"), ex("playerName")]).unwrap();
        assert_eq!(alternatives.len(), 2);
        let names: Vec<&str> = alternatives
            .iter()
            .map(|a| a.wrappers[0].wrapper_name.as_str())
            .collect();
        assert_eq!(names, vec!["w1", "w3"]);
    }

    #[test]
    fn multi_wrapper_join_cover() {
        let o = evolved_ontology();
        // score is only in w1 (v2 dropped it); nationality only in w3.
        // Requesting both forces the join cover {w1, w3}.
        let alternatives = partial_walks(
            &o,
            &ex("Player"),
            &[ex("playerId"), ex("score"), ex("nationality")],
        )
        .unwrap();
        assert_eq!(alternatives.len(), 1);
        let names: Vec<&str> = alternatives[0]
            .wrappers
            .iter()
            .map(|c| c.wrapper_name.as_str())
            .collect();
        assert_eq!(names, vec!["w1", "w3"]);
    }

    #[test]
    fn uncovered_feature_is_a_precise_error() {
        let o = figure7_ontology();
        // Add an unmapped feature to the ontology.
        let mut o2 = o;
        o2.add_feature(&ex("Player"), &ex("birthday")).unwrap();
        let err = partial_walks(&o2, &ex("Player"), &[ex("playerId"), ex("birthday")]).unwrap_err();
        assert!(err.message().contains("birthday"));
        assert!(err.message().contains("no wrapper covers feature"));
    }

    #[test]
    fn unmapped_concept_is_an_error() {
        let mut o = figure7_ontology();
        let stadium = ex("Stadium");
        o.add_concept(&stadium).unwrap();
        o.add_identifier(&stadium, &ex("stadiumId")).unwrap();
        let err = partial_walks(&o, &stadium, &[ex("stadiumId")]).unwrap_err();
        assert!(err.message().contains("no wrapper covers concept"));
    }

    #[test]
    fn minimal_cover_enumeration_is_exact() {
        // Synthetic: features f0..f2; wrappers A{f0,f1}, B{f1,f2}, C{f0,f1,f2}.
        // Minimal covers of {f0,f1,f2}: {A,B} and {C}.
        let f: Vec<Iri> = (0..3).map(|i| ex(&format!("f{i}"))).collect();
        let mk = |name: &str, covers: &[usize]| Coverage {
            wrapper: BdiOntology::wrapper_iri(name),
            wrapper_name: name.to_string(),
            via: ex("C"),
            id_column: "id".to_string(),
            feature_columns: covers
                .iter()
                .map(|&i| (f[i].clone(), format!("a{i}")))
                .collect(),
        };
        let candidates = vec![mk("A", &[0, 1]), mk("B", &[1, 2]), mk("C", &[0, 1, 2])];
        let mut covers = Vec::new();
        enumerate_minimal_covers(&candidates, &f, &mut covers).unwrap();
        assert_eq!(covers, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn minimal_cover_found_regardless_of_candidate_order() {
        // Regression: X={f1,f2} listed before Y={f0,f2} (think: the id
        // feature sits at the END of the expanded list, and the wrapper
        // covering the first feature has the higher index). An
        // index-increasing search dead-ends after picking Y; the
        // enumeration must still find {X, Y}.
        let f: Vec<Iri> = (0..3).map(|i| ex(&format!("f{i}"))).collect();
        let mk = |name: &str, covers: &[usize]| Coverage {
            wrapper: BdiOntology::wrapper_iri(name),
            wrapper_name: name.to_string(),
            via: ex("C"),
            id_column: "id".to_string(),
            feature_columns: covers
                .iter()
                .map(|&i| (f[i].clone(), format!("a{i}")))
                .collect(),
        };
        let candidates = vec![mk("X", &[1, 2]), mk("Y", &[0, 2])];
        let mut covers = Vec::new();
        enumerate_minimal_covers(&candidates, &f, &mut covers).unwrap();
        assert_eq!(covers, vec![vec![0, 1]], "must find the X+Y cover");
    }
}

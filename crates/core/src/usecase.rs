//! The paper's motivational use case, fully wired: European football data
//! from four simulated REST APIs behind the BDI ontology.
//!
//! Shared by the examples, the evaluation harness and the integration
//! tests, so every consumer demonstrates the exact Figure 5/6/7
//! configuration.

use mdm_rdf::term::Iri;
use mdm_rdf::vocab;
use mdm_wrappers::football::{self, FootballEcosystem};

use crate::error::MdmError;
use crate::mapping::MappingBuilder;
use crate::mdm::Mdm;
use crate::walk::Walk;

/// `ex:<local>` IRIs of the use case's custom vocabulary.
pub fn ex(local: &str) -> Iri {
    Iri::new(format!("{}{local}", vocab::EXAMPLE_NS))
}

/// The `sc:SportsTeam` concept (reused from schema.org, §2.1).
pub fn sports_team() -> Iri {
    vocab::schema::SPORTS_TEAM.iri()
}

/// Builds the Figure 5 global graph (football domain of Figure 1) into a
/// fresh [`Mdm`]: Player, sc:SportsTeam, League, Country with identifiers,
/// features and relations.
pub fn define_global_graph(mdm: &mut Mdm) -> Result<(), MdmError> {
    let player = ex("Player");
    let team = sports_team();
    let league = ex("League");
    let country = ex("Country");
    mdm.define_concept(&player)?;
    mdm.define_concept(&team)?;
    mdm.define_concept(&league)?;
    mdm.define_concept(&country)?;

    mdm.define_identifier(&player, &ex("playerId"))?;
    mdm.define_feature(&player, &ex("playerName"))?;
    mdm.define_feature(&player, &ex("height"))?;
    mdm.define_feature(&player, &ex("weight"))?;
    mdm.define_feature(&player, &ex("score"))?;
    mdm.define_feature(&player, &ex("foot"))?;

    mdm.define_identifier(&team, &ex("teamId"))?;
    mdm.define_feature(&team, &ex("teamName"))?;
    mdm.define_feature(&team, &ex("shortName"))?;

    mdm.define_identifier(&league, &ex("leagueId"))?;
    mdm.define_feature(&league, &ex("leagueName"))?;

    mdm.define_identifier(&country, &ex("countryId"))?;
    mdm.define_feature(&country, &ex("countryName"))?;

    mdm.define_relation(&player, &ex("hasTeam"), &team)?;
    mdm.define_relation(&team, &ex("playsIn"), &league)?;
    mdm.define_relation(&league, &ex("ofCountry"), &country)?;
    mdm.define_relation(&player, &ex("hasNationality"), &country)?;
    Ok(())
}

/// Registers the v1 wrappers (w1, w2, w4, w5, w6, w7) and their Figure 7
/// LAV mappings.
pub fn register_v1(mdm: &mut Mdm, eco: &FootballEcosystem) -> Result<(), MdmError> {
    let player = ex("Player");
    let team = sports_team();
    let league = ex("League");
    let country = ex("Country");

    mdm.add_source("PlayersAPI")?;
    mdm.add_source("TeamsAPI")?;
    mdm.add_source("LeaguesAPI")?;
    mdm.add_source("CountriesAPI")?;

    // w1: Players v1 — the exact Figure 7 red contour.
    mdm.register_wrapper(football::w1_players_v1(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w1")
            .cover_concept(&player)
            .cover_concept(&team)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .cover_feature(&ex("height"))
            .cover_feature(&ex("weight"))
            .cover_feature(&ex("score"))
            .cover_feature(&ex("foot"))
            .cover_feature(&ex("teamId"))
            .cover_relation(&player, &ex("hasTeam"), &team)
            .same_as("id", &ex("playerId"))
            .same_as("pName", &ex("playerName"))
            .same_as("height", &ex("height"))
            .same_as("weight", &ex("weight"))
            .same_as("score", &ex("score"))
            .same_as("foot", &ex("foot"))
            .same_as("teamId", &ex("teamId")),
    )?;

    // w2: Teams v1 — the green contour.
    mdm.register_wrapper(football::w2_teams(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w2")
            .cover_concept(&team)
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("teamName"))
            .cover_feature(&ex("shortName"))
            .same_as("id", &ex("teamId"))
            .same_as("name", &ex("teamName"))
            .same_as("shortName", &ex("shortName")),
    )?;

    // w4: Leagues.
    mdm.register_wrapper(football::w4_leagues(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w4")
            .cover_concept(&league)
            .cover_concept(&country)
            .cover_feature(&ex("leagueId"))
            .cover_feature(&ex("leagueName"))
            .cover_feature(&ex("countryId"))
            .cover_relation(&league, &ex("ofCountry"), &country)
            .same_as("id", &ex("leagueId"))
            .same_as("name", &ex("leagueName"))
            .same_as("countryId", &ex("countryId")),
    )?;

    // w5: Countries.
    mdm.register_wrapper(football::w5_countries(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w5")
            .cover_concept(&country)
            .cover_feature(&ex("countryId"))
            .cover_feature(&ex("countryName"))
            .same_as("id", &ex("countryId"))
            .same_as("name", &ex("countryName")),
    )?;

    // w6: a second Teams wrapper exposing the league link.
    mdm.register_wrapper(football::w6_team_league(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w6")
            .cover_concept(&team)
            .cover_concept(&league)
            .cover_feature(&ex("teamId"))
            .cover_feature(&ex("leagueId"))
            .cover_relation(&team, &ex("playsIn"), &league)
            .same_as("id", &ex("teamId"))
            .same_as("leagueId", &ex("leagueId")),
    )?;

    // w7: player nationality under the v1 schema.
    mdm.register_wrapper(football::w7_player_country_v1(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w7")
            .cover_concept(&player)
            .cover_concept(&country)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("countryId"))
            .cover_relation(&player, &ex("hasNationality"), &country)
            .same_as("id", &ex("playerId"))
            .same_as("countryId", &ex("countryId")),
    )?;
    Ok(())
}

/// The governance-of-evolution step (§3): register the breaking Players v2
/// release as wrapper w3 with its LAV mapping (adds the nationality
/// feature).
pub fn register_players_v2(mdm: &mut Mdm, eco: &FootballEcosystem) -> Result<(), MdmError> {
    let player = ex("Player");
    let team = sports_team();
    // nationality joins the global graph (non-breaking addition there).
    mdm.define_feature(&player, &ex("nationality"))?;
    mdm.register_wrapper(football::w3_players_v2(eco))?;
    mdm.define_mapping(
        MappingBuilder::for_wrapper("w3")
            .cover_concept(&player)
            .cover_concept(&team)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .cover_feature(&ex("height"))
            .cover_feature(&ex("weight"))
            .cover_feature(&ex("foot"))
            .cover_feature(&ex("nationality"))
            .cover_feature(&ex("teamId"))
            .cover_relation(&player, &ex("hasTeam"), &team)
            .same_as("id", &ex("playerId"))
            .same_as("pName", &ex("playerName"))
            .same_as("height", &ex("height"))
            .same_as("weight", &ex("weight"))
            .same_as("foot", &ex("foot"))
            .same_as("nationality", &ex("nationality"))
            .same_as("teamId", &ex("teamId")),
    )?;
    Ok(())
}

/// The complete v1 system: global graph + v1 wrappers + mappings.
pub fn football_mdm(eco: &FootballEcosystem) -> Result<Mdm, MdmError> {
    let mut mdm = Mdm::new();
    define_global_graph(&mut mdm)?;
    register_v1(&mut mdm, eco)?;
    Ok(mdm)
}

/// The Figure 8 walk: "the name of the players and their teams".
pub fn figure8_walk() -> Walk {
    Walk::new()
        .feature(&sports_team(), &ex("teamName"))
        .feature(&ex("Player"), &ex("playerName"))
        .relation(&ex("Player"), &ex("hasTeam"), &sports_team())
}

/// The exemplary query of §1: "who are the players that play in a league of
/// their nationality?" — Player → Team → League → Country joined with
/// Player → Country.
pub fn nationality_league_walk() -> Walk {
    let player = ex("Player");
    let team = sports_team();
    let league = ex("League");
    let country = ex("Country");
    Walk::new()
        .feature(&player, &ex("playerName"))
        .feature(&league, &ex("leagueName"))
        .feature(&country, &ex("countryName"))
        .relation(&player, &ex("hasTeam"), &team)
        .relation(&team, &ex("playsIn"), &league)
        .relation(&league, &ex("ofCountry"), &country)
        .relation(&player, &ex("hasNationality"), &country)
        .feature(&team, &ex("teamName"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn football_system_builds_and_answers_figure8() {
        let eco = football::build_default();
        let mdm = football_mdm(&eco).unwrap();
        let answer = mdm.query(&figure8_walk()).unwrap();
        assert!(answer.render().contains("Lionel Messi"));
        // Output order matches Table 1: team first, then player.
        assert_eq!(
            answer.table.schema().join_names(", "),
            "ex:teamName, ex:playerName"
        );
    }

    #[test]
    fn nationality_league_query_answers() {
        let eco = football::build_default();
        let mdm = football_mdm(&eco).unwrap();
        let answer = mdm.query(&nationality_league_walk()).unwrap();
        // Messi (Spain via our generator: country 1=Spain, La Liga=Spain) —
        // he plays in a league of his nationality.
        let rendered = answer.render();
        assert!(
            rendered.contains("Lionel Messi"),
            "expected Messi in:\n{rendered}"
        );
        // Every returned row satisfies league.country == player.nationality
        // by construction of the join; spot-check columns exist.
        assert!(answer
            .table
            .schema()
            .join_names(", ")
            .contains("ex:leagueName"));
    }

    #[test]
    fn v2_registration_extends_results() {
        let eco = football::build_default();
        let mut mdm = football_mdm(&eco).unwrap();
        let before = mdm.query(&figure8_walk()).unwrap().table.len();
        register_players_v2(&mut mdm, &eco).unwrap();
        let after = mdm.query(&figure8_walk()).unwrap().table.len();
        assert!(after > before, "v2 must add rows: {before} -> {after}");
    }
}

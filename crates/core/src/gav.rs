//! A GAV (global-as-view) baseline rewriter.
//!
//! The paper motivates LAV by contrasting it with OBDA's GAV mappings,
//! "where elements of the ontology are characterized in terms of a query
//! over the source schemata … faulty upon source schema changes" (§1). This
//! module implements that baseline so the robustness gap can be *measured*
//! (experiment P3 in DESIGN.md):
//!
//! * [`GavMapping::derive`] freezes, at definition time, one
//!   `(wrapper, column)` query per feature and one witness per relation —
//!   the characterisation GAV prescribes;
//! * [`GavMapping::rewrite`] unfolds a walk through the frozen bindings —
//!   fast and single-branch, as GAV promises;
//! * but when sources release new schema versions, the frozen bindings keep
//!   pointing at the old wrapper: results silently lose the new version's
//!   rows, and features that only newer wrappers provide are unanswerable
//!   until a human re-derives the mapping ([`GavMapping::refresh`]).

use std::collections::BTreeMap;

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::expansion::expand;
use crate::inter::{ConjunctiveQuery, QualifiedColumn};
use crate::intra::coverages;
use crate::mapping::wrappers_covering_relation;
use crate::ontology::BdiOntology;
use crate::rewrite::plan_for_cq;
use crate::walk::Walk;
use mdm_relational::Plan;

/// The output of a GAV unfolding: the single conjunctive query, the
/// executable plan, and the output column names.
pub type GavRewrite = (ConjunctiveQuery, Plan, Vec<String>);

/// A frozen GAV mapping.
#[derive(Clone, Debug, Default)]
pub struct GavMapping {
    /// feature → (wrapper name, column).
    feature_queries: BTreeMap<Iri, (String, String)>,
    /// concept → (wrapper name, id column) anchor used for joins.
    concept_anchors: BTreeMap<Iri, (String, String)>,
    /// (concept, wrapper) → the wrapper's column for the concept's id.
    wrapper_ids: BTreeMap<(Iri, String), String>,
    /// relation (from, property, to) → (wrapper, from id column, to id column).
    edge_witnesses: BTreeMap<(Iri, Iri, Iri), (String, String, String)>,
}

impl GavMapping {
    /// Derives a GAV mapping from the ontology's *current* LAV metadata:
    /// for every feature the first covering wrapper, for every relation the
    /// first witness. This models the one-off design-time characterisation
    /// a GAV/OBDA deployment performs.
    pub fn derive(ontology: &BdiOntology) -> Result<Self, MdmError> {
        let mut mapping = GavMapping::default();
        for concept in ontology.concepts() {
            let features = ontology.features_of(&concept);
            if features.is_empty() {
                continue;
            }
            let Ok((identifier, covers)) = coverages(ontology, &concept, &features) else {
                continue; // concept without identifier — not queryable
            };
            if let Some(anchor) = covers.first() {
                mapping.concept_anchors.insert(
                    concept.clone(),
                    (anchor.wrapper_name.clone(), anchor.id_column.clone()),
                );
            }
            for cover in &covers {
                mapping.wrapper_ids.insert(
                    (concept.clone(), cover.wrapper_name.clone()),
                    cover.id_column.clone(),
                );
            }
            for feature in &features {
                // First wrapper (deterministic order) providing the feature.
                if let Some(cover) = covers
                    .iter()
                    .find(|c| c.feature_columns.contains_key(feature))
                {
                    mapping.feature_queries.insert(
                        feature.clone(),
                        (
                            cover.wrapper_name.clone(),
                            cover.feature_columns[feature].clone(),
                        ),
                    );
                }
            }
            let _ = identifier;
        }
        for (from, property, to) in ontology.relations() {
            let witnesses = wrappers_covering_relation(ontology, &from, &property, &to);
            let Some(witness) = witnesses.first() else {
                continue;
            };
            let from_id = ontology.identifier_of(&from);
            let to_id = ontology.identifier_of(&to);
            let (Some(from_id), Some(to_id)) = (from_id, to_id) else {
                continue;
            };
            let from_cols = ontology.attributes_mapping_to(witness, &from_id);
            let to_cols = ontology.attributes_mapping_to(witness, &to_id);
            if let (Some(f), Some(t)) = (from_cols.first(), to_cols.first()) {
                mapping.edge_witnesses.insert(
                    (from, property, to),
                    (
                        witness.local_name().to_string(),
                        BdiOntology::attribute_name(f).to_string(),
                        BdiOntology::attribute_name(t).to_string(),
                    ),
                );
            }
        }
        Ok(mapping)
    }

    /// Re-derives from current metadata — the manual maintenance step GAV
    /// forces on stewards after every release.
    pub fn refresh(&mut self, ontology: &BdiOntology) -> Result<(), MdmError> {
        *self = GavMapping::derive(ontology)?;
        Ok(())
    }

    /// Number of bound features (for diagnostics).
    pub fn bound_features(&self) -> usize {
        self.feature_queries.len()
    }

    /// The frozen query for a feature, if bound.
    pub fn feature_query(&self, feature: &Iri) -> Option<&(String, String)> {
        self.feature_queries.get(feature)
    }

    /// Unfolds a walk through the frozen bindings into a single conjunctive
    /// query (GAV rewriting is plain unfolding, §1).
    ///
    /// Errors when the walk touches a feature, concept or relation the
    /// frozen mapping does not bind — the "crash" mode of GAV under
    /// evolution.
    pub fn rewrite(&self, ontology: &BdiOntology, walk: &Walk) -> Result<GavRewrite, MdmError> {
        let expanded = expand(walk, ontology)?;
        let mut atoms: Vec<String> = Vec::new();
        let mut joins: Vec<(QualifiedColumn, QualifiedColumn)> = Vec::new();
        let push_atom = |name: &str, atoms: &mut Vec<String>| {
            if !atoms.iter().any(|a| a == name) {
                atoms.push(name.to_string());
            }
        };
        let push_join =
            |a: QualifiedColumn,
             b: QualifiedColumn,
             joins: &mut Vec<(QualifiedColumn, QualifiedColumn)>| {
                if a == b {
                    return;
                }
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                if !joins.contains(&(x.clone(), y.clone())) {
                    joins.push((x, y));
                }
            };

        // Per concept: anchor + per-feature wrappers joined on ids.
        for concept in expanded.walk.concepts() {
            let anchor = self.concept_anchors.get(concept).ok_or_else(|| {
                MdmError::Rewrite(format!(
                    "GAV mapping has no binding for concept '{concept}'"
                ))
            })?;
            push_atom(&anchor.0, &mut atoms);
            let identifier = ontology
                .identifier_of(concept)
                .ok_or_else(|| MdmError::Rewrite(format!("'{concept}' has no identifier")))?;
            for feature in expanded.walk.features_of(concept) {
                let (wrapper, _) = self.feature_queries.get(feature).ok_or_else(|| {
                    MdmError::Rewrite(format!(
                        "GAV mapping has no binding for feature '{feature}' \
                         (stale mapping under evolution?)"
                    ))
                })?;
                if wrapper != &anchor.0 {
                    // The feature comes from a different wrapper: join it to
                    // the anchor on the identifier columns frozen for this
                    // (concept, wrapper) pair at derivation time.
                    let feature_wrapper_id = self
                        .wrapper_ids
                        .get(&(concept.clone(), wrapper.clone()))
                        .ok_or_else(|| {
                            MdmError::Rewrite(format!(
                                "GAV mapping lacks the id column of '{wrapper}' \
                                 for concept '{concept}' (identifier '{identifier}')"
                            ))
                        })?
                        .clone();
                    push_atom(wrapper, &mut atoms);
                    push_join(
                        (anchor.0.clone(), anchor.1.clone()),
                        (wrapper.clone(), feature_wrapper_id),
                        &mut joins,
                    );
                }
            }
        }

        // Edges through the frozen witnesses.
        for edge in walk.relations() {
            let (witness, from_col, to_col) = self.edge_witnesses.get(edge).ok_or_else(|| {
                let (from, property, to) = edge;
                MdmError::Rewrite(format!(
                    "GAV mapping has no witness for '{from}' -{property}-> '{to}'"
                ))
            })?;
            push_atom(witness, &mut atoms);
            let (from, _, to) = edge;
            for (concept, column) in [(from, from_col), (to, to_col)] {
                let anchor = &self.concept_anchors[concept];
                push_join(
                    (witness.clone(), column.clone()),
                    anchor.clone(),
                    &mut joins,
                );
            }
        }

        // Projections over the original walk features.
        let mut projections = Vec::new();
        let mut output_columns = Vec::new();
        for concept in walk.concepts() {
            for feature in walk.features_of(concept) {
                let (wrapper, column) = self.feature_queries.get(feature).ok_or_else(|| {
                    MdmError::Rewrite(format!(
                        "GAV mapping has no binding for feature '{feature}'"
                    ))
                })?;
                projections.push((feature.clone(), (wrapper.clone(), column.clone())));
                output_columns.push(ontology.compact(feature));
            }
        }

        let cq = ConjunctiveQuery {
            atoms,
            joins,
            projections,
        };
        let plan = plan_for_cq(&cq, &output_columns)?.distinct();
        Ok((cq, plan, output_columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::register_wrapper;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk, strings};

    #[test]
    fn derive_binds_every_mapped_feature() {
        let o = figure7_ontology();
        let gav = GavMapping::derive(&o).unwrap();
        // 9 features in Figure 5's excerpt, all mapped by w1/w2.
        assert_eq!(gav.bound_features(), 9);
        assert_eq!(
            gav.feature_query(&ex("playerName")),
            Some(&("w1".to_string(), "pName".to_string()))
        );
    }

    #[test]
    fn gav_rewrites_figure8_to_single_branch() {
        let o = figure7_ontology();
        let gav = GavMapping::derive(&o).unwrap();
        let (cq, plan, outputs) = gav.rewrite(&o, &figure8_walk()).unwrap();
        assert_eq!(cq.atoms, vec!["w1", "w2"]);
        assert_eq!(plan.union_width(), 1);
        assert_eq!(outputs, vec!["ex:playerName", "ex:teamName"]);
    }

    #[test]
    fn stale_gav_misses_new_version() {
        // Derive GAV before the evolution, then evolve: the new feature is
        // unanswerable and the plan still scans only the old wrapper.
        let o_before = figure7_ontology();
        let gav = GavMapping::derive(&o_before).unwrap();
        let o_after = evolved_ontology();
        // The new feature is unknown to the frozen mapping.
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerId"))
            .feature(&ex("Player"), &ex("nationality"));
        let err = gav.rewrite(&o_after, &walk).unwrap_err();
        assert!(err.message().contains("no binding for feature"));
        // The Figure 8 walk still rewrites, but only over w1/w2 — no w3.
        let (cq, _, _) = gav.rewrite(&o_after, &figure8_walk()).unwrap();
        assert!(!cq.atoms.contains(&"w3".to_string()));
    }

    #[test]
    fn refreshed_gav_answers_again_but_still_single_version() {
        let o = evolved_ontology();
        let mut gav = GavMapping::derive(&figure7_ontology()).unwrap();
        gav.refresh(&o).unwrap();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerId"))
            .feature(&ex("Player"), &ex("nationality"));
        let (cq, _, _) = gav.rewrite(&o, &walk).unwrap();
        // Answerable now, but as a single branch (w1 ⋈ w3 or w3 alone),
        // never the LAV union of both versions.
        assert!(!cq.atoms.is_empty());
    }

    #[test]
    fn unbound_concept_is_an_error() {
        let mut o = figure7_ontology();
        let gav = GavMapping::derive(&o).unwrap();
        let stadium = ex("Stadium");
        o.add_concept(&stadium).unwrap();
        o.add_identifier(&stadium, &ex("stadiumId")).unwrap();
        register_wrapper(&mut o, "TeamsAPI", "w9", 1, &strings(&["sid"])).unwrap();
        let walk = Walk::new().feature(&stadium, &ex("stadiumId"));
        let err = gav.rewrite(&o, &walk).unwrap_err();
        assert!(err.message().contains("no binding for concept"));
    }
}

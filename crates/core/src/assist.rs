//! Steward assistance: semi-automatic mapping suggestions.
//!
//! The paper promises that "data stewards are provided with mechanisms to
//! **semi-automatically** integrate new sources and accommodate schema
//! evolution into a global schema" (§1) and that MDM "aids on the process of
//! linking such new schemata to the global graph". This module implements
//! that aid: given a freshly registered wrapper, it proposes `sameAs` links
//! from its attributes to global features, ranked by evidence:
//!
//! 1. **Reuse** — the attribute IRI is shared with an earlier *mapped*
//!    wrapper of the same source (the §2.2 attribute-reuse mechanism); the
//!    previous mapping carries over directly. Strongest evidence: this is
//!    exactly how a steward accommodates a new version whose fields partly
//!    survive.
//! 2. **Exact name match** — the attribute name equals a feature's local
//!    name under normalisation (case and separator folding: `team_id` ≈
//!    `teamId` ≈ `TeamID`).
//! 3. **Fuzzy name match** — high normalised-edit-distance similarity
//!    (catches `pName` ~ `playerName`, `fullName` ~ `playerName` misses are
//!    intentional).
//!
//! The result is a ranked suggestion list plus a drafted
//! [`MappingBuilder`]; the steward reviews, completes the contour
//! (relations), and applies. Gaps (unmapped identifiers) are reported
//! explicitly.

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::mapping::MappingBuilder;
use crate::ontology::BdiOntology;

/// How strongly a suggestion is supported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    Low,
    Medium,
    High,
}

/// One suggested `sameAs` link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suggestion {
    /// The wrapper attribute name.
    pub attribute: String,
    /// The proposed target feature.
    pub feature: Iri,
    pub confidence: Confidence,
    /// Human-readable evidence ("reused from w1", "name match", …).
    pub rationale: String,
}

/// The full assistance output for one wrapper.
#[derive(Clone, Debug)]
pub struct MappingDraft {
    pub wrapper: String,
    /// Best suggestion per attribute (attributes with no candidate omitted).
    pub accepted: Vec<Suggestion>,
    /// Lower-ranked alternatives the steward may prefer.
    pub alternatives: Vec<Suggestion>,
    /// Attributes with no candidate at all.
    pub unmatched: Vec<String>,
    /// Covered concepts whose identifier no accepted suggestion maps — the
    /// draft cannot be applied until the steward resolves these.
    pub identifier_gaps: Vec<Iri>,
}

impl MappingDraft {
    /// Materialises the draft as a [`MappingBuilder`] (concepts and features
    /// from accepted suggestions; relations from the global graph between
    /// covered concepts).
    pub fn to_builder(&self, ontology: &BdiOntology) -> MappingBuilder {
        let mut builder = MappingBuilder::for_wrapper(&self.wrapper);
        let mut covered: Vec<Iri> = Vec::new();
        for suggestion in &self.accepted {
            if let Some(owner) = ontology.concept_of_feature(&suggestion.feature) {
                if !covered.contains(&owner) {
                    covered.push(owner.clone());
                    builder = builder.cover_concept(&owner);
                }
            }
            builder = builder
                .cover_feature(&suggestion.feature)
                .same_as(&suggestion.attribute, &suggestion.feature);
        }
        // Relations between covered concepts join the contour so it stays
        // connected (the steward can prune).
        for (from, property, to) in ontology.relations() {
            if covered.contains(&from) && covered.contains(&to) {
                builder = builder.cover_relation(&from, &property, &to);
            }
        }
        builder
    }

    /// True when the draft is complete enough to apply (no gaps).
    pub fn is_applicable(&self) -> bool {
        self.identifier_gaps.is_empty() && !self.accepted.is_empty()
    }
}

/// Produces a mapping draft for a registered (but unmapped) wrapper.
pub fn suggest_mapping(
    ontology: &BdiOntology,
    wrapper_name: &str,
) -> Result<MappingDraft, MdmError> {
    let wrapper = BdiOntology::wrapper_iri(wrapper_name);
    if !ontology.wrappers().contains(&wrapper) {
        return Err(MdmError::Mapping(format!(
            "wrapper '{wrapper_name}' is not registered"
        )));
    }
    let attributes = ontology.attributes_of(&wrapper);

    // Candidate features of the whole global graph.
    let features: Vec<Iri> = ontology
        .concepts()
        .iter()
        .flat_map(|c| ontology.features_of(c))
        .collect();

    let mut accepted = Vec::new();
    let mut alternatives = Vec::new();
    let mut unmatched = Vec::new();
    for attribute in &attributes {
        let attribute_name = BdiOntology::attribute_name(attribute).to_string();
        let mut candidates: Vec<Suggestion> = Vec::new();

        // Evidence 1: the attribute node is already mapped (shared with a
        // previous wrapper of this source, §2.2 reuse).
        if let Some(feature) = ontology.feature_of_attribute(attribute) {
            candidates.push(Suggestion {
                attribute: attribute_name.clone(),
                feature,
                confidence: Confidence::High,
                rationale: "attribute reused from a previously mapped wrapper of this source"
                    .to_string(),
            });
        }

        // Evidence 2/3: name matching.
        let normalized = normalize(&attribute_name);
        for feature in &features {
            let feature_local = normalize(feature.local_name());
            if feature_local == normalized {
                candidates.push(Suggestion {
                    attribute: attribute_name.clone(),
                    feature: feature.clone(),
                    confidence: Confidence::High,
                    rationale: format!(
                        "name match '{attribute_name}' = '{}'",
                        feature.local_name()
                    ),
                });
            } else {
                let score = similarity(&normalized, &feature_local);
                if score >= 0.72 {
                    candidates.push(Suggestion {
                        attribute: attribute_name.clone(),
                        feature: feature.clone(),
                        confidence: if score >= 0.85 {
                            Confidence::Medium
                        } else {
                            Confidence::Low
                        },
                        rationale: format!(
                            "fuzzy match '{attribute_name}' ~ '{}' ({score:.2})",
                            feature.local_name()
                        ),
                    });
                }
            }
        }

        candidates.sort_by(|a, b| {
            b.confidence
                .cmp(&a.confidence)
                .then_with(|| a.feature.cmp(&b.feature))
        });
        candidates.dedup_by(|a, b| a.feature == b.feature);
        match candidates.split_first() {
            Some((best, rest)) => {
                accepted.push(best.clone());
                alternatives.extend(rest.iter().cloned());
            }
            None => unmatched.push(attribute_name),
        }
    }

    // Identifier gaps over the concepts the accepted suggestions cover.
    let covered: Vec<Iri> = accepted
        .iter()
        .filter_map(|s| ontology.concept_of_feature(&s.feature))
        .collect();
    let mut identifier_gaps = Vec::new();
    for concept in covered {
        match ontology.identifier_of(&concept) {
            Some(id) => {
                if !accepted.iter().any(|s| s.feature == id) && !identifier_gaps.contains(&concept)
                {
                    identifier_gaps.push(concept);
                }
            }
            None => identifier_gaps.push(concept),
        }
    }
    identifier_gaps.sort();
    identifier_gaps.dedup();

    Ok(MappingDraft {
        wrapper: wrapper_name.to_string(),
        accepted,
        alternatives,
        unmatched,
        identifier_gaps,
    })
}

/// Case/separator-folding normalisation: `team_id` → `teamid`.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// Normalised similarity in [0, 1]: 1 − levenshtein/max_len, with a bonus
/// for containment (`pname` in `playername`).
fn similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.contains(short) && short.len() >= 3 {
        return 0.8 + 0.2 * short.len() as f64 / long.len() as f64;
    }
    // Abbreviation pattern: the short name is an ordered subsequence of the
    // long one sharing its first character (`pname` ⊴ `playername`).
    if short.len() >= 3
        && short.chars().next() == long.chars().next()
        && is_subsequence(short, long)
    {
        return 0.75 + 0.1 * short.len() as f64 / long.len() as f64;
    }
    let distance = levenshtein(a, b) as f64;
    let max_len = a.len().max(b.len()) as f64;
    1.0 - distance / max_len
}

/// True when `needle`'s characters appear in `haystack` in order.
fn is_subsequence(needle: &str, haystack: &str) -> bool {
    let mut chars = haystack.chars();
    needle.chars().all(|n| chars.any(|h| h == n))
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::register_wrapper;
    use crate::testkit::{ex, figure7_ontology, strings};

    #[test]
    fn normalisation_and_similarity() {
        assert_eq!(normalize("team_id"), "teamid");
        assert_eq!(normalize("TeamID"), "teamid");
        assert_eq!(similarity("teamid", "teamid"), 1.0);
        assert!(similarity("pname", "playername") > 0.72);
        // "weight"/"height" are 1 edit apart (5/6 ≈ 0.83): a documented
        // near-miss the Medium confidence tier absorbs.
        assert!(similarity("weight", "height") > 0.72);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn evolution_suggestions_come_from_reuse() {
        // Register the v2 wrapper (shares id/pName/teamId with w1 via
        // attribute reuse) and ask for suggestions.
        let mut o = figure7_ontology();
        register_wrapper(
            &mut o,
            "PlayersAPI",
            "w3",
            2,
            &strings(&[
                "id",
                "pName",
                "height",
                "weight",
                "foot",
                "teamId",
                "nationality",
            ]),
        )
        .unwrap();
        let draft = suggest_mapping(&o, "w3").unwrap();
        // Every attribute shared with w1 resolves by reuse at High.
        for (attribute, feature) in [
            ("id", ex("playerId")),
            ("pName", ex("playerName")),
            ("height", ex("height")),
            ("teamId", ex("teamId")),
        ] {
            let s = draft
                .accepted
                .iter()
                .find(|s| s.attribute == attribute)
                .unwrap_or_else(|| panic!("no suggestion for {attribute}"));
            assert_eq!(s.feature, feature, "{attribute}");
            assert_eq!(s.confidence, Confidence::High, "{attribute}");
            assert!(
                s.rationale.contains("reused"),
                "{attribute}: {}",
                s.rationale
            );
        }
        // 'nationality' is new: no reuse, no feature named like it → gap.
        assert!(draft.unmatched.contains(&"nationality".to_string()));
        // Identifiers covered → applicable once the steward handles
        // unmatched attributes (they are optional).
        assert!(draft.identifier_gaps.is_empty());
    }

    #[test]
    fn fresh_source_suggestions_come_from_names() {
        let mut o = figure7_ontology();
        register_wrapper(
            &mut o,
            "TeamsAPI",
            "w2b",
            2,
            &strings(&["teamId", "teamName", "short_name"]),
        )
        .unwrap();
        let draft = suggest_mapping(&o, "w2b").unwrap();
        let by_attr = |name: &str| draft.accepted.iter().find(|s| s.attribute == name).cloned();
        assert_eq!(by_attr("teamId").unwrap().feature, ex("teamId"));
        assert_eq!(by_attr("teamName").unwrap().feature, ex("teamName"));
        // Separator folding: short_name matches shortName exactly.
        let short = by_attr("short_name").unwrap();
        assert_eq!(short.feature, ex("shortName"));
        assert_eq!(short.confidence, Confidence::High);
    }

    #[test]
    fn draft_builder_applies_when_complete() {
        let mut o = figure7_ontology();
        register_wrapper(
            &mut o,
            "TeamsAPI",
            "w2c",
            3,
            &strings(&["teamId", "teamName", "shortName"]),
        )
        .unwrap();
        let draft = suggest_mapping(&o, "w2c").unwrap();
        assert!(draft.is_applicable(), "gaps: {:?}", draft.identifier_gaps);
        let builder = draft.to_builder(&o);
        builder.apply(&mut o).unwrap();
        assert!(o
            .mappings()
            .named_graph(&BdiOntology::wrapper_iri("w2c"))
            .is_some());
    }

    #[test]
    fn identifier_gap_reported() {
        let mut o = figure7_ontology();
        // A wrapper exposing only a non-key feature of SportsTeam.
        register_wrapper(&mut o, "TeamsAPI", "wnames", 4, &strings(&["teamName"])).unwrap();
        let draft = suggest_mapping(&o, "wnames").unwrap();
        assert!(!draft.is_applicable());
        assert_eq!(
            draft.identifier_gaps,
            vec![mdm_rdf::vocab::schema::SPORTS_TEAM.iri()]
        );
    }

    #[test]
    fn unknown_wrapper_rejected() {
        let o = figure7_ontology();
        assert!(suggest_mapping(&o, "ghost").is_err());
    }
}

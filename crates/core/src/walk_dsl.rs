//! A textual notation for walks.
//!
//! The paper's analysts draw walks with the mouse; a CLI needs a textual
//! equivalent. The notation mirrors the figures:
//!
//! ```text
//! ex:Player { ex:playerName, ex:height }
//! sc:SportsTeam { ex:teamName }
//! ex:Player -ex:hasTeam-> sc:SportsTeam
//! ```
//!
//! One line per concept (with its requested features in braces, possibly
//! empty) or per relation edge (`from -property-> to`). Prefixed names
//! resolve through the ontology's prefix map; full IRIs in `<…>` work too.
//! `#` starts a comment.

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::ontology::BdiOntology;
use crate::walk::Walk;

/// Parses the walk notation against an ontology's prefixes.
///
/// The returned walk is *not* validated here — [`Walk::validate`] (or any
/// rewriting entry point) does that, so error messages about unknown
/// concepts/features come from one place.
pub fn parse_walk(text: &str, ontology: &BdiOntology) -> Result<Walk, MdmError> {
    let mut walk = Walk::new();
    for (line_number, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let fail = |message: String| MdmError::Walk(format!("line {}: {message}", line_number + 1));
        if let Some((lhs, rest)) = line.split_once('-') {
            if let Some((property, to)) = rest.split_once("->") {
                // Relation line: from -property-> to
                let from = resolve(lhs.trim(), ontology).map_err(&fail)?;
                let property = resolve(property.trim(), ontology).map_err(&fail)?;
                let to = resolve(to.trim(), ontology).map_err(&fail)?;
                walk = walk.relation(&from, &property, &to);
                continue;
            }
        }
        if let Some((concept_text, rest)) = line.split_once('{') {
            // Concept line: concept { f1, f2, … }
            let features_text = rest
                .strip_suffix('}')
                .ok_or_else(|| fail("missing closing '}'".to_string()))?;
            let concept = resolve(concept_text.trim(), ontology).map_err(&fail)?;
            walk = walk.concept(&concept);
            for feature_text in features_text.split(',') {
                let feature_text = feature_text.trim();
                if feature_text.is_empty() {
                    continue;
                }
                let feature = resolve(feature_text, ontology).map_err(&fail)?;
                walk = walk.feature(&concept, &feature);
            }
            continue;
        }
        // Bare concept line.
        let concept = resolve(line, ontology).map_err(&fail)?;
        walk = walk.concept(&concept);
    }
    Ok(walk)
}

/// Renders a walk back into the notation (a parse/print round-trip pair).
pub fn walk_to_text(walk: &Walk, ontology: &BdiOntology) -> String {
    let mut out = String::new();
    for concept in walk.concepts() {
        let features: Vec<String> = walk
            .features_of(concept)
            .iter()
            .map(|f| ontology.compact(f))
            .collect();
        out.push_str(&format!(
            "{} {{ {} }}\n",
            ontology.compact(concept),
            features.join(", ")
        ));
    }
    for (from, property, to) in walk.relations() {
        out.push_str(&format!(
            "{} -{}-> {}\n",
            ontology.compact(from),
            ontology.compact(property),
            ontology.compact(to)
        ));
    }
    out
}

/// Resolves a single prefixed name (`ex:Player`) or bracketed IRI
/// (`<http://…>`) against the ontology's prefix map — the element-name
/// syntax every textual MDM interface (CLI, HTTP API) shares.
pub fn resolve_name(token: &str, ontology: &BdiOntology) -> Result<Iri, MdmError> {
    resolve(token, ontology).map_err(MdmError::Walk)
}

fn resolve(token: &str, ontology: &BdiOntology) -> Result<Iri, String> {
    if token.is_empty() {
        return Err("empty name".to_string());
    }
    if let Some(stripped) = token.strip_prefix('<') {
        let iri = stripped
            .strip_suffix('>')
            .ok_or_else(|| format!("missing '>' in '{token}'"))?;
        if iri.is_empty() {
            return Err("empty IRI '<>'".to_string());
        }
        return Ok(Iri::new(iri.to_string()));
    }
    ontology
        .prefixes()
        .expand(token)
        .ok_or_else(|| format!("unknown prefix in '{token}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ex, figure7_ontology, figure8_walk};

    #[test]
    fn parses_the_figure8_walk() {
        let o = figure7_ontology();
        let text = r#"
            # the Figure 8 OMQ
            ex:Player { ex:playerName }
            sc:SportsTeam { ex:teamName }
            ex:Player -ex:hasTeam-> sc:SportsTeam
        "#;
        let walk = parse_walk(text, &o).unwrap();
        walk.validate(&o).unwrap();
        assert_eq!(walk.concepts().len(), 2);
        assert_eq!(walk.features_of(&ex("Player")), &[ex("playerName")]);
        assert_eq!(walk.relations().len(), 1);
    }

    #[test]
    fn round_trips_through_text() {
        let o = figure7_ontology();
        let original = figure8_walk();
        let text = walk_to_text(&original, &o);
        let reparsed = parse_walk(&text, &o).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn full_iris_accepted() {
        let o = figure7_ontology();
        let text = format!("<{}> {{ <{}> }}", ex("Player"), ex("playerName"));
        let walk = parse_walk(&text, &o).unwrap();
        assert_eq!(walk.concepts().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let o = figure7_ontology();
        let err = parse_walk("\n\nnope:Player { }", &o).unwrap_err();
        assert!(err.message().contains("line 3"));
        assert!(err.message().contains("unknown prefix"));
        let err = parse_walk("ex:Player { ex:playerName", &o).unwrap_err();
        assert!(err.message().contains("missing closing"));
    }

    #[test]
    fn empty_feature_braces_select_concept_only() {
        let o = figure7_ontology();
        let walk = parse_walk("ex:Player { }", &o).unwrap();
        assert_eq!(walk.concepts().len(), 1);
        assert!(walk.features_of(&ex("Player")).is_empty());
    }

    #[test]
    fn parsed_walk_rewrites_like_builder_walk() {
        let o = figure7_ontology();
        let text = r#"
            sc:SportsTeam { ex:teamName }
            ex:Player { ex:playerName }
            ex:Player -ex:hasTeam-> sc:SportsTeam
        "#;
        let walk = parse_walk(text, &o).unwrap();
        let rewriting =
            crate::rewrite::rewrite_walk(&o, &walk, &crate::rewrite::RewriteOptions::default())
                .unwrap();
        assert_eq!(rewriting.branch_count(), 1);
    }
}

//! The BDI ontology: global graph + source graph + mapping dataset.
//!
//! The RDF graphs are the single source of truth — every typed accessor
//! below is a query over them, exactly as the paper's Jena-backed
//! implementation works. Three structures:
//!
//! * the **global graph** (paper §2.1): `G:Concept`s related by user-defined
//!   properties, each grouping `G:Feature`s via `G:hasFeature`; features may
//!   be declared identifiers via `rdfs:subClassOf sc:identifier`, and
//!   concepts may form taxonomies via `rdfs:subClassOf`;
//! * the **source graph** (paper §2.2): `S:DataSource`s with `S:Wrapper`s
//!   (one per consumed schema version) exposing `S:Attribute`s;
//! * the **mapping dataset** (paper §2.3): one named graph per wrapper — the
//!   subgraph of the global graph the wrapper populates — plus `owl:sameAs`
//!   links from attributes to features kept in the source graph.

use mdm_rdf::dataset::Dataset;
use mdm_rdf::graph::Graph;
use mdm_rdf::namespace::PrefixMap;
use mdm_rdf::term::{Iri, Term};
use mdm_rdf::vocab::{bdi, owl, rdf, rdfs, schema};

use crate::error::MdmError;

/// Instance namespace under which MDM mints source/wrapper/attribute IRIs.
pub const INSTANCE_NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/instances/";

/// The BDI ontology.
#[derive(Clone, Debug, Default)]
pub struct BdiOntology {
    global: Graph,
    source: Graph,
    mappings: Dataset,
    prefixes: PrefixMap,
}

impl BdiOntology {
    /// An empty ontology with the default prefixes (G:, S:, sc:, ex:, …).
    pub fn new() -> Self {
        let mut prefixes = PrefixMap::with_defaults();
        prefixes.insert("in", INSTANCE_NS);
        BdiOntology {
            global: Graph::new(),
            source: Graph::new(),
            mappings: Dataset::new(),
            prefixes,
        }
    }

    /// The global graph (read-only).
    pub fn global_graph(&self) -> &Graph {
        &self.global
    }

    /// The source graph (read-only).
    pub fn source_graph(&self) -> &Graph {
        &self.source
    }

    /// The mapping dataset (read-only): one named graph per wrapper.
    pub fn mappings(&self) -> &Dataset {
        &self.mappings
    }

    /// Mutable access to the mapping dataset, for [`crate::mapping`].
    pub(crate) fn mappings_mut(&mut self) -> &mut Dataset {
        &mut self.mappings
    }

    /// Mutable access to the source graph, for [`crate::release`] and
    /// [`crate::mapping`].
    pub(crate) fn source_graph_mut(&mut self) -> &mut Graph {
        &mut self.source
    }

    /// Mutable access to the global graph, restore path only.
    pub(crate) fn global_graph_mut_internal(&mut self) -> &mut Graph {
        &mut self.global
    }

    /// The prefix map used for rendering.
    pub fn prefixes(&self) -> &PrefixMap {
        &self.prefixes
    }

    /// Binds an extra rendering prefix (e.g. a reused external vocabulary).
    pub fn bind_prefix(&mut self, prefix: &str, namespace: &str) {
        self.prefixes.insert(prefix, namespace);
    }

    // ------------------------------------------------------------------
    // Global graph construction (the data steward's §2.1 interactions)
    // ------------------------------------------------------------------

    /// Declares a concept. Idempotent.
    pub fn add_concept(&mut self, concept: &Iri) -> Result<(), MdmError> {
        if self.is_feature(concept) {
            return Err(MdmError::Ontology(format!(
                "'{concept}' is already a feature; it cannot also be a concept"
            )));
        }
        self.global
            .insert((concept.term(), rdf::TYPE.term(), bdi::CONCEPT.term()));
        Ok(())
    }

    /// Declares `feature` and attaches it to `concept`.
    ///
    /// Features belong to exactly one concept (paper §2.1: *"we restrict
    /// features to belong to only one concept"*), so attaching an existing
    /// feature to a second concept is an error.
    pub fn add_feature(&mut self, concept: &Iri, feature: &Iri) -> Result<(), MdmError> {
        if !self.is_concept(concept) {
            return Err(MdmError::Ontology(format!("unknown concept '{concept}'")));
        }
        if let Some(owner) = self.concept_of_feature(feature) {
            if owner != *concept {
                return Err(MdmError::Ontology(format!(
                    "feature '{feature}' already belongs to '{owner}'; features belong to exactly one concept"
                )));
            }
        }
        if self.is_concept(feature) {
            return Err(MdmError::Ontology(format!(
                "'{feature}' is already a concept; it cannot also be a feature"
            )));
        }
        self.global
            .insert((feature.term(), rdf::TYPE.term(), bdi::FEATURE.term()));
        self.global
            .insert((concept.term(), bdi::HAS_FEATURE.term(), feature.term()));
        Ok(())
    }

    /// Declares `feature` as an identifier: `feature rdfs:subClassOf
    /// sc:identifier`. Only identifier features may participate in joins
    /// (paper §2.3). A concept has at most one identifier.
    pub fn add_identifier(&mut self, concept: &Iri, feature: &Iri) -> Result<(), MdmError> {
        self.add_feature(concept, feature)?;
        if let Some(existing) = self.identifier_of(concept) {
            if existing != *feature {
                return Err(MdmError::Ontology(format!(
                    "concept '{concept}' already has identifier '{existing}'"
                )));
            }
        }
        self.global.insert((
            feature.term(),
            rdfs::SUB_CLASS_OF.term(),
            schema::IDENTIFIER.term(),
        ));
        Ok(())
    }

    /// Relates two concepts with a user-defined property.
    pub fn add_relation(&mut self, from: &Iri, property: &Iri, to: &Iri) -> Result<(), MdmError> {
        for c in [from, to] {
            if !self.is_concept(c) {
                return Err(MdmError::Ontology(format!("unknown concept '{c}'")));
            }
        }
        self.global
            .insert((from.term(), property.term(), to.term()));
        Ok(())
    }

    /// Declares `sub rdfs:subClassOf sup` between concepts (taxonomies,
    /// §2.1).
    pub fn add_subconcept(&mut self, sub: &Iri, sup: &Iri) -> Result<(), MdmError> {
        for c in [sub, sup] {
            if !self.is_concept(c) {
                return Err(MdmError::Ontology(format!("unknown concept '{c}'")));
            }
        }
        self.global
            .insert((sub.term(), rdfs::SUB_CLASS_OF.term(), sup.term()));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Global graph accessors
    // ------------------------------------------------------------------

    /// True when `iri` is a declared concept.
    pub fn is_concept(&self, iri: &Iri) -> bool {
        self.global
            .contains(&iri.term(), &rdf::TYPE.term(), &bdi::CONCEPT.term())
    }

    /// True when `iri` is a declared feature.
    pub fn is_feature(&self, iri: &Iri) -> bool {
        self.global
            .contains(&iri.term(), &rdf::TYPE.term(), &bdi::FEATURE.term())
    }

    /// All concepts, in IRI order.
    pub fn concepts(&self) -> Vec<Iri> {
        self.global
            .subjects(&rdf::TYPE.term(), &bdi::CONCEPT.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    /// The features of `concept`, in IRI order.
    pub fn features_of(&self, concept: &Iri) -> Vec<Iri> {
        self.global
            .objects(&concept.term(), &bdi::HAS_FEATURE.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    /// The concept owning `feature`, when declared.
    pub fn concept_of_feature(&self, feature: &Iri) -> Option<Iri> {
        self.global
            .subjects(&bdi::HAS_FEATURE.term(), &feature.term())
            .into_iter()
            .find_map(|t| t.as_iri().cloned())
    }

    /// The identifier feature of `concept`: its feature that is
    /// `rdfs:subClassOf sc:identifier` (directly or through a feature
    /// subclass chain). When the concept has no identifier of its own, it
    /// *inherits* the nearest superconcept's identifier — a subconcept's
    /// instances are instances of the super, so they share its key (§2.1
    /// taxonomies).
    pub fn identifier_of(&self, concept: &Iri) -> Option<Iri> {
        for candidate in self.superconcepts_of(concept) {
            if let Some(id) = self
                .features_of(&candidate)
                .into_iter()
                .find(|f| self.is_identifier(f))
            {
                return Some(id);
            }
        }
        None
    }

    /// `concept` and its transitive subconcepts (via `rdfs:subClassOf`
    /// between concepts), in BFS-from-self order.
    pub fn subconcepts_of(&self, concept: &Iri) -> Vec<Iri> {
        self.concept_closure(concept, /* down */ true)
    }

    /// `concept` and its transitive superconcepts, nearest first.
    pub fn superconcepts_of(&self, concept: &Iri) -> Vec<Iri> {
        self.concept_closure(concept, /* down */ false)
    }

    fn concept_closure(&self, concept: &Iri, down: bool) -> Vec<Iri> {
        let mut out = Vec::new();
        let mut frontier = vec![concept.clone()];
        while let Some(current) = frontier.pop() {
            if out.contains(&current) {
                continue;
            }
            let neighbours: Vec<Iri> = if down {
                self.global
                    .subjects(&rdfs::SUB_CLASS_OF.term(), &current.term())
            } else {
                self.global
                    .objects(&current.term(), &rdfs::SUB_CLASS_OF.term())
            }
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .filter(|iri| self.is_concept(iri))
            .collect();
            out.push(current);
            frontier.extend(neighbours);
        }
        out
    }

    /// The features available on `concept` including those inherited from
    /// superconcepts (a subconcept's instances carry the super's features).
    pub fn inherited_features_of(&self, concept: &Iri) -> Vec<Iri> {
        let mut out = Vec::new();
        for ancestor in self.superconcepts_of(concept) {
            for feature in self.features_of(&ancestor) {
                if !out.contains(&feature) {
                    out.push(feature);
                }
            }
        }
        out
    }

    /// True when `feature` inherits from `sc:identifier` (transitively).
    pub fn is_identifier(&self, feature: &Iri) -> bool {
        let mut frontier = vec![feature.clone()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(current) = frontier.pop() {
            if !seen.insert(current.clone()) {
                continue;
            }
            for object in self
                .global
                .objects(&current.term(), &rdfs::SUB_CLASS_OF.term())
            {
                if let Some(iri) = object.as_iri() {
                    if schema::IDENTIFIER == *iri {
                        return true;
                    }
                    frontier.push(iri.clone());
                }
            }
        }
        false
    }

    /// All concept-to-concept relations `(from, property, to)`, excluding
    /// metamodel edges (`rdf:type`, `G:hasFeature`, `rdfs:subClassOf`).
    pub fn relations(&self) -> Vec<(Iri, Iri, Iri)> {
        self.global
            .iter()
            .filter_map(|(s, p, o)| {
                let (Term::Iri(s), Term::Iri(p), Term::Iri(o)) = (s, p, o) else {
                    return None;
                };
                if rdf::TYPE == p || bdi::HAS_FEATURE == p || rdfs::SUB_CLASS_OF == p {
                    return None;
                }
                if self.is_concept(&s) && self.is_concept(&o) {
                    Some((s, p, o))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Relations between two specific concepts.
    pub fn relations_between(&self, from: &Iri, to: &Iri) -> Vec<Iri> {
        self.relations()
            .into_iter()
            .filter(|(s, _, o)| s == from && o == to)
            .map(|(_, p, _)| p)
            .collect()
    }

    // ------------------------------------------------------------------
    // Source graph accessors (construction lives in `release`)
    // ------------------------------------------------------------------

    /// Mints the IRI of a data source.
    pub fn source_iri(name: &str) -> Iri {
        Iri::new(format!("{INSTANCE_NS}dataSource/{name}"))
    }

    /// Mints the IRI of a wrapper.
    pub fn wrapper_iri(name: &str) -> Iri {
        Iri::new(format!("{INSTANCE_NS}wrapper/{name}"))
    }

    /// Mints the IRI of an attribute of a data source.
    ///
    /// Attributes are scoped per source so that same-named attributes can be
    /// *reused across wrappers of one source* but never across sources
    /// ("this is not possible among different data sources as the semantics
    /// of attributes might differ", §2.2).
    pub fn attribute_iri(source_name: &str, attribute: &str) -> Iri {
        Iri::new(format!("{INSTANCE_NS}attribute/{source_name}/{attribute}"))
    }

    /// All registered data sources.
    pub fn data_sources(&self) -> Vec<Iri> {
        self.source
            .subjects(&rdf::TYPE.term(), &bdi::DATA_SOURCE.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    /// All wrappers of a data source.
    pub fn wrappers_of(&self, source: &Iri) -> Vec<Iri> {
        self.source
            .objects(&source.term(), &bdi::HAS_WRAPPER.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    /// All registered wrappers (across sources).
    pub fn wrappers(&self) -> Vec<Iri> {
        self.source
            .subjects(&rdf::TYPE.term(), &bdi::WRAPPER.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }

    /// The attributes of a wrapper, in signature order.
    ///
    /// Signature order is preserved via `rdfs:label` holding the positional
    /// index — RDF triples are unordered, the label carries the ordering.
    pub fn attributes_of(&self, wrapper: &Iri) -> Vec<Iri> {
        let mut attrs: Vec<(usize, Iri)> = self
            .source
            .objects(&wrapper.term(), &bdi::HAS_ATTRIBUTE.term())
            .into_iter()
            .filter_map(|t| t.as_iri().cloned())
            .map(|attr| {
                let position = self
                    .attribute_position(wrapper, &attr)
                    .unwrap_or(usize::MAX);
                (position, attr)
            })
            .collect();
        attrs.sort();
        attrs.into_iter().map(|(_, a)| a).collect()
    }

    fn attribute_position(&self, wrapper: &Iri, attribute: &Iri) -> Option<usize> {
        // Position triples: (wrapper, S:hasAttribute#<n>, attribute) is not
        // expressible; instead we store (attribute, rdfs:label, "<wrapper>#<n>")
        // one label per wrapper using the attribute.
        let prefix = format!("{}#", wrapper.as_str());
        self.source
            .objects(&attribute.term(), &rdfs::LABEL.term())
            .into_iter()
            .filter_map(|t| t.as_literal().cloned())
            .find_map(|label| {
                label
                    .lexical()
                    .strip_prefix(&prefix)
                    .and_then(|idx| idx.parse::<usize>().ok())
            })
    }

    /// Records signature position of an attribute within a wrapper.
    pub(crate) fn set_attribute_position(
        &mut self,
        wrapper: &Iri,
        attribute: &Iri,
        position: usize,
    ) {
        self.source.insert((
            attribute.term(),
            rdfs::LABEL.term(),
            Term::Literal(mdm_rdf::term::Literal::string(format!(
                "{}#{position}",
                wrapper.as_str()
            ))),
        ));
    }

    /// The local attribute name (last IRI segment).
    pub fn attribute_name(attribute: &Iri) -> &str {
        attribute.local_name()
    }

    /// The feature an attribute maps to via `owl:sameAs`, if any.
    pub fn feature_of_attribute(&self, attribute: &Iri) -> Option<Iri> {
        self.source
            .objects(&attribute.term(), &owl::SAME_AS.term())
            .into_iter()
            .find_map(|t| t.as_iri().cloned())
    }

    /// Attributes of `wrapper` mapping to `feature`.
    pub fn attributes_mapping_to(&self, wrapper: &Iri, feature: &Iri) -> Vec<Iri> {
        self.attributes_of(wrapper)
            .into_iter()
            .filter(|attr| {
                self.source
                    .contains(&attr.term(), &owl::SAME_AS.term(), &feature.term())
            })
            .collect()
    }

    /// One-pass view of a wrapper's `sameAs` links: feature → the (first,
    /// in signature order) attribute name mapping it. The rewriting phases
    /// probe many features per wrapper; this avoids re-walking the attribute
    /// list per feature.
    pub fn wrapper_feature_columns(
        &self,
        wrapper: &Iri,
    ) -> std::collections::BTreeMap<Iri, String> {
        let mut out = std::collections::BTreeMap::new();
        for attribute in self.attributes_of(wrapper) {
            for object in self.source.objects(&attribute.term(), &owl::SAME_AS.term()) {
                if let Some(feature) = object.as_iri() {
                    out.entry(feature.clone())
                        .or_insert_with(|| BdiOntology::attribute_name(&attribute).to_string());
                }
            }
        }
        out
    }

    /// The version a wrapper consumes (`S:version`).
    pub fn wrapper_version(&self, wrapper: &Iri) -> Option<i64> {
        self.source
            .object(&wrapper.term(), &bdi::VERSION.term())
            .and_then(|t| t.as_literal().and_then(|l| l.as_i64()))
    }

    /// Compacts an IRI through the ontology's prefixes, for rendering.
    pub fn compact(&self, iri: &Iri) -> String {
        self.prefixes
            .compact(iri)
            .unwrap_or_else(|| format!("<{}>", iri.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_rdf::vocab;

    fn ex(local: &str) -> Iri {
        Iri::new(format!("{}{local}", vocab::EXAMPLE_NS))
    }

    /// Builds the paper's Figure 5 global graph excerpt: Player and
    /// sc:SportsTeam with their features and the hasTeam relation.
    pub(crate) fn figure5_ontology() -> BdiOntology {
        let mut o = BdiOntology::new();
        let player = ex("Player");
        let team = vocab::schema::SPORTS_TEAM.iri();
        o.add_concept(&player).unwrap();
        o.add_concept(&team).unwrap();
        o.add_identifier(&player, &ex("playerId")).unwrap();
        o.add_feature(&player, &ex("playerName")).unwrap();
        o.add_feature(&player, &ex("height")).unwrap();
        o.add_feature(&player, &ex("weight")).unwrap();
        o.add_feature(&player, &ex("score")).unwrap();
        o.add_feature(&player, &ex("foot")).unwrap();
        o.add_identifier(&team, &ex("teamId")).unwrap();
        o.add_feature(&team, &ex("teamName")).unwrap();
        o.add_feature(&team, &ex("shortName")).unwrap();
        o.add_relation(&player, &ex("hasTeam"), &team).unwrap();
        o
    }

    #[test]
    fn concepts_and_features() {
        let o = figure5_ontology();
        assert_eq!(o.concepts().len(), 2);
        assert!(o.is_concept(&ex("Player")));
        assert_eq!(o.features_of(&ex("Player")).len(), 6);
        assert_eq!(o.concept_of_feature(&ex("playerName")), Some(ex("Player")));
        assert_eq!(o.concept_of_feature(&ex("nothing")), None);
    }

    #[test]
    fn identifiers() {
        let o = figure5_ontology();
        assert_eq!(o.identifier_of(&ex("Player")), Some(ex("playerId")));
        assert!(o.is_identifier(&ex("teamId")));
        assert!(!o.is_identifier(&ex("playerName")));
    }

    #[test]
    fn feature_single_ownership_enforced() {
        let mut o = figure5_ontology();
        let err = o
            .add_feature(&vocab::schema::SPORTS_TEAM.iri(), &ex("playerName"))
            .unwrap_err();
        assert_eq!(err.category(), "ontology");
        assert!(err.message().contains("exactly one concept"));
        // Re-attaching to the same concept is fine (idempotent).
        o.add_feature(&ex("Player"), &ex("playerName")).unwrap();
    }

    #[test]
    fn concept_feature_disjointness() {
        let mut o = figure5_ontology();
        assert!(o.add_concept(&ex("playerName")).is_err());
        let err = o.add_feature(&ex("Player"), &ex("Player")).unwrap_err();
        assert!(err.message().contains("already a concept"));
    }

    #[test]
    fn second_identifier_rejected() {
        let mut o = figure5_ontology();
        let err = o
            .add_identifier(&ex("Player"), &ex("playerName"))
            .unwrap_err();
        assert!(err.message().contains("already has identifier"));
    }

    #[test]
    fn relations_exclude_metamodel_edges() {
        let o = figure5_ontology();
        let rels = o.relations();
        assert_eq!(rels.len(), 1);
        let (from, p, to) = &rels[0];
        assert_eq!(from, &ex("Player"));
        assert_eq!(p, &ex("hasTeam"));
        assert_eq!(to, &vocab::schema::SPORTS_TEAM.iri());
        assert_eq!(
            o.relations_between(&ex("Player"), &vocab::schema::SPORTS_TEAM.iri()),
            vec![ex("hasTeam")]
        );
    }

    #[test]
    fn relation_requires_known_concepts() {
        let mut o = figure5_ontology();
        assert!(o
            .add_relation(&ex("Player"), &ex("p"), &ex("Unknown"))
            .is_err());
    }

    #[test]
    fn taxonomy_between_concepts() {
        let mut o = figure5_ontology();
        let goalkeeper = ex("Goalkeeper");
        o.add_concept(&goalkeeper).unwrap();
        o.add_subconcept(&goalkeeper, &ex("Player")).unwrap();
        assert!(o.global_graph().contains(
            &goalkeeper.term(),
            &rdfs::SUB_CLASS_OF.term(),
            &ex("Player").term()
        ));
    }

    #[test]
    fn identifier_inheritance_through_subclass() {
        let mut o = figure5_ontology();
        // A feature subclassing another identifier feature is an identifier.
        let special = ex("specialId");
        o.add_feature(&ex("Player"), &special).unwrap();
        o.global.insert((
            special.term(),
            rdfs::SUB_CLASS_OF.term(),
            ex("teamId").term(),
        ));
        assert!(o.is_identifier(&special));
    }

    #[test]
    fn minted_iris_are_scoped() {
        let a1 = BdiOntology::attribute_iri("PlayersAPI", "id");
        let a2 = BdiOntology::attribute_iri("TeamsAPI", "id");
        assert_ne!(a1, a2);
        assert_eq!(BdiOntology::attribute_name(&a1), "id");
    }

    #[test]
    fn compact_uses_prefixes() {
        let o = figure5_ontology();
        assert_eq!(o.compact(&ex("Player")), "ex:Player");
        assert_eq!(
            o.compact(&vocab::schema::SPORTS_TEAM.iri()),
            "sc:SportsTeam"
        );
    }

    #[test]
    fn unknown_concept_errors() {
        let mut o = BdiOntology::new();
        assert!(o.add_feature(&ex("Nope"), &ex("f")).is_err());
        assert!(o.add_subconcept(&ex("A"), &ex("B")).is_err());
    }
}

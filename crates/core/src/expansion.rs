//! Phase (a) of query rewriting: **query expansion** (paper §2.4).
//!
//! "The walk is automatically expanded to include concept identifiers that
//! have not been explicitly stated." Joins — both between wrappers covering
//! one concept and between concepts along relations — are only permitted on
//! identifier features (§2.3), so the rewriting needs every concept's
//! identifier in scope.

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::ontology::BdiOntology;
use crate::walk::Walk;

/// The expanded walk plus what was added (for explanations/UI).
#[derive(Clone, Debug)]
pub struct ExpandedWalk {
    pub walk: Walk,
    /// `(concept, identifier)` pairs the expansion injected.
    pub added_identifiers: Vec<(Iri, Iri)>,
}

/// Expands the walk with every selected concept's identifier feature.
///
/// Errors when a selected concept has no identifier: such a concept cannot
/// participate in unambiguous LAV resolution (nothing to join on).
pub fn expand(walk: &Walk, ontology: &BdiOntology) -> Result<ExpandedWalk, MdmError> {
    walk.validate(ontology)?;
    let mut expanded = walk.clone();
    let mut added = Vec::new();
    for concept in walk.concepts().to_vec() {
        let id = ontology.identifier_of(&concept).ok_or_else(|| {
            MdmError::Rewrite(format!(
                "concept '{concept}' has no identifier feature (rdfs:subClassOf sc:identifier); \
                 cannot expand the walk"
            ))
        })?;
        if !walk.features_of(&concept).contains(&id) {
            expanded.add_feature_internal(&concept, id.clone());
            added.push((concept.clone(), id));
        }
    }
    Ok(ExpandedWalk {
        walk: expanded,
        added_identifiers: added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{ex, figure5_ontology, figure8_walk};
    use mdm_rdf::vocab;

    #[test]
    fn figure8_walk_gains_both_identifiers() {
        let o = figure5_ontology();
        let expanded = expand(&figure8_walk(), &o).unwrap();
        assert_eq!(expanded.added_identifiers.len(), 2);
        let player_features = expanded.walk.features_of(&ex("Player"));
        assert!(player_features.contains(&ex("playerId")));
        assert!(player_features.contains(&ex("playerName")));
        let team_features = expanded.walk.features_of(&vocab::schema::SPORTS_TEAM.iri());
        assert!(team_features.contains(&ex("teamId")));
    }

    #[test]
    fn explicit_identifier_not_duplicated() {
        let o = figure5_ontology();
        let walk = figure8_walk().feature(&ex("Player"), &ex("playerId"));
        let expanded = expand(&walk, &o).unwrap();
        // Only the team id was added.
        assert_eq!(expanded.added_identifiers.len(), 1);
        assert_eq!(
            expanded
                .walk
                .features_of(&ex("Player"))
                .iter()
                .filter(|f| **f == ex("playerId"))
                .count(),
            1
        );
    }

    #[test]
    fn concept_without_identifier_is_an_error() {
        let mut o = figure5_ontology();
        let stadium = ex("Stadium");
        o.add_concept(&stadium).unwrap();
        o.add_feature(&stadium, &ex("stadiumName")).unwrap();
        let walk = Walk::new().feature(&stadium, &ex("stadiumName"));
        let err = expand(&walk, &o).unwrap_err();
        assert_eq!(err.category(), "rewrite");
        assert!(err.message().contains("no identifier"));
    }

    #[test]
    fn invalid_walks_are_rejected_before_expansion() {
        let o = figure5_ontology();
        assert!(expand(&Walk::new(), &o).is_err());
    }

    #[test]
    fn original_walk_is_untouched() {
        let o = figure5_ontology();
        let walk = figure8_walk();
        let _ = expand(&walk, &o).unwrap();
        assert_eq!(walk.features_of(&ex("Player")).len(), 1);
    }
}

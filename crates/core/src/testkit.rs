//! Shared test fixtures: the paper's motivational use case at each stage of
//! construction. Only compiled for tests.

use mdm_rdf::term::Iri;
use mdm_rdf::vocab;

use crate::mapping::MappingBuilder;
use crate::ontology::BdiOntology;
use crate::release::{register_source, register_wrapper};

/// `ex:<local>` IRIs.
pub(crate) fn ex(local: &str) -> Iri {
    Iri::new(format!("{}{local}", vocab::EXAMPLE_NS))
}

pub(crate) fn strings(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The Figure 5 global graph: Player and sc:SportsTeam with their features,
/// identifiers, and the hasTeam relation.
pub(crate) fn figure5_ontology() -> BdiOntology {
    let mut o = BdiOntology::new();
    let player = ex("Player");
    let team = vocab::schema::SPORTS_TEAM.iri();
    o.add_concept(&player).unwrap();
    o.add_concept(&team).unwrap();
    o.add_identifier(&player, &ex("playerId")).unwrap();
    o.add_feature(&player, &ex("playerName")).unwrap();
    o.add_feature(&player, &ex("height")).unwrap();
    o.add_feature(&player, &ex("weight")).unwrap();
    o.add_feature(&player, &ex("score")).unwrap();
    o.add_feature(&player, &ex("foot")).unwrap();
    o.add_identifier(&team, &ex("teamId")).unwrap();
    o.add_feature(&team, &ex("teamName")).unwrap();
    o.add_feature(&team, &ex("shortName")).unwrap();
    o.add_relation(&player, &ex("hasTeam"), &team).unwrap();
    o
}

/// Figure 5 + the Figure 6 registrations (PlayersAPI/w1, TeamsAPI/w2) + the
/// Figure 7 LAV mappings — the fully-configured use case, ready for OMQs.
pub(crate) fn figure7_ontology() -> BdiOntology {
    let mut o = figure5_ontology();
    let team = vocab::schema::SPORTS_TEAM.iri();
    register_source(&mut o, "PlayersAPI").unwrap();
    register_source(&mut o, "TeamsAPI").unwrap();
    register_wrapper(
        &mut o,
        "PlayersAPI",
        "w1",
        1,
        &strings(&["id", "pName", "height", "weight", "score", "foot", "teamId"]),
    )
    .unwrap();
    register_wrapper(
        &mut o,
        "TeamsAPI",
        "w2",
        1,
        &strings(&["id", "name", "shortName"]),
    )
    .unwrap();
    MappingBuilder::for_wrapper("w1")
        .cover_concept(&ex("Player"))
        .cover_concept(&team)
        .cover_feature(&ex("playerId"))
        .cover_feature(&ex("playerName"))
        .cover_feature(&ex("height"))
        .cover_feature(&ex("weight"))
        .cover_feature(&ex("score"))
        .cover_feature(&ex("foot"))
        .cover_feature(&ex("teamId"))
        .cover_relation(&ex("Player"), &ex("hasTeam"), &team)
        .same_as("id", &ex("playerId"))
        .same_as("pName", &ex("playerName"))
        .same_as("height", &ex("height"))
        .same_as("weight", &ex("weight"))
        .same_as("score", &ex("score"))
        .same_as("foot", &ex("foot"))
        .same_as("teamId", &ex("teamId"))
        .apply(&mut o)
        .unwrap();
    MappingBuilder::for_wrapper("w2")
        .cover_concept(&team)
        .cover_feature(&ex("teamId"))
        .cover_feature(&ex("teamName"))
        .cover_feature(&ex("shortName"))
        .same_as("id", &ex("teamId"))
        .same_as("name", &ex("teamName"))
        .same_as("shortName", &ex("shortName"))
        .apply(&mut o)
        .unwrap();
    o
}

/// The Figure 8 walk: team names and player names.
pub(crate) fn figure8_walk() -> crate::walk::Walk {
    let team = vocab::schema::SPORTS_TEAM.iri();
    crate::walk::Walk::new()
        .feature(&ex("Player"), &ex("playerName"))
        .feature(&team, &ex("teamName"))
        .relation(&ex("Player"), &ex("hasTeam"), &team)
}

/// figure7 + the governance-of-evolution release: PlayersAPI v2 wrapper w3
/// with its own LAV mapping covering the same contour as w1 (minus score,
/// which v2 dropped) plus nationality.
pub(crate) fn evolved_ontology() -> BdiOntology {
    let mut o = figure7_ontology();
    let team = vocab::schema::SPORTS_TEAM.iri();
    // nationality is a new feature of Player surfaced by v2.
    o.add_feature(&ex("Player"), &ex("nationality")).unwrap();
    register_wrapper(
        &mut o,
        "PlayersAPI",
        "w3",
        2,
        &strings(&[
            "id",
            "pName",
            "height",
            "weight",
            "foot",
            "teamId",
            "nationality",
        ]),
    )
    .unwrap();
    MappingBuilder::for_wrapper("w3")
        .cover_concept(&ex("Player"))
        .cover_concept(&team)
        .cover_feature(&ex("playerId"))
        .cover_feature(&ex("playerName"))
        .cover_feature(&ex("height"))
        .cover_feature(&ex("weight"))
        .cover_feature(&ex("foot"))
        .cover_feature(&ex("nationality"))
        .cover_feature(&ex("teamId"))
        .cover_relation(&ex("Player"), &ex("hasTeam"), &team)
        .same_as("id", &ex("playerId"))
        .same_as("pName", &ex("playerName"))
        .same_as("height", &ex("height"))
        .same_as("weight", &ex("weight"))
        .same_as("foot", &ex("foot"))
        .same_as("nationality", &ex("nationality"))
        .same_as("teamId", &ex("teamId"))
        .apply(&mut o)
        .unwrap();
    o
}

//! Phase (c) of query rewriting: **inter-concept generation** (paper §2.4).
//!
//! "All partial walks are joined to obtain a union of conjunctive queries."
//! Every relation edge of the walk must be *witnessed* by a wrapper whose
//! LAV named graph covers the edge; that wrapper maps both endpoint
//! identifiers (guaranteed by mapping validation), so it supplies the join
//! columns linking the two concepts' partial walks.
//!
//! The cartesian combination of (per-concept alternative) × (per-edge
//! witness) choices — deduplicated — is the UCQ: one
//! [`ConjunctiveQuery`] per choice.

use std::collections::{BTreeMap, BTreeSet};

use mdm_rdf::term::Iri;

use crate::error::MdmError;
use crate::intra::PartialWalk;
use crate::mapping::wrappers_covering_relation_taxonomic;
use crate::ontology::BdiOntology;
use crate::walk::Walk;

/// Upper bound on union branches; beyond this the ecosystem is mapped too
/// ambiguously for an enumerated UCQ to be useful.
pub const MAX_UCQ_BRANCHES: usize = 1024;

/// A qualified column: `(wrapper name, attribute name)`.
pub type QualifiedColumn = (String, String);

/// One conjunctive query over wrappers.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConjunctiveQuery {
    /// Wrapper relation names, in join order (first = leftmost scan).
    pub atoms: Vec<String>,
    /// Equi-join conditions between qualified columns.
    pub joins: Vec<(QualifiedColumn, QualifiedColumn)>,
    /// Output columns: `(feature, providing column)` in walk order.
    pub projections: Vec<(Iri, QualifiedColumn)>,
}

/// Canonical form used for deduplicating structurally identical branches.
type CanonicalKey = (
    BTreeSet<String>,
    BTreeSet<(QualifiedColumn, QualifiedColumn)>,
    Vec<(Iri, QualifiedColumn)>,
);

impl ConjunctiveQuery {
    /// A canonical key for deduplication: atom set + normalised join set +
    /// projections.
    fn canonical_key(&self) -> CanonicalKey {
        let atoms: BTreeSet<String> = self.atoms.iter().cloned().collect();
        let joins: BTreeSet<_> = self
            .joins
            .iter()
            .map(|(a, b)| {
                if a <= b {
                    (a.clone(), b.clone())
                } else {
                    (b.clone(), a.clone())
                }
            })
            .collect();
        (atoms, joins, self.projections.clone())
    }
}

/// Combines per-concept partial walks into the UCQ.
///
/// `alternatives` maps each walk concept to its phase-(b) alternatives;
/// `walk` supplies the requested (pre-expansion) features and the edges.
pub fn generate_ucq(
    ontology: &BdiOntology,
    walk: &Walk,
    alternatives: &BTreeMap<Iri, Vec<PartialWalk>>,
    max_branches: usize,
) -> Result<Vec<ConjunctiveQuery>, MdmError> {
    // Resolve each edge's witnesses up front (taxonomy-aware: a wrapper
    // covering the edge between subconcepts witnesses it, provided it maps
    // both walk-level identifiers so the join is expressible).
    let mut edge_witnesses: Vec<(usize, Vec<Iri>)> = Vec::new();
    for (index, (from, property, to)) in walk.relations().iter().enumerate() {
        let from_id = ontology
            .identifier_of(from)
            .ok_or_else(|| MdmError::Rewrite(format!("concept '{from}' has no identifier")))?;
        let to_id = ontology
            .identifier_of(to)
            .ok_or_else(|| MdmError::Rewrite(format!("concept '{to}' has no identifier")))?;
        let witnesses: Vec<Iri> =
            wrappers_covering_relation_taxonomic(ontology, from, property, to)
                .into_iter()
                .filter(|w| {
                    !ontology.attributes_mapping_to(w, &from_id).is_empty()
                        && !ontology.attributes_mapping_to(w, &to_id).is_empty()
                })
                .collect();
        if witnesses.is_empty() {
            return Err(MdmError::Rewrite(format!(
                "no wrapper covers the relation '{from}' -{property}-> '{to}' \
                 (and maps both endpoint identifiers); the walk cannot be answered"
            )));
        }
        edge_witnesses.push((index, witnesses));
    }

    // Deterministic concept order (walk order).
    let concepts: Vec<Iri> = walk.concepts().to_vec();
    for concept in &concepts {
        let alts = alternatives.get(concept).ok_or_else(|| {
            MdmError::Rewrite(format!(
                "internal: no partial walks supplied for '{concept}'"
            ))
        })?;
        if alts.is_empty() {
            return Err(MdmError::Rewrite(format!(
                "no wrapper covers concept '{concept}'"
            )));
        }
    }

    // Enumerate choice vectors.
    let branch_estimate: usize = concepts
        .iter()
        .map(|c| alternatives[c].len())
        .product::<usize>()
        .saturating_mul(
            edge_witnesses
                .iter()
                .map(|(_, w)| w.len())
                .product::<usize>(),
        );
    if branch_estimate > max_branches {
        return Err(MdmError::Rewrite(format!(
            "the rewriting would enumerate {branch_estimate} union branches \
             (limit {max_branches}); simplify the walk or the mappings, or \
             raise RewriteOptions::max_branches"
        )));
    }

    let mut queries = Vec::new();
    let mut concept_choice = vec![0usize; concepts.len()];
    loop {
        // For this concept choice, iterate edge witness choices.
        let mut edge_choice = vec![0usize; edge_witnesses.len()];
        loop {
            let cq = assemble(
                ontology,
                walk,
                &concepts,
                alternatives,
                &concept_choice,
                &edge_witnesses,
                &edge_choice,
            )?;
            queries.push(cq);
            if !increment(
                &mut edge_choice,
                &edge_witnesses
                    .iter()
                    .map(|(_, w)| w.len())
                    .collect::<Vec<_>>(),
            ) {
                break;
            }
        }
        if !increment(
            &mut concept_choice,
            &concepts
                .iter()
                .map(|c| alternatives[c].len())
                .collect::<Vec<_>>(),
        ) {
            break;
        }
    }

    // Dedup structurally identical branches (e.g. the edge witness already
    // participates in a partial walk).
    let mut seen = BTreeSet::new();
    queries.retain(|cq| seen.insert(cq.canonical_key()));
    queries.sort();
    Ok(queries)
}

/// Odometer-style increment; returns false on wrap-around.
fn increment(digits: &mut [usize], radixes: &[usize]) -> bool {
    for i in (0..digits.len()).rev() {
        digits[i] += 1;
        if digits[i] < radixes[i] {
            return true;
        }
        digits[i] = 0;
    }
    false
}

/// Builds one conjunctive query from concrete choices.
#[allow(clippy::too_many_arguments)]
fn assemble(
    ontology: &BdiOntology,
    walk: &Walk,
    concepts: &[Iri],
    alternatives: &BTreeMap<Iri, Vec<PartialWalk>>,
    concept_choice: &[usize],
    edge_witnesses: &[(usize, Vec<Iri>)],
    edge_choice: &[usize],
) -> Result<ConjunctiveQuery, MdmError> {
    let chosen: BTreeMap<&Iri, &PartialWalk> = concepts
        .iter()
        .zip(concept_choice)
        .map(|(c, &i)| (c, &alternatives[c][i]))
        .collect();

    let mut atoms: Vec<String> = Vec::new();
    let push_atom = |name: &str, atoms: &mut Vec<String>| {
        if !atoms.iter().any(|a| a == name) {
            atoms.push(name.to_string());
        }
    };
    let mut joins: Vec<(QualifiedColumn, QualifiedColumn)> = Vec::new();
    let push_join = |a: QualifiedColumn,
                     b: QualifiedColumn,
                     joins: &mut Vec<(QualifiedColumn, QualifiedColumn)>| {
        if a == b {
            return; // same column — trivially satisfied
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if !joins.contains(&(x.clone(), y.clone())) {
            joins.push((x, y));
        }
    };

    // Intra-concept atoms and joins: wrappers of one partial walk join on
    // their identifier columns (anchored at the first wrapper).
    for concept in concepts {
        let pw = chosen[concept];
        let anchor = &pw.wrappers[0];
        push_atom(&anchor.wrapper_name, &mut atoms);
        for other in &pw.wrappers[1..] {
            push_atom(&other.wrapper_name, &mut atoms);
            push_join(
                (anchor.wrapper_name.clone(), anchor.id_column.clone()),
                (other.wrapper_name.clone(), other.id_column.clone()),
                &mut joins,
            );
        }
    }

    // Inter-concept: each edge's witness links the two anchors.
    for ((edge_index, witnesses), &choice) in edge_witnesses.iter().zip(edge_choice) {
        let (from, property, to) = &walk.relations()[*edge_index];
        let witness = &witnesses[choice];
        let witness_name = witness.local_name().to_string();
        let from_id = ontology
            .identifier_of(from)
            .ok_or_else(|| MdmError::Rewrite(format!("concept '{from}' has no identifier")))?;
        let to_id = ontology
            .identifier_of(to)
            .ok_or_else(|| MdmError::Rewrite(format!("concept '{to}' has no identifier")))?;
        let witness_from = ontology.attributes_mapping_to(witness, &from_id);
        let witness_to = ontology.attributes_mapping_to(witness, &to_id);
        let (Some(wf), Some(wt)) = (witness_from.first(), witness_to.first()) else {
            return Err(MdmError::Rewrite(format!(
                "wrapper '{witness_name}' covers '{from}' -{property}-> '{to}' \
                 but does not map both identifiers"
            )));
        };
        push_atom(&witness_name, &mut atoms);
        let from_anchor = &chosen[from].wrappers[0];
        let to_anchor = &chosen[to].wrappers[0];
        push_join(
            (
                witness_name.clone(),
                BdiOntology::attribute_name(wf).to_string(),
            ),
            (
                from_anchor.wrapper_name.clone(),
                from_anchor.id_column.clone(),
            ),
            &mut joins,
        );
        push_join(
            (
                witness_name.clone(),
                BdiOntology::attribute_name(wt).to_string(),
            ),
            (to_anchor.wrapper_name.clone(), to_anchor.id_column.clone()),
            &mut joins,
        );
    }

    // Projections: the *requested* features (walk order).
    let mut projections = Vec::new();
    for concept in concepts {
        let pw = chosen[concept];
        for feature in walk.features_of(concept) {
            let (wrapper, column) = pw.column_for(feature).ok_or_else(|| {
                MdmError::Rewrite(format!(
                    "internal: chosen partial walk for '{concept}' lacks '{feature}'"
                ))
            })?;
            projections.push((feature.clone(), (wrapper.to_string(), column.to_string())));
        }
    }

    Ok(ConjunctiveQuery {
        atoms,
        joins,
        projections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::expand;
    use crate::intra::partial_walks;
    use crate::testkit::{evolved_ontology, ex, figure7_ontology, figure8_walk};

    fn alternatives_for(ontology: &BdiOntology, walk: &Walk) -> BTreeMap<Iri, Vec<PartialWalk>> {
        let expanded = expand(walk, ontology).unwrap().walk;
        expanded
            .concepts()
            .iter()
            .map(|c| {
                (
                    c.clone(),
                    partial_walks(ontology, c, expanded.features_of(c)).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn figure8_produces_single_cq() {
        let o = figure7_ontology();
        let walk = figure8_walk();
        let ucq = generate_ucq(&o, &walk, &alternatives_for(&o, &walk), MAX_UCQ_BRANCHES).unwrap();
        assert_eq!(ucq.len(), 1);
        let cq = &ucq[0];
        assert_eq!(cq.atoms, vec!["w1", "w2"]);
        // The single join: w1.teamId = w2.id.
        assert_eq!(cq.joins.len(), 1);
        let (a, b) = &cq.joins[0];
        let mut sides = vec![a.clone(), b.clone()];
        sides.sort();
        assert_eq!(
            sides,
            vec![
                ("w1".to_string(), "teamId".to_string()),
                ("w2".to_string(), "id".to_string())
            ]
        );
        // Projections: playerName from w1.pName, teamName from w2.name.
        assert_eq!(cq.projections.len(), 2);
        assert_eq!(
            cq.projections[0],
            (ex("playerName"), ("w1".to_string(), "pName".to_string()))
        );
        assert_eq!(
            cq.projections[1],
            (ex("teamName"), ("w2".to_string(), "name".to_string()))
        );
    }

    #[test]
    fn evolution_doubles_the_union() {
        let o = evolved_ontology();
        let walk = figure8_walk();
        let ucq = generate_ucq(&o, &walk, &alternatives_for(&o, &walk), MAX_UCQ_BRANCHES).unwrap();
        // Player alternatives {w1, w3} × edge witnesses {w1, w3}, deduped:
        // the edge witness coincides with the player wrapper, and the cross
        // choices (w1 player + w3 edge, etc.) survive as distinct CQs.
        assert!(ucq.len() >= 2, "got {} CQs", ucq.len());
        let atom_sets: Vec<Vec<String>> = ucq.iter().map(|cq| cq.atoms.clone()).collect();
        assert!(atom_sets.iter().any(|a| a.contains(&"w1".to_string())));
        assert!(atom_sets.iter().any(|a| a.contains(&"w3".to_string())));
        // Every CQ projects the same two features in the same order.
        for cq in &ucq {
            assert_eq!(cq.projections.len(), 2);
            assert_eq!(cq.projections[0].0, ex("playerName"));
        }
    }

    #[test]
    fn uncovered_relation_is_an_error() {
        let mut o = figure7_ontology();
        // Add a relation no wrapper covers.
        let coach = ex("Coach");
        o.add_concept(&coach).unwrap();
        o.add_identifier(&coach, &ex("coachId")).unwrap();
        o.add_relation(&ex("Player"), &ex("coachedBy"), &coach)
            .unwrap();
        let walk = Walk::new()
            .feature(&ex("Player"), &ex("playerName"))
            .feature(&coach, &ex("coachId"))
            .relation(&ex("Player"), &ex("coachedBy"), &coach);
        // Build alternatives only for Player (Coach has none) — the edge
        // check fires first.
        let mut alternatives = BTreeMap::new();
        let expanded = expand(&walk, &o);
        // Expansion succeeds (coach has an id), but phase (b) would fail for
        // Coach; the edge error is the one generate_ucq reports.
        let expanded = expanded.unwrap().walk;
        alternatives.insert(
            ex("Player"),
            partial_walks(&o, &ex("Player"), expanded.features_of(&ex("Player"))).unwrap(),
        );
        alternatives.insert(coach.clone(), vec![]);
        let err = generate_ucq(&o, &walk, &alternatives, MAX_UCQ_BRANCHES).unwrap_err();
        assert!(err.message().contains("no wrapper covers the relation"));
    }

    #[test]
    fn dedup_collapses_identical_branches() {
        let o = figure7_ontology();
        let walk = figure8_walk();
        let ucq = generate_ucq(&o, &walk, &alternatives_for(&o, &walk), MAX_UCQ_BRANCHES).unwrap();
        let keys: BTreeSet<_> = ucq.iter().map(|cq| cq.canonical_key()).collect();
        assert_eq!(keys.len(), ucq.len());
    }

    #[test]
    fn odometer_increment() {
        let mut digits = vec![0, 0];
        let radixes = vec![2, 3];
        let mut count = 1;
        while increment(&mut digits, &radixes) {
            count += 1;
        }
        assert_eq!(count, 6);
    }
}

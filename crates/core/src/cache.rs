//! Epoch-keyed rewrite-plan cache.
//!
//! Rewriting a walk is pure metadata work: its output depends only on the
//! ontology (global graph, source graph, mappings) and the rewrite options.
//! Both change *only* through steward calls, so the [`crate::Mdm`] facade
//! stamps every mutation with a monotonically increasing **metadata epoch**
//! and this cache keys plans by *(canonical walk, epoch)*: a release, a new
//! mapping or an option change bumps the epoch and every cached plan from
//! the previous epoch becomes unreachable — readers can never observe a
//! stale union that misses a newly mapped wrapper version.
//!
//! The cache is LRU-bounded and internally synchronised (a mutex around the
//! map, atomics for the counters), so it serves concurrent analysts holding
//! a shared reference — the shape `mdm-server` relies on: many readers under
//! an `RwLock` read guard, all hitting the same cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::rewrite::Rewriting;
use mdm_relational::Plan;

/// Default bound on cached plans; enough for every distinct dashboard query
/// of a deployment while keeping the worst-case memory small (plans are a
/// few KiB each).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache at the current epoch.
    pub hits: u64,
    /// Lookups that had to rewrite (absent key or stale epoch).
    pub misses: u64,
    /// Entries dropped because their epoch was older than the lookup's.
    pub invalidations: u64,
    /// Entries dropped to make room (LRU policy).
    pub evictions: u64,
    /// Optimized-plan slots recomputed because the stats epoch moved on
    /// (the metadata-epoch entry itself survived).
    pub reoptimizations: u64,
    /// Live entries.
    pub entries: usize,
    /// Configured bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    epoch: u64,
    plan: Arc<Rewriting>,
    last_used: u64,
    /// The cost-optimized physical form of `plan`, tagged with the stats
    /// epoch it was optimized under. A stats refresh makes this slot stale
    /// — and *only* this slot: the rewriting above survives, because
    /// statistics are not metadata.
    optimized: Option<(u64, Arc<Plan>)>,
}

/// The LRU-bounded, epoch-validated plan cache.
pub struct PlanCache {
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    reoptimizations: AtomicU64,
    entries: Mutex<HashMap<String, Entry>>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            reoptimizations: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the plan cached for `key` if it was produced at `epoch`.
    /// A key cached at an older epoch is dropped (and counted as an
    /// invalidation): the metadata it was derived from no longer exists.
    pub fn lookup(&self, key: &str, epoch: u64) -> Option<Arc<Rewriting>> {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        match entries.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                entries.remove(key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches `plan` for `key` as of `epoch`, evicting the least recently
    /// used entry when full.
    pub fn insert(&self, key: String, epoch: u64, plan: Arc<Rewriting>) {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if !entries.contains_key(&key) && entries.len() >= self.capacity {
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            key,
            Entry {
                epoch,
                plan,
                last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                optimized: None,
            },
        );
    }

    /// Returns the cost-optimized plan cached for `key`, provided the
    /// rewriting is current at `epoch` **and** the optimized form was
    /// computed at `stats_epoch`. A slot optimized under an older stats
    /// epoch is dropped and counted as a re-optimization — while the
    /// rewriting entry itself stays cached: a stats refresh re-optimizes
    /// plans, it does not invalidate metadata.
    pub fn lookup_optimized(&self, key: &str, epoch: u64, stats_epoch: u64) -> Option<Arc<Plan>> {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        let entry = entries.get_mut(key)?;
        if entry.epoch != epoch {
            return None;
        }
        match &entry.optimized {
            Some((at, plan)) if *at == stats_epoch => Some(Arc::clone(plan)),
            Some(_) => {
                entry.optimized = None;
                self.reoptimizations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    /// Stores the cost-optimized form of `key`'s plan as of `stats_epoch`.
    /// A no-op when the rewriting entry is absent or from another metadata
    /// epoch (evicted or invalidated since the rewrite).
    pub fn store_optimized(&self, key: &str, epoch: u64, stats_epoch: u64, plan: Arc<Plan>) {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        if let Some(entry) = entries.get_mut(key) {
            if entry.epoch == epoch {
                entry.optimized = Some((stats_epoch, plan));
            }
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("plan cache poisoned").clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reoptimizations: self.reoptimizations.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("plan cache poisoned").len(),
            capacity: self.capacity,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_relational::Plan;

    fn dummy_plan(tag: &str) -> Arc<Rewriting> {
        Arc::new(Rewriting {
            queries: Vec::new(),
            plan: Plan::scan(tag),
            sparql: String::new(),
            output_columns: vec![tag.to_string()],
            expanded_identifiers: Vec::new(),
        })
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup("q", 1).is_none());
        cache.insert("q".into(), 1, dummy_plan("w1"));
        let hit = cache.lookup("q", 1).expect("cached");
        assert_eq!(hit.output_columns, vec!["w1".to_string()]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = PlanCache::new(4);
        cache.insert("q".into(), 1, dummy_plan("old"));
        assert!(cache.lookup("q", 2).is_none(), "stale plan must not serve");
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0, "stale entry is dropped eagerly");
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, dummy_plan("a"));
        cache.insert("b".into(), 1, dummy_plan("b"));
        cache.lookup("a", 1); // refresh a; b is now least recently used
        cache.insert("c".into(), 1, dummy_plan("c"));
        assert!(cache.lookup("a", 1).is_some());
        assert!(cache.lookup("b", 1).is_none(), "b was evicted");
        assert!(cache.lookup("c", 1).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), 1, dummy_plan("a"));
        assert!(cache.lookup("a", 1).is_some());
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4);
        cache.insert("a".into(), 1, dummy_plan("a"));
        cache.lookup("a", 1);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn optimized_slot_rides_the_stats_epoch_not_the_metadata_epoch() {
        let cache = PlanCache::new(4);
        cache.insert("q".into(), 1, dummy_plan("w1"));
        assert!(cache.lookup_optimized("q", 1, 0).is_none());
        cache.store_optimized("q", 1, 0, Arc::new(Plan::scan("w1")));
        assert!(cache.lookup_optimized("q", 1, 0).is_some());

        // Stats epoch moves: the optimized slot is dropped and counted as
        // a re-optimization, but the rewriting entry still serves.
        assert!(cache.lookup_optimized("q", 1, 1).is_none());
        assert_eq!(cache.stats().reoptimizations, 1);
        assert!(cache.lookup("q", 1).is_some(), "rewriting survives refresh");
        assert_eq!(cache.stats().invalidations, 0);

        // Wrong metadata epoch never serves an optimized plan.
        cache.store_optimized("q", 1, 1, Arc::new(Plan::scan("w1")));
        assert!(cache.lookup_optimized("q", 2, 1).is_none());
        // Storing against a stale metadata epoch is a no-op.
        cache.store_optimized("q", 9, 1, Arc::new(Plan::scan("zzz")));
        assert!(cache.lookup_optimized("q", 9, 1).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(PlanCache::new(16));
        cache.insert("q".into(), 1, dummy_plan("w"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert!(cache.lookup("q", 1).is_some());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(cache.stats().hits, 400);
    }
}

//! Footprint-validated rewrite-plan cache with surgical invalidation.
//!
//! Rewriting a walk is pure metadata work: its output depends only on the
//! ontology (global graph, source graph, mappings) and the rewrite options.
//! Both change *only* through steward calls, so the [`crate::Mdm`] facade
//! stamps every mutation with a monotonically increasing **metadata epoch**
//! and this cache keys plans by canonical walk, validated against the epoch.
//!
//! Historically validation was equality — `entry.epoch == lookup.epoch` —
//! which made *every* cached plan unreachable after *any* steward mutation:
//! under continuous source evolution (the paper's core scenario) the cache
//! degenerated to a 0% hit rate. Validation is now an **epoch-interval
//! test** against a bounded, append-only **invalidation log**: each cached
//! rewriting records the dependency [`Footprint`] it read (concepts with
//! their taxonomic closure, wrappers scanned), each mutation records the
//! footprint it wrote, and an entry from an older epoch survives iff every
//! logged mutation in `(entry.epoch, lookup.epoch]` is disjoint from the
//! entry's footprint — in which case the entry *slides forward* to the
//! lookup epoch and keeps serving. A release of concept A leaves every plan
//! over concepts B..Z hot.
//!
//! Soundness rests on two properties. First, the log is append-only and
//! epochs increase strictly, so the interval `(entry.epoch, lookup.epoch]`
//! enumerates *exactly* the mutations committed since the entry was (last
//! known) valid — nothing can be inserted behind the cursor. Second,
//! whenever coverage is uncertain — the entry predates the log's retained
//! horizon, the lookup epoch is beyond the logged frontier (an epoch jump
//! the cache was not told about), or the entry has no recorded footprint —
//! the cache invalidates conservatively. A stale union is never served.
//!
//! When the only overlapping mutations are new mapping definitions
//! ([`crate::journal::MutationOp::is_extension`]), the cache returns
//! [`Lookup::Extend`] instead of a miss: the caller re-runs phase (b) for
//! the affected concepts only and re-assembles (see
//! [`crate::rewrite::assemble`]), splicing the new union branches in at a
//! fraction of a cold rewrite.
//!
//! The cache is LRU-bounded — the victim scan is O(log n) via an ordered
//! `(last_used, key)` index, not a full-map sweep — and internally
//! synchronised, so it serves concurrent analysts holding a shared
//! reference: many readers under an `RwLock` read guard in `mdm-server`,
//! all hitting the same cache. Mutations eagerly sweep overlapping entries
//! (so invalidated plans for retired dashboards are reclaimed immediately
//! instead of pinning memory until their key is looked up again) and slide
//! disjoint entries forward, keeping the common lookup on the equality
//! fast path.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::footprint::Footprint;
use crate::rewrite::{RewriteArtifacts, Rewriting};
use mdm_relational::Plan;

/// Default bound on cached plans; enough for every distinct dashboard query
/// of a deployment while keeping the worst-case memory small (plans are a
/// few KiB each).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Bound on the invalidation log. Entries older than the retained window
/// invalidate conservatively, so this trades memory for how long an idle
/// plan can survive without a lookup.
pub const INVALIDATION_LOG_CAPACITY: usize = 1024;

/// How stale entries are validated (the A/B knob for the P15 bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InvalidationMode {
    /// Legacy behaviour: any epoch difference invalidates.
    Coarse,
    /// Footprint-interval validation (the default).
    #[default]
    Surgical,
}

/// A point-in-time view of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including footprint survivals).
    pub hits: u64,
    /// Lookups that had to rewrite (absent key, stale entry, extension).
    pub misses: u64,
    /// Entries dropped because a mutation (or unprovable validity) made
    /// them stale.
    pub invalidations: u64,
    /// Entries dropped to make room (LRU policy).
    pub evictions: u64,
    /// Optimized-plan slots recomputed because the stats epoch moved on
    /// (the metadata-epoch entry itself survived).
    pub reoptimizations: u64,
    /// Optimized-slot lookups served from the stats-epoch side slot.
    pub optimized_hits: u64,
    /// Optimized-slot lookups that had to re-optimize.
    pub optimized_misses: u64,
    /// Entries dropped because a mutation's footprint overlapped theirs.
    pub surgical_invalidations: u64,
    /// Entry×mutation events where a disjoint footprint let a cached plan
    /// stay hot across a steward mutation.
    pub survivals: u64,
    /// Stale entries refreshed by incremental UCQ extension (phase (b)
    /// re-run for affected concepts only).
    pub incremental_extensions: u64,
    /// Cold rewrites performed through the cached path.
    pub full_rewrites: u64,
    /// Live entries.
    pub entries: usize,
    /// Configured bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// Valid at the lookup epoch (directly or by footprint survival).
    Hit(Arc<Rewriting>),
    /// Stale, but every overlapping mutation since the entry's epoch was an
    /// extendable mapping definition: the caller can re-run phase (b) for
    /// `affected` concepts over the cached artifacts and re-assemble,
    /// then store the result with [`PlanCache::insert_extended`].
    Extend {
        /// The stale rewriting (for reference; its plan must not be served).
        plan: Arc<Rewriting>,
        /// The reusable phase (a)/(b) artifacts.
        artifacts: Arc<RewriteArtifacts>,
        /// Concepts (IRI text) the intervening mappings cover.
        affected: BTreeSet<String>,
    },
    /// Absent or irrecoverably stale: rewrite from scratch.
    Miss,
}

impl Lookup {
    /// The hit payload, if any — convenience for callers (and tests) that
    /// do not use incremental extension.
    pub fn hit(self) -> Option<Arc<Rewriting>> {
        match self {
            Lookup::Hit(plan) => Some(plan),
            _ => None,
        }
    }
}

struct LoggedMutation {
    epoch: u64,
    footprint: Footprint,
    extension: bool,
}

struct Entry {
    /// The epoch through which this entry is known valid. Slides forward
    /// when mutations prove disjoint.
    epoch: u64,
    /// True when an extendable mutation overlapped this entry: it is stale
    /// (must not be served as a hit) but repairable via [`Lookup::Extend`].
    pending: bool,
    plan: Arc<Rewriting>,
    /// Read footprint + reusable rewrite phases. `None` for entries stored
    /// through the footprint-less [`PlanCache::insert`], which can only be
    /// validated by epoch equality.
    artifacts: Option<Arc<RewriteArtifacts>>,
    last_used: u64,
    /// The cost-optimized physical form of `plan`, tagged with the stats
    /// epoch it was optimized under. A stats refresh makes this slot stale
    /// — and *only* this slot: the rewriting above survives, because
    /// statistics are not metadata.
    optimized: Option<(u64, Arc<Plan>)>,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// `(last_used, key)` index over `entries`: the LRU victim is
    /// `lru.first()` — O(log n), not a full-map scan.
    lru: BTreeSet<(u64, String)>,
    clock: u64,
    /// The invalidation log: footprints of committed mutations, epochs
    /// strictly increasing (append-only).
    log: VecDeque<LoggedMutation>,
    /// Epochs `<= floor` have fallen off the log (or were never covered):
    /// entries from them invalidate conservatively.
    floor: u64,
    /// The highest epoch the log covers; lookups beyond it invalidate
    /// conservatively (an epoch jump the cache was not told about).
    frontier: u64,
    mode: InvalidationMode,
}

/// The LRU-bounded, footprint-validated plan cache.
pub struct PlanCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
    reoptimizations: AtomicU64,
    optimized_hits: AtomicU64,
    optimized_misses: AtomicU64,
    surgical_invalidations: AtomicU64,
    survivals: AtomicU64,
    incremental_extensions: AtomicU64,
    full_rewrites: AtomicU64,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            reoptimizations: AtomicU64::new(0),
            optimized_hits: AtomicU64::new(0),
            optimized_misses: AtomicU64::new(0),
            surgical_invalidations: AtomicU64::new(0),
            survivals: AtomicU64::new(0),
            incremental_extensions: AtomicU64::new(0),
            full_rewrites: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: BTreeSet::new(),
                clock: 0,
                log: VecDeque::new(),
                floor: 0,
                frontier: 0,
                mode: InvalidationMode::default(),
            }),
        }
    }

    /// Switches between coarse (epoch-equality) and surgical validation.
    pub fn set_invalidation_mode(&self, mode: InvalidationMode) {
        self.lock().mode = mode;
    }

    /// The active validation mode.
    pub fn invalidation_mode(&self) -> InvalidationMode {
        self.lock().mode
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("plan cache poisoned")
    }

    /// Records one committed mutation in the invalidation log and sweeps
    /// the entries: overlapping entries are dropped (or marked pending
    /// extension when the mutation is an extendable mapping definition and
    /// the entry kept its artifacts), disjoint current entries slide
    /// forward to `epoch`. The eager sweep is what fixes the historical
    /// stale-entry leak — an invalidated plan is reclaimed at mutation
    /// time, not when (if ever) its key is looked up again.
    ///
    /// Epochs at or below the logged frontier are ignored (idempotent
    /// replay); a gap above the frontier truncates coverage, so entries
    /// predating the gap invalidate conservatively.
    pub fn note_mutation(&self, epoch: u64, footprint: Footprint, extension: bool) {
        let inner = &mut *self.lock();
        if epoch <= inner.frontier {
            return;
        }
        if epoch > inner.frontier + 1 {
            // The cache was not told about epochs (frontier, epoch): it
            // cannot vouch for them. Restart coverage at the gap's edge.
            inner.log.clear();
            inner.floor = epoch - 1;
        }
        inner.log.push_back(LoggedMutation {
            epoch,
            footprint: footprint.clone(),
            extension,
        });
        inner.frontier = epoch;
        while inner.log.len() > INVALIDATION_LOG_CAPACITY {
            if let Some(dropped) = inner.log.pop_front() {
                inner.floor = dropped.epoch;
            }
        }
        if inner.mode == InvalidationMode::Coarse {
            return; // legacy semantics: validation happens lazily at lookup
        }

        let mut dropped: Vec<String> = Vec::new();
        let mut survived = 0u64;
        for (key, entry) in inner.entries.iter_mut() {
            if entry.epoch >= epoch {
                continue;
            }
            match entry.artifacts.as_ref() {
                Some(artifacts) if !footprint.overlaps(&artifacts.footprint) => {
                    // Disjoint: slide forward, but only entries provably
                    // current through the predecessor epoch; anything else
                    // is resolved by the interval test at lookup.
                    if !entry.pending && entry.epoch == epoch - 1 {
                        entry.epoch = epoch;
                        survived += 1;
                    }
                }
                Some(_) if extension => entry.pending = true,
                _ => dropped.push(key.clone()),
            }
        }
        let overlapped = dropped.len() as u64;
        for key in dropped {
            remove_entry(inner, &key);
        }
        self.survivals.fetch_add(survived, Ordering::Relaxed);
        self.invalidations.fetch_add(overlapped, Ordering::Relaxed);
        self.surgical_invalidations
            .fetch_add(overlapped, Ordering::Relaxed);
    }

    /// Validates and returns the plan cached for `key` as of `epoch`.
    ///
    /// * Same epoch → [`Lookup::Hit`].
    /// * Older epoch, every logged mutation in `(entry.epoch, epoch]`
    ///   disjoint from the entry's footprint → the entry slides forward
    ///   and serves ([`Lookup::Hit`], counted as a survival).
    /// * Older epoch, overlapping mutations all extendable →
    ///   [`Lookup::Extend`].
    /// * Anything else — including intervals the log cannot vouch for —
    ///   drops the entry conservatively and reports [`Lookup::Miss`].
    pub fn lookup(&self, key: &str, epoch: u64) -> Lookup {
        let inner = &mut *self.lock();
        let Some(entry) = inner.entries.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        if entry.epoch == epoch && !entry.pending {
            let plan = Arc::clone(&entry.plan);
            touch_entry(inner, key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Hit(plan);
        }
        if inner.mode == InvalidationMode::Coarse {
            remove_entry(inner, key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        }
        // Surgical: the interval test. Refuse to speculate when the log
        // does not cover (entry.epoch, epoch] or the footprint is unknown.
        let covered = epoch >= entry.epoch && entry.epoch >= inner.floor && epoch <= inner.frontier;
        let Some(artifacts) = entry.artifacts.clone() else {
            remove_entry(inner, key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        if !covered {
            remove_entry(inner, key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        }
        let overlapping: Vec<&LoggedMutation> = inner
            .log
            .iter()
            .filter(|m| {
                m.epoch > entry.epoch
                    && m.epoch <= epoch
                    && m.footprint.overlaps(&artifacts.footprint)
            })
            .collect();
        if overlapping.is_empty() {
            self.survivals.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            let plan = {
                let entry = inner.entries.get_mut(key).expect("present above");
                entry.epoch = epoch;
                entry.pending = false;
                Arc::clone(&entry.plan)
            };
            touch_entry(inner, key);
            return Lookup::Hit(plan);
        }
        if overlapping.iter().all(|m| m.extension) {
            let affected: BTreeSet<String> = overlapping
                .iter()
                .flat_map(|m| m.footprint.concepts.iter().cloned())
                .collect();
            let plan = Arc::clone(&inner.entries.get(key).expect("present above").plan);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Extend {
                plan,
                artifacts,
                affected,
            };
        }
        remove_entry(inner, key);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        self.surgical_invalidations.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss
    }

    /// Caches `plan` for `key` as of `epoch` without a footprint: the entry
    /// can only be validated by epoch equality (kept for embedders and
    /// tests; [`crate::Mdm`] stores footprinted entries).
    pub fn insert(&self, key: String, epoch: u64, plan: Arc<Rewriting>) {
        self.insert_entry(key, epoch, plan, None);
    }

    /// Caches a cold rewrite with its artifacts (read footprint + reusable
    /// phases).
    pub fn insert_with_artifacts(
        &self,
        key: String,
        epoch: u64,
        plan: Arc<Rewriting>,
        artifacts: Arc<RewriteArtifacts>,
    ) {
        self.full_rewrites.fetch_add(1, Ordering::Relaxed);
        self.insert_entry(key, epoch, plan, Some(artifacts));
    }

    /// Caches the result of an incremental UCQ extension (see
    /// [`Lookup::Extend`]), replacing the stale entry.
    pub fn insert_extended(
        &self,
        key: String,
        epoch: u64,
        plan: Arc<Rewriting>,
        artifacts: Arc<RewriteArtifacts>,
    ) {
        self.incremental_extensions.fetch_add(1, Ordering::Relaxed);
        self.insert_entry(key, epoch, plan, Some(artifacts));
    }

    fn insert_entry(
        &self,
        key: String,
        epoch: u64,
        plan: Arc<Rewriting>,
        artifacts: Option<Arc<RewriteArtifacts>>,
    ) {
        let inner = &mut *self.lock();
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some((_, victim)) = inner.lru.pop_first() {
                inner.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.clock += 1;
        let last_used = inner.clock;
        if let Some(old) = inner.entries.insert(
            key.clone(),
            Entry {
                epoch,
                pending: false,
                plan,
                artifacts,
                last_used,
                optimized: None,
            },
        ) {
            inner.lru.remove(&(old.last_used, key.clone()));
        }
        inner.lru.insert((last_used, key));
    }

    /// Returns the cost-optimized plan cached for `key`, provided the
    /// rewriting is current at `epoch` **and** the optimized form was
    /// computed at `stats_epoch`. A slot optimized under an older stats
    /// epoch is dropped and counted as a re-optimization — while the
    /// rewriting entry itself stays cached: a stats refresh re-optimizes
    /// plans, it does not invalidate metadata. Every probe lands in
    /// `optimized_hits`/`optimized_misses`, so `/metrics` accounts for
    /// optimizer-path traffic too.
    pub fn lookup_optimized(&self, key: &str, epoch: u64, stats_epoch: u64) -> Option<Arc<Plan>> {
        let inner = &mut *self.lock();
        let result = match inner.entries.get_mut(key) {
            Some(entry) if entry.epoch == epoch && !entry.pending => match &entry.optimized {
                Some((at, plan)) if *at == stats_epoch => Some(Arc::clone(plan)),
                Some(_) => {
                    entry.optimized = None;
                    self.reoptimizations.fetch_add(1, Ordering::Relaxed);
                    None
                }
                None => None,
            },
            _ => None,
        };
        match &result {
            Some(_) => self.optimized_hits.fetch_add(1, Ordering::Relaxed),
            None => self.optimized_misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores the cost-optimized form of `key`'s plan as of `stats_epoch`.
    /// A no-op when the rewriting entry is absent or stale (evicted or
    /// invalidated since the rewrite).
    pub fn store_optimized(&self, key: &str, epoch: u64, stats_epoch: u64, plan: Arc<Plan>) {
        let inner = &mut *self.lock();
        if let Some(entry) = inner.entries.get_mut(key) {
            if entry.epoch == epoch && !entry.pending {
                entry.optimized = Some((stats_epoch, plan));
            }
        }
    }

    /// Drops every entry (counters and the invalidation log are preserved).
    pub fn clear(&self) {
        let inner = &mut *self.lock();
        inner.entries.clear();
        inner.lru.clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reoptimizations: self.reoptimizations.load(Ordering::Relaxed),
            optimized_hits: self.optimized_hits.load(Ordering::Relaxed),
            optimized_misses: self.optimized_misses.load(Ordering::Relaxed),
            surgical_invalidations: self.surgical_invalidations.load(Ordering::Relaxed),
            survivals: self.survivals.load(Ordering::Relaxed),
            incremental_extensions: self.incremental_extensions.load(Ordering::Relaxed),
            full_rewrites: self.full_rewrites.load(Ordering::Relaxed),
            entries: self.lock().entries.len(),
            capacity: self.capacity,
        }
    }
}

/// Removes one entry and its LRU index pair.
fn remove_entry(inner: &mut Inner, key: &str) -> Option<Entry> {
    let entry = inner.entries.remove(key)?;
    inner.lru.remove(&(entry.last_used, key.to_string()));
    Some(entry)
}

/// Refreshes one entry's recency in the LRU index.
fn touch_entry(inner: &mut Inner, key: &str) {
    inner.clock += 1;
    let clock = inner.clock;
    if let Some(entry) = inner.entries.get_mut(key) {
        inner.lru.remove(&(entry.last_used, key.to_string()));
        entry.last_used = clock;
        inner.lru.insert((clock, key.to_string()));
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_relational::Plan;

    fn dummy_plan(tag: &str) -> Arc<Rewriting> {
        Arc::new(Rewriting {
            queries: Vec::new(),
            plan: Plan::scan(tag),
            sparql: String::new(),
            output_columns: vec![tag.to_string()],
            expanded_identifiers: Vec::new(),
        })
    }

    fn dummy_artifacts(concepts: &[&str], wrappers: &[&str]) -> Arc<RewriteArtifacts> {
        Arc::new(RewriteArtifacts {
            expanded: crate::expansion::ExpandedWalk {
                walk: crate::walk::Walk::new(),
                added_identifiers: Vec::new(),
            },
            alternatives: Default::default(),
            footprint: Footprint {
                concepts: concepts.iter().map(|s| s.to_string()).collect(),
                wrappers: wrappers.iter().map(|s| s.to_string()).collect(),
                global: false,
            },
        })
    }

    fn fp(concepts: &[&str]) -> Footprint {
        Footprint {
            concepts: concepts.iter().map(|s| s.to_string()).collect(),
            ..Footprint::default()
        }
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup("q", 1).hit().is_none());
        cache.insert("q".into(), 1, dummy_plan("w1"));
        let hit = cache.lookup("q", 1).hit().expect("cached");
        assert_eq!(hit.output_columns, vec!["w1".to_string()]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn epoch_bump_invalidates_without_log_coverage() {
        // No `note_mutation` ran, so the log cannot vouch for the interval
        // (1, 2]: the entry must invalidate conservatively.
        let cache = PlanCache::new(4);
        cache.insert("q".into(), 1, dummy_plan("old"));
        assert!(
            cache.lookup("q", 2).hit().is_none(),
            "stale plan must not serve"
        );
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0, "stale entry is dropped eagerly");
    }

    #[test]
    fn disjoint_footprint_survives_and_slides_forward() {
        let cache = PlanCache::new(4);
        cache.insert_with_artifacts(
            "q".into(),
            1,
            dummy_plan("w1"),
            dummy_artifacts(&["A"], &["w1"]),
        );
        cache.note_mutation(2, fp(&["B"]), false);
        assert!(cache.lookup("q", 2).hit().is_some(), "disjoint ⇒ survive");
        let stats = cache.stats();
        assert_eq!(stats.survivals, 1, "sweep slid the entry forward");
        assert_eq!(stats.surgical_invalidations, 0);
        // A later overlapping mutation still invalidates.
        cache.note_mutation(3, fp(&["A"]), false);
        assert!(cache.lookup("q", 3).hit().is_none());
        let stats = cache.stats();
        assert_eq!(stats.surgical_invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn mutation_sweep_reclaims_overlapping_entries_eagerly() {
        // The historical leak: an invalidated entry for a retired dashboard
        // stayed pinned until its exact key was looked up again. The sweep
        // drops it at mutation time.
        let cache = PlanCache::new(8);
        cache.insert_with_artifacts("a".into(), 1, dummy_plan("a"), dummy_artifacts(&["A"], &[]));
        cache.insert_with_artifacts("b".into(), 1, dummy_plan("b"), dummy_artifacts(&["B"], &[]));
        cache.note_mutation(2, fp(&["A"]), false);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "overlapping entry reclaimed on commit");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.surgical_invalidations, 1);
        assert!(cache.lookup("b", 2).hit().is_some(), "disjoint entry hot");
    }

    #[test]
    fn extendable_mutation_reports_extend_with_affected_concepts() {
        let cache = PlanCache::new(4);
        cache.insert_with_artifacts(
            "q".into(),
            1,
            dummy_plan("w1"),
            dummy_artifacts(&["A"], &["w1"]),
        );
        let mut mapping = fp(&["A"]);
        mapping.wrappers.insert("w9".into());
        cache.note_mutation(2, mapping, true);
        match cache.lookup("q", 2) {
            Lookup::Extend { affected, .. } => {
                assert_eq!(affected, ["A".to_string()].into_iter().collect());
            }
            _ => panic!("expected Extend"),
        }
        // The extended result replaces the stale entry and serves.
        cache.insert_extended(
            "q".into(),
            2,
            dummy_plan("w1w9"),
            dummy_artifacts(&["A"], &["w1", "w9"]),
        );
        assert!(cache.lookup("q", 2).hit().is_some());
        assert_eq!(cache.stats().incremental_extensions, 1);
    }

    #[test]
    fn extension_then_breaking_mutation_invalidates() {
        let cache = PlanCache::new(4);
        cache.insert_with_artifacts(
            "q".into(),
            1,
            dummy_plan("w1"),
            dummy_artifacts(&["A"], &["w1"]),
        );
        cache.note_mutation(2, fp(&["A"]), true); // extendable
        cache.note_mutation(3, fp(&["A"]), false); // breaking
        assert!(cache.lookup("q", 3).hit().is_none());
        assert!(cache.stats().surgical_invalidations >= 1);
    }

    #[test]
    fn coarse_mode_restores_legacy_equality_semantics() {
        let cache = PlanCache::new(4);
        cache.set_invalidation_mode(InvalidationMode::Coarse);
        assert_eq!(cache.invalidation_mode(), InvalidationMode::Coarse);
        cache.insert_with_artifacts(
            "q".into(),
            1,
            dummy_plan("w1"),
            dummy_artifacts(&["A"], &["w1"]),
        );
        cache.note_mutation(2, fp(&["ZZZ"]), false);
        assert!(
            cache.lookup("q", 2).hit().is_none(),
            "coarse mode ignores footprints"
        );
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn epoch_gap_truncates_log_coverage() {
        let cache = PlanCache::new(4);
        cache.insert_with_artifacts(
            "q".into(),
            1,
            dummy_plan("w1"),
            dummy_artifacts(&["A"], &[]),
        );
        cache.note_mutation(2, fp(&["B"]), false);
        // Epoch jumps to 10 without noted mutations in between: coverage
        // restarts, and the old entry cannot be vouched for.
        cache.note_mutation(10, fp(&["B"]), false);
        assert!(cache.lookup("q", 10).hit().is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Entries inserted after the gap validate normally.
        cache.insert_with_artifacts(
            "r".into(),
            10,
            dummy_plan("w2"),
            dummy_artifacts(&["C"], &[]),
        );
        cache.note_mutation(11, fp(&["B"]), false);
        assert!(cache.lookup("r", 11).hit().is_some());
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, dummy_plan("a"));
        cache.insert("b".into(), 1, dummy_plan("b"));
        cache.lookup("a", 1); // refresh a; b is now least recently used
        cache.insert("c".into(), 1, dummy_plan("c"));
        assert!(cache.lookup("a", 1).hit().is_some());
        assert!(cache.lookup("b", 1).hit().is_none(), "b was evicted");
        assert!(cache.lookup("c", 1).hit().is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), 1, dummy_plan("a"));
        assert!(cache.lookup("a", 1).hit().is_some());
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4);
        cache.insert("a".into(), 1, dummy_plan("a"));
        cache.lookup("a", 1);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn optimized_slot_rides_the_stats_epoch_not_the_metadata_epoch() {
        let cache = PlanCache::new(4);
        cache.insert("q".into(), 1, dummy_plan("w1"));
        assert!(cache.lookup_optimized("q", 1, 0).is_none());
        cache.store_optimized("q", 1, 0, Arc::new(Plan::scan("w1")));
        assert!(cache.lookup_optimized("q", 1, 0).is_some());

        // Stats epoch moves: the optimized slot is dropped and counted as
        // a re-optimization, but the rewriting entry still serves.
        assert!(cache.lookup_optimized("q", 1, 1).is_none());
        assert_eq!(cache.stats().reoptimizations, 1);
        assert!(
            cache.lookup("q", 1).hit().is_some(),
            "rewriting survives refresh"
        );
        assert_eq!(cache.stats().invalidations, 0);

        // Wrong metadata epoch never serves an optimized plan.
        cache.store_optimized("q", 1, 1, Arc::new(Plan::scan("w1")));
        assert!(cache.lookup_optimized("q", 2, 1).is_none());
        // Storing against a stale metadata epoch is a no-op.
        cache.store_optimized("q", 9, 1, Arc::new(Plan::scan("zzz")));
        assert!(cache.lookup_optimized("q", 9, 1).is_none());

        // Every probe above landed in the optimized counters.
        let stats = cache.stats();
        assert_eq!(stats.optimized_hits, 1);
        assert_eq!(stats.optimized_misses, 4);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(PlanCache::new(16));
        cache.insert("q".into(), 1, dummy_plan("w"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert!(cache.lookup("q", 1).hit().is_some());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(cache.stats().hits, 400);
    }
}

//! Taxonomy-aware rewriting (the §2.1 "we also allow to define taxonomies"
//! capability, carried through the whole pipeline): wrappers mapped to
//! subconcepts answer walks posed over the superconcept.
//!
//! Scenario: `Goalkeeper ⊑ Player`. A dedicated Goalkeepers API serves only
//! goalkeepers (with the shared player identifier); the general Players API
//! serves outfield players. A walk over `Player` must union both.

use mdm_core::mapping::MappingBuilder;
use mdm_core::{Mdm, Walk};
use mdm_rdf::Iri;
use mdm_wrappers::rest::{Format, Release};
use mdm_wrappers::wrapper::{Signature, Wrapper};

fn ex(local: &str) -> Iri {
    Iri::new(format!("{}{local}", mdm_rdf::vocab::EXAMPLE_NS))
}

/// Builds the taxonomy system: Player (super) with playerId/playerName,
/// Goalkeeper ⊑ Player adding a `saves` feature; one wrapper per API.
fn taxonomy_mdm() -> Mdm {
    let mut mdm = Mdm::new();
    let player = ex("Player");
    let goalkeeper = ex("Goalkeeper");
    mdm.define_concept(&player).unwrap();
    mdm.define_concept(&goalkeeper).unwrap();
    mdm.define_subconcept(&goalkeeper, &player).unwrap();
    mdm.define_identifier(&player, &ex("playerId")).unwrap();
    mdm.define_feature(&player, &ex("playerName")).unwrap();
    // A subconcept-specific feature.
    mdm.define_feature(&goalkeeper, &ex("saves")).unwrap();

    mdm.add_source("PlayersAPI").unwrap();
    mdm.add_source("GoalkeepersAPI").unwrap();

    let outfield = Wrapper::identity_over_release(
        Signature::new("wp", ["id", "name"]).unwrap(),
        "PlayersAPI",
        Release {
            version: 1,
            format: Format::Json,
            body: r#"[{"id":1,"name":"Messi"},{"id":2,"name":"Lewandowski"}]"#.to_string(),
            notes: String::new(),
        },
    )
    .unwrap();
    mdm.register_wrapper(outfield).unwrap();
    mdm.define_mapping(
        MappingBuilder::for_wrapper("wp")
            .cover_concept(&player)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .same_as("id", &ex("playerId"))
            .same_as("name", &ex("playerName")),
    )
    .unwrap();

    let keepers = Wrapper::identity_over_release(
        Signature::new("wg", ["id", "name", "saves"]).unwrap(),
        "GoalkeepersAPI",
        Release {
            version: 1,
            format: Format::Json,
            body: r#"[{"id":10,"name":"Neuer","saves":120},{"id":11,"name":"Buffon","saves":140}]"#
                .to_string(),
            notes: String::new(),
        },
    )
    .unwrap();
    mdm.register_wrapper(keepers).unwrap();
    // The goalkeeper wrapper covers the *subconcept*, inheriting Player's
    // identifier and name features.
    mdm.define_mapping(
        MappingBuilder::for_wrapper("wg")
            .cover_concept(&goalkeeper)
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .cover_feature(&ex("saves"))
            .same_as("id", &ex("playerId"))
            .same_as("name", &ex("playerName"))
            .same_as("saves", &ex("saves")),
    )
    .unwrap();
    mdm
}

#[test]
fn subconcepts_inherit_the_super_identifier() {
    let mdm = taxonomy_mdm();
    assert_eq!(
        mdm.ontology().identifier_of(&ex("Goalkeeper")),
        Some(ex("playerId"))
    );
    assert_eq!(
        mdm.ontology().subconcepts_of(&ex("Player")),
        vec![ex("Player"), ex("Goalkeeper")]
    );
    let inherited = mdm.ontology().inherited_features_of(&ex("Goalkeeper"));
    assert!(inherited.contains(&ex("playerName")));
    assert!(inherited.contains(&ex("saves")));
}

#[test]
fn super_walk_unions_sub_and_super_wrappers() {
    let mdm = taxonomy_mdm();
    let walk = Walk::new().feature(&ex("Player"), &ex("playerName"));
    let answer = mdm.query(&walk).unwrap();
    assert_eq!(
        answer.rewriting.branch_count(),
        2,
        "expected wp ∪ wg: {}",
        answer.rewriting.algebra()
    );
    let rendered = answer.render();
    for name in ["Messi", "Lewandowski", "Neuer", "Buffon"] {
        assert!(rendered.contains(name), "missing {name}:\n{rendered}");
    }
}

#[test]
fn sub_walk_stays_on_sub_wrappers() {
    let mdm = taxonomy_mdm();
    // Goalkeeper walk requesting the inherited name: only wg answers.
    let walk = Walk::new().feature(&ex("Goalkeeper"), &ex("playerName"));
    let answer = mdm.query(&walk).unwrap();
    assert_eq!(answer.rewriting.branch_count(), 1);
    let rendered = answer.render();
    assert!(rendered.contains("Neuer"));
    assert!(!rendered.contains("Messi"));
}

#[test]
fn subconcept_specific_feature_from_super_walk_prunes_to_sub() {
    let mdm = taxonomy_mdm();
    // `saves` only exists on goalkeepers; a Player walk requesting it can
    // only be answered by the goalkeeper branch.
    let walk = Walk::new()
        .feature(&ex("Player"), &ex("playerName"))
        .feature(&ex("Player"), &ex("saves"));
    let err_or_answer = mdm.query(&walk);
    // `saves` belongs to Goalkeeper; requesting it under Player is invalid
    // (walks request features where they are declared or below).
    assert!(err_or_answer.is_err());
    // Requested under Goalkeeper it answers.
    let walk = Walk::new()
        .feature(&ex("Goalkeeper"), &ex("playerName"))
        .feature(&ex("Goalkeeper"), &ex("saves"));
    let answer = mdm.query(&walk).unwrap();
    assert_eq!(answer.table.len(), 2);
}

#[test]
fn mixed_covers_do_not_join_across_taxonomy_branches() {
    let mdm = taxonomy_mdm();
    let walk = Walk::new().feature(&ex("Player"), &ex("playerName"));
    let rewriting = mdm.rewrite(&walk).unwrap();
    // No branch joins wp with wg (that would intersect disjoint instance
    // sets); each branch is a single wrapper.
    for cq in &rewriting.queries {
        assert_eq!(cq.atoms.len(), 1, "unexpected join in {cq:?}");
    }
}

#[test]
fn contour_spanning_taxonomy_levels_is_connected() {
    // A full-dump wrapper covering Player AND Goalkeeper (no relation edge
    // between them exists — the taxonomy edge is the connection).
    let mut mdm = taxonomy_mdm();
    let dump = Wrapper::identity_over_release(
        Signature::new("wd", ["id", "name", "saves"]).unwrap(),
        "GoalkeepersAPI",
        Release {
            version: 2,
            format: Format::Json,
            body: r#"[{"id":20,"name":"Casillas","saves":90}]"#.to_string(),
            notes: String::new(),
        },
    )
    .unwrap();
    mdm.register_wrapper(dump).unwrap();
    mdm.define_mapping(
        MappingBuilder::for_wrapper("wd")
            .cover_concept(&ex("Player"))
            .cover_concept(&ex("Goalkeeper"))
            .cover_feature(&ex("playerId"))
            .cover_feature(&ex("playerName"))
            .cover_feature(&ex("saves"))
            .same_as("id", &ex("playerId"))
            .same_as("name", &ex("playerName"))
            .same_as("saves", &ex("saves")),
    )
    .expect("taxonomy edge connects the contour");
}

#[test]
fn taxonomy_survives_snapshot_restore() {
    let mdm = taxonomy_mdm();
    let restored = Mdm::restore_metadata(&mdm.snapshot()).unwrap();
    assert_eq!(restored.ontology().subconcepts_of(&ex("Player")).len(), 2);
    let walk = Walk::new().feature(&ex("Player"), &ex("playerName"));
    assert_eq!(restored.rewrite(&walk).unwrap().branch_count(), 2);
}

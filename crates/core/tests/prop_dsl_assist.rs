//! Property tests for the walk notation and the assistance engine.

use proptest::prelude::*;

use mdm_core::synthetic::{self, mdm_from_synthetic};
use mdm_core::walk_dsl::{parse_walk, walk_to_text};
use mdm_core::Walk;
use mdm_wrappers::workload::{build, WorkloadConfig};

/// Random walks over a synthetic chain ontology.
fn arb_walk(concepts: usize, features: usize) -> impl Strategy<Value = Walk> {
    let concept_feature_picks = proptest::collection::vec((0..concepts, 0..features), 1..6);
    let edge_picks = proptest::collection::vec(0..concepts.saturating_sub(1).max(1), 0..4);
    (concept_feature_picks, edge_picks).prop_map(move |(picks, edges)| {
        let mut walk = Walk::new();
        for (c, f) in picks {
            walk = walk.feature(
                &synthetic::concept_iri(c),
                &synthetic::feature_iri(c, &format!("c{c}_f{f}")),
            );
        }
        if concepts > 1 {
            for e in edges {
                walk = walk.relation(
                    &synthetic::concept_iri(e),
                    &synthetic::relation_iri(e),
                    &synthetic::concept_iri(e + 1),
                );
            }
        }
        walk
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// parse(print(walk)) == walk for arbitrary walks.
    #[test]
    fn walk_notation_round_trips(walk in arb_walk(3, 3)) {
        let eco = build(&WorkloadConfig {
            concepts: 3,
            features_per_concept: 3,
            versions_per_source: 1,
            rows_per_wrapper: 1,
            seed: 1,
        });
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let text = walk_to_text(&walk, mdm.ontology());
        let reparsed = parse_walk(&text, mdm.ontology()).unwrap();
        prop_assert_eq!(reparsed, walk);
    }

    /// Suggestions always reference attributes of the wrapper and features
    /// of the global graph; the drafted builder never panics.
    #[test]
    fn assist_suggestions_are_well_formed(seed in 0u64..200) {
        let eco = build(&WorkloadConfig {
            concepts: 2,
            features_per_concept: 3,
            versions_per_source: 2,
            rows_per_wrapper: 1,
            seed,
        });
        let mdm = mdm_from_synthetic(&eco).unwrap();
        for wrapper in mdm.ontology().wrappers() {
            let name = wrapper.local_name();
            let draft = mdm_core::assist::suggest_mapping(mdm.ontology(), name).unwrap();
            let attribute_names: Vec<String> = mdm
                .ontology()
                .attributes_of(&wrapper)
                .iter()
                .map(|a| mdm_core::BdiOntology::attribute_name(a).to_string())
                .collect();
            for s in draft.accepted.iter().chain(&draft.alternatives) {
                prop_assert!(attribute_names.contains(&s.attribute));
                prop_assert!(
                    mdm.ontology().concept_of_feature(&s.feature).is_some(),
                    "suggested feature {} has no owner",
                    s.feature
                );
            }
            // Building a draft never panics regardless of applicability.
            let _ = draft.to_builder(mdm.ontology());
        }
    }
}

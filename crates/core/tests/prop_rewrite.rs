//! Property tests for the rewriting algorithm over randomized synthetic
//! ecosystems: structural invariants of the UCQ and behavioural invariants
//! under schema evolution.

use proptest::prelude::*;

use mdm_core::synthetic::{chain_walk, mdm_from_synthetic};
use mdm_wrappers::workload::{build, evolve_all, WorkloadConfig};

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (1usize..4, 1usize..4, 1usize..3, 5usize..30, 0u64..1000).prop_map(
        |(concepts, features, versions, rows, seed)| WorkloadConfig {
            concepts,
            features_per_concept: features,
            versions_per_source: versions,
            rows_per_wrapper: rows,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of every rewriting:
    /// * every union branch projects exactly the walk's features, in order;
    /// * every join condition touches an identifier or foreign-key column
    ///   (the only joins the BDI ontology permits);
    /// * atoms are distinct within a branch.
    #[test]
    fn rewriting_invariants(config in arb_config()) {
        let eco = build(&config);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let walk = chain_walk(&eco, config.concepts);
        let rewriting = match mdm.rewrite(&walk) {
            Ok(r) => r,
            Err(e) => {
                // Only the explicit enumeration guard may fire.
                prop_assert!(
                    e.message().contains("union branches"),
                    "unexpected error: {e}"
                );
                return Ok(());
            }
        };
        let expected_width = walk.all_features().len();
        for cq in &rewriting.queries {
            prop_assert_eq!(cq.projections.len(), expected_width);
            // Projections are in walk order: feature IRIs must match.
            for ((feature, _), expected) in cq.projections.iter().zip(walk.all_features()) {
                prop_assert_eq!(feature, &expected);
            }
            let mut seen = std::collections::BTreeSet::new();
            for atom in &cq.atoms {
                prop_assert!(seen.insert(atom.clone()), "duplicate atom {atom}");
            }
            for ((_, ca), (_, cb)) in &cq.joins {
                for column in [ca, cb] {
                    prop_assert!(
                        column == "id" || column.ends_with("_next"),
                        "join on non-identifier column '{column}'"
                    );
                }
            }
        }
    }

    /// Rewriting is deterministic: same metadata, same plan.
    #[test]
    fn rewriting_is_deterministic(config in arb_config()) {
        let walk_a = {
            let eco = build(&config);
            let mdm = mdm_from_synthetic(&eco).unwrap();
            mdm.rewrite(&chain_walk(&eco, config.concepts))
                .map(|r| r.algebra())
        };
        let walk_b = {
            let eco = build(&config);
            let mdm = mdm_from_synthetic(&eco).unwrap();
            mdm.rewrite(&chain_walk(&eco, config.concepts))
                .map(|r| r.algebra())
        };
        match (walk_a, walk_b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    /// Adding wrapper versions never removes result tuples (monotonicity of
    /// LAV certain answers under new sources).
    #[test]
    fn results_monotonic_under_releases(
        config in arb_config(),
        evolution_seed in 0u64..1000,
    ) {
        let mut eco = build(&config);
        let walk_span = config.concepts.min(2);
        let before = {
            let mdm = mdm_from_synthetic(&eco).unwrap();
            match mdm.query(&chain_walk(&eco, walk_span)) {
                Ok(answer) => answer.table.rows().to_vec(),
                Err(_) => return Ok(()),
            }
        };
        evolve_all(&mut eco, 1, evolution_seed);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let after = match mdm.query(&chain_walk(&eco, walk_span)) {
            Ok(answer) => answer.table.rows().to_vec(),
            Err(e) => {
                prop_assert!(e.message().contains("union branches"), "{e}");
                return Ok(());
            }
        };
        for row in &before {
            prop_assert!(after.contains(row), "lost row {row:?} after release");
        }
    }

    /// Metadata snapshots round-trip for arbitrary synthetic ecosystems.
    #[test]
    fn snapshot_round_trip(config in arb_config()) {
        let eco = build(&config);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let restored = mdm_core::Mdm::restore_metadata(&mdm.snapshot()).unwrap();
        prop_assert_eq!(
            restored.ontology().concepts(),
            mdm.ontology().concepts()
        );
        prop_assert_eq!(
            restored.ontology().wrappers().len(),
            mdm.ontology().wrappers().len()
        );
        let walk = chain_walk(&eco, config.concepts);
        let a = mdm.rewrite(&walk).map(|r| r.algebra());
        let b = restored.rewrite(&walk).map(|r| r.algebra());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "divergent outcomes: {x:?} vs {y:?}"),
        }
    }

    /// The GAV baseline never returns more rows than LAV, and its plan is
    /// always a single branch.
    #[test]
    fn gav_is_single_branch_and_subset(config in arb_config()) {
        let eco = build(&config);
        let mdm = mdm_from_synthetic(&eco).unwrap();
        let walk = chain_walk(&eco, config.concepts.min(2));
        let lav = match mdm.query(&walk) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let gav = mdm.derive_gav().unwrap();
        let Ok((_, plan, _)) = gav.rewrite(mdm.ontology(), &walk) else {
            return Ok(());
        };
        prop_assert_eq!(plan.union_width(), 1);
        let table = match mdm_relational::Executor::new(mdm.catalog()).run(&plan) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        prop_assert!(table.len() <= lav.table.len());
        for row in table.rows() {
            prop_assert!(
                lav.table.rows().contains(row),
                "GAV row {row:?} missing from LAV answer"
            );
        }
    }
}

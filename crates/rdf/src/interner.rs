//! Term interning.
//!
//! A [`Graph`](crate::Graph) never stores full [`Term`]s in its indexes;
//! it stores 4-byte [`TermId`]s handed out by an [`Interner`]. This follows
//! the standard database-engine idiom (cf. the Rust Performance Book's advice
//! on interning hot keys): triples become three machine words, index
//! comparisons become integer comparisons, and the term payloads are stored
//! exactly once.

use std::collections::HashMap;

use crate::term::Term;

/// A dense identifier for an interned [`Term`], valid only within the
/// [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// Smallest possible id; used as a range-scan sentinel by the indexes.
    pub(crate) const MIN: TermId = TermId(u32::MIN);
    /// Largest possible id; used as a range-scan sentinel by the indexes.
    pub(crate) const MAX: TermId = TermId(u32::MAX);

    /// The raw index value. Exposed for compact serialisation in tests.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional map between [`Term`]s and dense [`TermId`]s.
#[derive(Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the id for `term`, interning it on first sight.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.terms.len()).expect("interner capacity exceeded (2^32 terms)"),
        );
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Returns the id for `term` if it was interned before, without
    /// interning. Pattern matching uses this so that probing for a term the
    /// graph has never seen costs one hash lookup and no allocation.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics when `id` did not originate from this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let t = Term::iri("http://e.x/a");
        let id1 = interner.intern(&t);
        let id2 = interner.intern(&t);
        assert_eq!(id1, id2);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut interner = Interner::new();
        let a = interner.intern(&Term::iri("http://e.x/a"));
        let b = interner.intern(&Term::iri("http://e.x/b"));
        assert_ne!(a, b);
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = Interner::new();
        assert_eq!(interner.get(&Term::string("x")), None);
        assert!(interner.is_empty());
        let id = interner.intern(&Term::string("x"));
        assert_eq!(interner.get(&Term::string("x")), Some(id));
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let original = Term::integer(7);
        let id = interner.intern(&original);
        assert_eq!(interner.resolve(id), &original);
    }

    #[test]
    fn literal_and_iri_with_same_text_are_distinct() {
        let mut interner = Interner::new();
        let a = interner.intern(&Term::iri("x"));
        let b = interner.intern(&Term::string("x"));
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }
}

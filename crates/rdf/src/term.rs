//! RDF terms: IRIs, blank nodes, literals, and triples.
//!
//! Terms are immutable and cheaply cloneable (`Arc<str>` payloads). A total
//! order is defined over terms (IRIs < blanks < literals, then lexicographic)
//! so that graph renderings and query results are deterministic.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An IRI (Internationalized Resource Identifier).
///
/// MDM uses IRIs to denote concepts, features, data sources, wrappers and
/// attributes; named-graph identifiers (one per LAV mapping) are also IRIs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from any string-like value.
    ///
    /// No validation beyond non-emptiness is performed: the BDI ontology
    /// mints IRIs from user-supplied concept and wrapper names, and those are
    /// sanitised at the `mdm-core` layer where the naming policy lives.
    pub fn new(value: impl Into<Arc<str>>) -> Self {
        let value = value.into();
        debug_assert!(!value.is_empty(), "IRI must not be empty");
        Iri(value)
    }

    /// The full textual form of the IRI.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the *local name*: the suffix after the last `#` or `/`.
    ///
    /// Used by renderers to label nodes the way the paper's figures do
    /// (e.g. `http://schema.org/SportsTeam` renders as `SportsTeam`).
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) if idx + 1 < s.len() => &s[idx + 1..],
            _ => s,
        }
    }

    /// Returns the namespace part: everything up to and including the last
    /// `#` or `/`, or the whole IRI when it has no separator.
    pub fn namespace(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) if idx + 1 < s.len() => &s[..=idx],
            _ => s,
        }
    }

    /// Wraps this IRI into a [`Term`].
    pub fn term(&self) -> Term {
        Term::Iri(self.clone())
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Iri {
    fn from(value: &str) -> Self {
        Iri::new(value)
    }
}

impl From<String> for Iri {
    fn from(value: String) -> Self {
        Iri::new(value)
    }
}

impl Borrow<str> for Iri {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

/// A blank node, identified by a label unique within its graph.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label (without the `_:` prefix).
    pub fn new(label: impl Into<Arc<str>>) -> Self {
        BlankNode(label.into())
    }

    /// The node's label, without the `_:` prefix.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// Well-known XSD datatype IRIs used by [`Literal`] constructors.
pub mod xsd {
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// An RDF literal: a lexical form, a datatype IRI, and an optional language
/// tag (in which case the datatype is `rdf:langString`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    lexical: Arc<str>,
    datatype: Iri,
    language: Option<Arc<str>>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(value: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: value.into(),
            datatype: Iri::new(xsd::STRING),
            language: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal {
            lexical: value.to_string().into(),
            datatype: Iri::new(xsd::INTEGER),
            language: None,
        }
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal {
            lexical: format_double(value).into(),
            datatype: Iri::new(xsd::DOUBLE),
            language: None,
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal {
            lexical: if value { "true".into() } else { "false".into() },
            datatype: Iri::new(xsd::BOOLEAN),
            language: None,
        }
    }

    /// A literal with an explicit datatype.
    pub fn typed(value: impl Into<Arc<str>>, datatype: Iri) -> Self {
        Literal {
            lexical: value.into(),
            datatype,
            language: None,
        }
    }

    /// A language-tagged string (`rdf:langString`).
    pub fn lang_string(value: impl Into<Arc<str>>, lang: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: value.into(),
            datatype: Iri::new(xsd::LANG_STRING),
            language: Some(lang.into()),
        }
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI.
    pub fn datatype(&self) -> &Iri {
        &self.datatype
    }

    /// The language tag, if any.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// Interprets the literal as an `i64` when its lexical form parses.
    pub fn as_i64(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }

    /// Interprets the literal as an `f64` when its lexical form parses.
    pub fn as_f64(&self) -> Option<f64> {
        self.lexical.parse().ok()
    }

    /// Interprets the literal as a boolean (`true`/`false`/`1`/`0`).
    pub fn as_bool(&self) -> Option<bool> {
        match self.lexical.as_ref() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }
}

/// Formats a double so integral values keep a trailing `.0` (round-trippable
/// as `xsd:double`) and all other values use the shortest exact form.
fn format_double(value: f64) -> String {
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", self.lexical)?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if self.datatype.as_str() != xsd::STRING {
            write!(f, "^^{:?}", self.datatype)?;
        }
        Ok(())
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical)
    }
}

impl PartialOrd for Literal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Literal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lexical
            .cmp(&other.lexical)
            .then_with(|| self.datatype.cmp(&other.datatype))
            .then_with(|| self.language.cmp(&other.language))
    }
}

/// An RDF term: the union of IRIs, blank nodes and literals.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    /// Shorthand for `Term::Iri(Iri::new(..))`.
    pub fn iri(value: impl Into<Arc<str>>) -> Self {
        Term::Iri(Iri::new(value))
    }

    /// Shorthand for a blank node term.
    pub fn blank(label: impl Into<Arc<str>>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// Shorthand for an `xsd:string` literal term.
    pub fn string(value: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::string(value))
    }

    /// Shorthand for an `xsd:integer` literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// Shorthand for an `xsd:double` literal term.
    pub fn double(value: f64) -> Self {
        Term::Literal(Literal::double(value))
    }

    /// Returns the IRI when this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// Returns the literal when this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// Returns the blank node when this term is one.
    pub fn as_blank(&self) -> Option<&BlankNode> {
        match self {
            Term::Blank(b) => Some(b),
            _ => None,
        }
    }

    /// True when the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True when the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The local name for IRIs, the label for blanks, the lexical form for
    /// literals. Used for figure-style compact rendering.
    pub fn short(&self) -> &str {
        match self {
            Term::Iri(iri) => iri.local_name(),
            Term::Blank(b) => b.label(),
            Term::Literal(lit) => lit.lexical(),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "{iri:?}"),
            Term::Blank(b) => write!(f, "{b:?}"),
            Term::Literal(lit) => write!(f, "{lit:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "{iri}"),
            Term::Blank(b) => write!(f, "{b}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

impl From<BlankNode> for Term {
    fn from(value: BlankNode) -> Self {
        Term::Blank(value)
    }
}

/// A subject–predicate–object triple of owned terms.
pub type Triple = (Term, Term, Term);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_after_hash() {
        let iri = Iri::new("http://www.w3.org/2002/07/owl#sameAs");
        assert_eq!(iri.local_name(), "sameAs");
        assert_eq!(iri.namespace(), "http://www.w3.org/2002/07/owl#");
    }

    #[test]
    fn iri_local_name_after_slash() {
        let iri = Iri::new("http://schema.org/SportsTeam");
        assert_eq!(iri.local_name(), "SportsTeam");
        assert_eq!(iri.namespace(), "http://schema.org/");
    }

    #[test]
    fn iri_local_name_trailing_slash_is_whole_iri() {
        let iri = Iri::new("http://schema.org/");
        assert_eq!(iri.local_name(), "http://schema.org/");
    }

    #[test]
    fn iri_without_separator() {
        let iri = Iri::new("urn:x");
        assert_eq!(iri.local_name(), "urn:x");
        assert_eq!(iri.namespace(), "urn:x");
    }

    #[test]
    fn literal_typed_accessors() {
        assert_eq!(Literal::integer(42).as_i64(), Some(42));
        assert_eq!(Literal::double(170.18).as_f64(), Some(170.18));
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::string("left").as_i64(), None);
    }

    #[test]
    fn double_formatting_keeps_fraction_marker() {
        assert_eq!(Literal::double(25.0).lexical(), "25.0");
        assert_eq!(Literal::double(170.18).lexical(), "170.18");
    }

    #[test]
    fn lang_string_has_lang_datatype() {
        let lit = Literal::lang_string("Barcelone", "fr");
        assert_eq!(lit.language(), Some("fr"));
        assert_eq!(lit.datatype().as_str(), xsd::LANG_STRING);
    }

    #[test]
    fn term_ordering_groups_kinds() {
        let iri = Term::iri("http://a.example/x");
        let blank = Term::blank("b0");
        let lit = Term::string("z");
        assert!(iri < blank);
        assert!(blank < lit);
    }

    #[test]
    fn term_short_forms() {
        assert_eq!(Term::iri("http://schema.org/name").short(), "name");
        assert_eq!(Term::blank("n1").short(), "n1");
        assert_eq!(Term::string("Messi").short(), "Messi");
    }

    #[test]
    fn literal_equality_distinguishes_datatype() {
        let as_string = Literal::string("42");
        let as_int = Literal::integer(42);
        assert_ne!(
            Term::Literal(as_string.clone()),
            Term::Literal(as_int.clone())
        );
        assert_eq!(as_string.lexical(), as_int.lexical());
    }

    #[test]
    fn debug_forms_match_turtle_conventions() {
        assert_eq!(format!("{:?}", Term::iri("http://e.x/p")), "<http://e.x/p>");
        assert_eq!(format!("{:?}", Term::blank("x")), "_:x");
        assert_eq!(format!("{:?}", Term::string("hi")), "\"hi\"");
        assert_eq!(
            format!("{:?}", Term::integer(5)),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }
}

//! # mdm-rdf
//!
//! An in-memory RDF substrate purpose-built for the MDM metadata management
//! system (Nadal et al., *MDM: Governing Evolution in Big Data Ecosystems*,
//! EDBT 2018).
//!
//! The paper's reference implementation stores its two-level *BDI ontology*
//! (a **global graph** of concepts and features, and a **source graph** of
//! data sources, wrappers and attributes) in Apache Jena / Jena TDB, and
//! encodes LAV mappings as RDF *named graphs*. This crate provides the same
//! capabilities natively in Rust:
//!
//! * [`Term`], [`Iri`], [`Literal`], [`BlankNode`] — RDF terms with cheap
//!   cloning and total ordering.
//! * [`Graph`] — an indexed triple set with pattern matching over all eight
//!   (s, p, o) binding shapes, backed by a term interner so triples are three
//!   machine words.
//! * [`Dataset`] — a collection of named graphs plus a default graph, the
//!   structure MDM uses to keep one named graph per LAV mapping.
//! * [`turtle`] — a reader and writer for the Turtle subset MDM emits, plus
//!   TriG-style named-graph blocks for serialising datasets.
//! * [`vocab`] — well-known vocabularies (`rdf:`, `rdfs:`, `owl:`,
//!   `schema.org`) and the BDI ontology namespaces (`G:` global, `S:`
//!   source).
//!
//! The store is deliberately small and deterministic: iteration order is the
//! interner's insertion order filtered through sorted indexes, which keeps
//! renderings of the global/source graphs (Figures 5–7 of the paper) stable
//! across runs.
//!
//! ## Example
//!
//! ```
//! use mdm_rdf::{Graph, Term, vocab};
//!
//! let mut g = Graph::new();
//! let player = Term::iri("http://example.org/Player");
//! g.insert((player.clone(), vocab::rdf::TYPE.term(), vocab::bdi::CONCEPT.term()));
//! assert_eq!(g.len(), 1);
//! assert!(g.contains(&player, &vocab::rdf::TYPE.term(), &vocab::bdi::CONCEPT.term()));
//! ```

pub mod dataset;
pub mod graph;
pub mod interner;
pub mod namespace;
pub mod pattern;
pub mod term;
pub mod turtle;
pub mod vocab;

pub use dataset::{Dataset, GraphName};
pub use graph::Graph;
pub use interner::{Interner, TermId};
pub use namespace::{Namespace, PrefixMap};
pub use pattern::TriplePattern;
pub use term::{BlankNode, Iri, Literal, Term, Triple};

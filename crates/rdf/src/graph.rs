//! The indexed triple store.
//!
//! [`Graph`] keeps three `BTreeSet` permutation indexes (SPO, POS, OSP) over
//! interned term ids, so every triple-pattern shape — `(s, ?, ?)`,
//! `(?, p, ?)`, `(?, p, o)`, … — is answered with a single sorted-range scan.
//! This mirrors what Jena TDB provided for the paper's implementation, scaled
//! to the metadata-sized graphs MDM manages (the global and source graphs are
//! thousands of triples, not billions).

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Bound;

use crate::interner::{Interner, TermId};
use crate::term::{Term, Triple};

/// Internal key in a permutation index: a triple reordered to the index's
/// component order.
type Key = (TermId, TermId, TermId);

/// An RDF graph: a set of triples with pattern-matching indexes.
#[derive(Default, Clone)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Inserts a triple; returns `true` when it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let (s, p, o) = triple;
        let s = self.interner.intern(&s);
        let p = self.interner.intern(&p);
        let o = self.interner.intern(&o);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Removes a triple; returns `true` when it was present.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(s),
            self.interner.get(p),
            self.interner.get(o),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// True when the triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (
            self.interner.get(s),
            self.interner.get(p),
            self.interner.get(o),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Iterates all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            (
                self.interner.resolve(s).clone(),
                self.interner.resolve(p).clone(),
                self.interner.resolve(o).clone(),
            )
        })
    }

    /// Matches a triple pattern where `None` components are wildcards.
    ///
    /// The best permutation index for the bound components is chosen, so a
    /// fully-bound probe is a set lookup and a one-bound probe is a range
    /// scan. Results come back in a deterministic (index) order.
    pub fn matching(&self, s: Option<&Term>, p: Option<&Term>, o: Option<&Term>) -> Vec<Triple> {
        // A bound term the interner has never seen cannot match anything.
        let lookup = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(t) => self.interner.get(t).map(Some).ok_or(()),
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (lookup(s), lookup(p), lookup(o)) else {
            return Vec::new();
        };

        let out: Vec<Key> = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => range2(&self.spo, s, p)
                .map(|&(s, p, o)| (s, p, o))
                .collect(),
            (Some(s), None, None) => range1(&self.spo, s).map(|&(s, p, o)| (s, p, o)).collect(),
            (None, Some(p), Some(o)) => range2(&self.pos, p, o)
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => range1(&self.pos, p).map(|&(p, o, s)| (s, p, o)).collect(),
            (Some(s), None, Some(o)) => range2(&self.osp, o, s)
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => range1(&self.osp, o).map(|&(o, s, p)| (s, p, o)).collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        };
        out.into_iter()
            .map(|(s, p, o)| {
                (
                    self.interner.resolve(s).clone(),
                    self.interner.resolve(p).clone(),
                    self.interner.resolve(o).clone(),
                )
            })
            .collect()
    }

    /// The objects of all `(s, p, ·)` triples, in term order (deterministic
    /// across graphs built in different insertion orders — e.g. one restored
    /// from a snapshot).
    pub fn objects(&self, s: &Term, p: &Term) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .matching(Some(s), Some(p), None)
            .into_iter()
            .map(|(_, _, o)| o)
            .collect();
        out.sort();
        out
    }

    /// The single object of `(s, p, ·)` when exactly one exists.
    pub fn object(&self, s: &Term, p: &Term) -> Option<Term> {
        let mut objects = self.objects(s, p);
        if objects.len() == 1 {
            objects.pop()
        } else {
            None
        }
    }

    /// The subjects of all `(·, p, o)` triples, in term order.
    pub fn subjects(&self, p: &Term, o: &Term) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .matching(None, Some(p), Some(o))
            .into_iter()
            .map(|(s, _, _)| s)
            .collect();
        out.sort();
        out
    }

    /// All distinct subjects appearing in the graph, in term order.
    pub fn all_subjects(&self) -> Vec<Term> {
        let mut seen = BTreeSet::new();
        for &(s, _, _) in &self.spo {
            seen.insert(s);
        }
        let mut out: Vec<Term> = seen
            .into_iter()
            .map(|id| self.interner.resolve(id).clone())
            .collect();
        out.sort();
        out
    }

    /// Inserts every triple of `other` into `self`.
    pub fn extend_from(&mut self, other: &Graph) {
        for triple in other.iter() {
            self.insert(triple);
        }
    }

    /// Removes all triples whose subject is `s`; returns how many were removed.
    pub fn remove_subject(&mut self, s: &Term) -> usize {
        let doomed = self.matching(Some(s), None, None);
        let count = doomed.len();
        for (s, p, o) in &doomed {
            self.remove(s, p, o);
        }
        count
    }
}

/// Range scan over a permutation index with the first component bound.
fn range1(index: &BTreeSet<Key>, a: TermId) -> impl Iterator<Item = &Key> {
    index.range((
        Bound::Included((a, TermId::MIN, TermId::MIN)),
        Bound::Included((a, TermId::MAX, TermId::MAX)),
    ))
}

/// Range scan over a permutation index with the first two components bound.
fn range2(index: &BTreeSet<Key>, a: TermId, b: TermId) -> impl Iterator<Item = &Key> {
    index.range((
        Bound::Included((a, b, TermId::MIN)),
        Bound::Included((a, b, TermId::MAX)),
    ))
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph({} triples)", self.len())?;
        for (s, p, o) in self.iter() {
            writeln!(f, "  {s:?} {p:?} {o:?} .")?;
        }
        Ok(())
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        (Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn football_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(t("ex:Player", "rdf:type", "G:Concept"));
        g.insert(t("sc:SportsTeam", "rdf:type", "G:Concept"));
        g.insert(t("ex:Player", "G:hasFeature", "ex:playerName"));
        g.insert(t("ex:Player", "G:hasFeature", "ex:height"));
        g.insert(t("sc:SportsTeam", "G:hasFeature", "ex:teamName"));
        g.insert((
            Term::iri("ex:playerName"),
            Term::iri("rdfs:label"),
            Term::string("name"),
        ));
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("a", "b", "c")));
        assert!(!g.insert(t("a", "b", "c")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_unknown_terms_is_noop() {
        let mut g = football_graph();
        let before = g.len();
        assert!(!g.remove(
            &Term::iri("ex:Nowhere"),
            &Term::iri("rdf:type"),
            &Term::iri("G:Concept")
        ));
        assert_eq!(g.len(), before);
    }

    #[test]
    fn remove_keeps_indexes_consistent() {
        let mut g = football_graph();
        assert!(g.remove(
            &Term::iri("ex:Player"),
            &Term::iri("G:hasFeature"),
            &Term::iri("ex:height")
        ));
        assert_eq!(
            g.matching(
                Some(&Term::iri("ex:Player")),
                Some(&Term::iri("G:hasFeature")),
                None
            )
            .len(),
            1
        );
        assert_eq!(
            g.matching(None, None, Some(&Term::iri("ex:height"))).len(),
            0
        );
    }

    #[test]
    fn matching_all_eight_shapes() {
        let g = football_graph();
        let s = Term::iri("ex:Player");
        let p = Term::iri("G:hasFeature");
        let o = Term::iri("ex:playerName");
        assert_eq!(g.matching(Some(&s), Some(&p), Some(&o)).len(), 1);
        assert_eq!(g.matching(Some(&s), Some(&p), None).len(), 2);
        assert_eq!(g.matching(Some(&s), None, Some(&o)).len(), 1);
        assert_eq!(g.matching(None, Some(&p), Some(&o)).len(), 1);
        assert_eq!(g.matching(Some(&s), None, None).len(), 3);
        assert_eq!(g.matching(None, Some(&p), None).len(), 3);
        assert_eq!(g.matching(None, None, Some(&o)).len(), 1);
        assert_eq!(g.matching(None, None, None).len(), g.len());
    }

    #[test]
    fn matching_unknown_term_returns_empty() {
        let g = football_graph();
        assert!(g
            .matching(Some(&Term::iri("ex:Unknown")), None, None)
            .is_empty());
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = football_graph();
        let feats = g.objects(&Term::iri("ex:Player"), &Term::iri("G:hasFeature"));
        assert_eq!(feats.len(), 2);
        let concepts = g.subjects(&Term::iri("rdf:type"), &Term::iri("G:Concept"));
        assert_eq!(concepts.len(), 2);
    }

    #[test]
    fn object_requires_uniqueness() {
        let g = football_graph();
        // Two features -> ambiguous -> None.
        assert_eq!(
            g.object(&Term::iri("ex:Player"), &Term::iri("G:hasFeature")),
            None
        );
        assert_eq!(
            g.object(&Term::iri("ex:playerName"), &Term::iri("rdfs:label")),
            Some(Term::string("name"))
        );
    }

    #[test]
    fn remove_subject_removes_all_outgoing() {
        let mut g = football_graph();
        let removed = g.remove_subject(&Term::iri("ex:Player"));
        assert_eq!(removed, 3);
        assert!(g
            .matching(Some(&Term::iri("ex:Player")), None, None)
            .is_empty());
    }

    #[test]
    fn extend_from_unions_graphs() {
        let mut a = Graph::new();
        a.insert(t("x", "p", "y"));
        let mut b = Graph::new();
        b.insert(t("x", "p", "y"));
        b.insert(t("y", "p", "z"));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration_is_deterministic() {
        let g1 = football_graph();
        let g2 = football_graph();
        let v1: Vec<_> = g1.iter().collect();
        let v2: Vec<_> = g2.iter().collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn literals_participate_in_matching() {
        let g = football_graph();
        let hits = g.matching(None, None, Some(&Term::string("name")));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let g: Graph = vec![t("a", "b", "c"), t("a", "b", "d")]
            .into_iter()
            .collect();
        assert_eq!(g.len(), 2);
    }
}

//! Well-known vocabularies, including the BDI-ontology namespaces.
//!
//! The BDI (Big Data Integration) ontology of the paper uses two levels:
//!
//! * the **global graph** (`G:` prefix) — `G:Concept`, `G:Feature`, and the
//!   `G:hasFeature` property relating them;
//! * the **source graph** (`S:` prefix) — `S:DataSource`, `S:Wrapper`,
//!   `S:Attribute`, with `S:hasWrapper` / `S:hasAttribute` structuring them.
//!
//! LAV mappings are expressed with RDF *named graphs* (one per wrapper) plus
//! `owl:sameAs` links from source attributes to global features, and joins
//! are restricted to features that are `rdfs:subClassOf sc:identifier`
//! (paper §2.3).

use crate::term::{Iri, Term};

/// A compile-time IRI constant that can cheaply become an [`Iri`] or [`Term`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vocab(pub &'static str);

impl Vocab {
    /// The full IRI string.
    pub const fn as_str(self) -> &'static str {
        self.0
    }

    /// Materialises the constant as an [`Iri`].
    pub fn iri(self) -> Iri {
        Iri::new(self.0)
    }

    /// Materialises the constant as a [`Term`].
    pub fn term(self) -> Term {
        Term::iri(self.0)
    }
}

impl PartialEq<Iri> for Vocab {
    fn eq(&self, other: &Iri) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Term> for Vocab {
    fn eq(&self, other: &Term) -> bool {
        matches!(other, Term::Iri(iri) if iri.as_str() == self.0)
    }
}

/// `rdf:` — the RDF core vocabulary.
pub mod rdf {
    use super::Vocab;
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: Vocab = Vocab("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

/// `rdfs:` — RDF Schema.
pub mod rdfs {
    use super::Vocab;
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const SUB_CLASS_OF: Vocab = Vocab("http://www.w3.org/2000/01/rdf-schema#subClassOf");
    pub const LABEL: Vocab = Vocab("http://www.w3.org/2000/01/rdf-schema#label");
    pub const DOMAIN: Vocab = Vocab("http://www.w3.org/2000/01/rdf-schema#domain");
    pub const RANGE: Vocab = Vocab("http://www.w3.org/2000/01/rdf-schema#range");
}

/// `owl:` — the fragment of OWL MDM uses (`owl:sameAs` for attribute →
/// feature mapping links).
pub mod owl {
    use super::Vocab;
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const SAME_AS: Vocab = Vocab("http://www.w3.org/2002/07/owl#sameAs");
}

/// `sc:` — schema.org, reused by the paper's use case (`sc:SportsTeam`) and
/// structurally significant through `sc:identifier`: only features that are
/// `rdfs:subClassOf sc:identifier` may participate in joins.
pub mod schema {
    use super::Vocab;
    pub const NS: &str = "http://schema.org/";
    pub const IDENTIFIER: Vocab = Vocab("http://schema.org/identifier");
    pub const SPORTS_TEAM: Vocab = Vocab("http://schema.org/SportsTeam");
    pub const NAME: Vocab = Vocab("http://schema.org/name");
}

/// `G:` — the global-graph metamodel of the BDI ontology.
pub mod bdi {
    use super::Vocab;
    /// Namespace of global-graph metaconcepts.
    pub const GLOBAL_NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/Global/";
    /// Namespace of source-graph metaconcepts.
    pub const SOURCE_NS: &str = "http://www.essi.upc.edu/~snadal/BDIOntology/Source/";

    /// `G:Concept` — a domain concept grouping features (blue nodes, Fig. 5).
    pub const CONCEPT: Vocab = Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Global/Concept");
    /// `G:Feature` — an analysis feature taking values from sources (yellow
    /// nodes, Fig. 5).
    pub const FEATURE: Vocab = Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Global/Feature");
    /// `G:hasFeature` — relates a concept to each of its features.
    pub const HAS_FEATURE: Vocab =
        Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Global/hasFeature");

    /// `S:DataSource` — a registered source (red nodes, Fig. 6).
    pub const DATA_SOURCE: Vocab =
        Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/DataSource");
    /// `S:Wrapper` — one (versioned) access mechanism for a source (orange
    /// nodes, Fig. 6).
    pub const WRAPPER: Vocab = Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/Wrapper");
    /// `S:Attribute` — one attribute of a wrapper's 1NF signature (blue
    /// nodes, Fig. 6).
    pub const ATTRIBUTE: Vocab =
        Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/Attribute");
    /// `S:hasWrapper` — relates a data source to its wrappers.
    pub const HAS_WRAPPER: Vocab =
        Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/hasWrapper");
    /// `S:hasAttribute` — relates a wrapper to its signature attributes.
    pub const HAS_ATTRIBUTE: Vocab =
        Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/hasAttribute");
    /// `S:version` — the release version a wrapper belongs to.
    pub const VERSION: Vocab = Vocab("http://www.essi.upc.edu/~snadal/BDIOntology/Source/version");
}

/// The prefixes every MDM graph is rendered with, mirroring the paper's
/// figures (`G:`, `S:`, `sc:`, `ex:` plus the W3C standards).
pub const DEFAULT_PREFIXES: &[(&str, &str)] = &[
    ("rdf", rdf::NS),
    ("rdfs", rdfs::NS),
    ("owl", owl::NS),
    ("xsd", "http://www.w3.org/2001/XMLSchema#"),
    ("sc", schema::NS),
    ("G", bdi::GLOBAL_NS),
    ("S", bdi::SOURCE_NS),
    ("ex", "http://www.essi.upc.edu/~snadal/example/"),
];

/// The example namespace used by the motivational use case (`ex:` prefix).
pub const EXAMPLE_NS: &str = "http://www.essi.upc.edu/~snadal/example/";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_constants_materialise() {
        assert_eq!(rdf::TYPE.iri().local_name(), "type");
        assert_eq!(bdi::CONCEPT.iri().local_name(), "Concept");
        assert!(rdf::TYPE.term().is_iri());
    }

    #[test]
    fn vocab_compares_with_iri_and_term() {
        let iri = Iri::new(owl::SAME_AS.as_str());
        assert_eq!(owl::SAME_AS, iri);
        assert_eq!(owl::SAME_AS, Term::Iri(iri));
        assert_ne!(owl::SAME_AS, rdf::TYPE.term());
    }

    #[test]
    fn global_and_source_namespaces_differ() {
        assert_ne!(bdi::GLOBAL_NS, bdi::SOURCE_NS);
        assert!(bdi::CONCEPT.as_str().starts_with(bdi::GLOBAL_NS));
        assert!(bdi::WRAPPER.as_str().starts_with(bdi::SOURCE_NS));
    }

    #[test]
    fn default_prefixes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for (p, _) in DEFAULT_PREFIXES {
            assert!(seen.insert(*p), "duplicate prefix {p}");
        }
    }
}

//! Namespaces and prefix maps.
//!
//! MDM renders every graph with compact prefixed names (`sc:SportsTeam`,
//! `G:Concept`, …), exactly as the paper's figures do. [`Namespace`] mints
//! IRIs under a base, and [`PrefixMap`] maps between full IRIs and
//! `prefix:local` notation for the Turtle reader/writer and the renderers.

use std::collections::BTreeMap;

use crate::term::Iri;

/// A namespace: a base IRI under which local names are minted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Namespace {
    base: Iri,
}

impl Namespace {
    /// Creates a namespace with the given base (should end in `/` or `#`).
    pub fn new(base: impl Into<String>) -> Self {
        Namespace {
            base: Iri::new(base.into()),
        }
    }

    /// The base IRI.
    pub fn base(&self) -> &Iri {
        &self.base
    }

    /// Mints the IRI `base + local`.
    pub fn iri(&self, local: &str) -> Iri {
        Iri::new(format!("{}{}", self.base.as_str(), local))
    }

    /// True when `iri` starts with this namespace's base.
    pub fn contains(&self, iri: &Iri) -> bool {
        iri.as_str().starts_with(self.base.as_str())
    }

    /// Strips the base from `iri`, returning the local part.
    pub fn local<'a>(&self, iri: &'a Iri) -> Option<&'a str> {
        iri.as_str().strip_prefix(self.base.as_str())
    }
}

/// An ordered prefix → namespace map.
///
/// Longest-namespace match wins when shrinking an IRI, so overlapping
/// namespaces (e.g. `http://e.x/` and `http://e.x/sub/`) compact correctly.
#[derive(Clone, Debug, Default)]
pub struct PrefixMap {
    prefixes: BTreeMap<String, String>,
}

impl PrefixMap {
    /// An empty prefix map.
    pub fn new() -> Self {
        PrefixMap::default()
    }

    /// A prefix map preloaded with the vocabularies MDM always uses.
    pub fn with_defaults() -> Self {
        let mut map = PrefixMap::new();
        for &(prefix, ns) in crate::vocab::DEFAULT_PREFIXES {
            map.insert(prefix, ns);
        }
        map
    }

    /// Binds `prefix` to `namespace`, replacing any previous binding.
    pub fn insert(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.prefixes.insert(prefix.into(), namespace.into());
    }

    /// The namespace bound to `prefix`.
    pub fn expand_prefix(&self, prefix: &str) -> Option<&str> {
        self.prefixes.get(prefix).map(String::as_str)
    }

    /// Expands `prefix:local` to a full IRI when the prefix is bound.
    pub fn expand(&self, qname: &str) -> Option<Iri> {
        let (prefix, local) = qname.split_once(':')?;
        let ns = self.prefixes.get(prefix)?;
        Some(Iri::new(format!("{ns}{local}")))
    }

    /// Compacts an IRI to `prefix:local` using the longest matching
    /// namespace; returns `None` when no bound namespace is a prefix of it or
    /// the remainder contains characters that would not survive a round-trip.
    pub fn compact(&self, iri: &Iri) -> Option<String> {
        let s = iri.as_str();
        let mut best: Option<(&str, &str)> = None;
        for (prefix, ns) in &self.prefixes {
            if let Some(local) = s.strip_prefix(ns.as_str()) {
                if best.is_none() || ns.len() > self.prefixes[best.unwrap().0].len() {
                    best = Some((prefix, local));
                }
            }
        }
        let (prefix, local) = best?;
        if local.is_empty() || !local.chars().all(is_pn_local_char) {
            return None;
        }
        Some(format!("{prefix}:{local}"))
    }

    /// Iterates the `(prefix, namespace)` bindings in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes
            .iter()
            .map(|(p, ns)| (p.as_str(), ns.as_str()))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when no prefixes are bound.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// Characters we allow in the local part of a prefixed name. A pragmatic
/// subset of Turtle's PN_LOCAL, wide enough for all names MDM generates.
fn is_pn_local_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_mints_iris() {
        let ex = Namespace::new("http://example.org/");
        assert_eq!(ex.iri("Player").as_str(), "http://example.org/Player");
        assert!(ex.contains(&ex.iri("Player")));
        assert_eq!(ex.local(&ex.iri("Player")), Some("Player"));
    }

    #[test]
    fn namespace_rejects_foreign_iris() {
        let ex = Namespace::new("http://example.org/");
        let foreign = Iri::new("http://schema.org/name");
        assert!(!ex.contains(&foreign));
        assert_eq!(ex.local(&foreign), None);
    }

    #[test]
    fn expand_and_compact_round_trip() {
        let mut map = PrefixMap::new();
        map.insert("sc", "http://schema.org/");
        let iri = map.expand("sc:SportsTeam").unwrap();
        assert_eq!(iri.as_str(), "http://schema.org/SportsTeam");
        assert_eq!(map.compact(&iri), Some("sc:SportsTeam".to_string()));
    }

    #[test]
    fn compact_prefers_longest_namespace() {
        let mut map = PrefixMap::new();
        map.insert("e", "http://e.x/");
        map.insert("es", "http://e.x/sub/");
        let iri = Iri::new("http://e.x/sub/thing");
        assert_eq!(map.compact(&iri), Some("es:thing".to_string()));
    }

    #[test]
    fn compact_refuses_unsafe_local_parts() {
        let mut map = PrefixMap::new();
        map.insert("e", "http://e.x/");
        assert_eq!(map.compact(&Iri::new("http://e.x/a/b")), None);
        assert_eq!(map.compact(&Iri::new("http://e.x/")), None);
    }

    #[test]
    fn expand_unknown_prefix_is_none() {
        let map = PrefixMap::new();
        assert_eq!(map.expand("nope:x"), None);
        assert_eq!(map.expand("noColon"), None);
    }

    #[test]
    fn defaults_include_bdi_vocabularies() {
        let map = PrefixMap::with_defaults();
        assert!(map.expand("G:Concept").is_some());
        assert!(map.expand("S:Wrapper").is_some());
        assert!(map.expand("rdf:type").is_some());
        assert!(map.expand("owl:sameAs").is_some());
        assert!(map.expand("sc:identifier").is_some());
    }
}

//! Datasets: a default graph plus named graphs.
//!
//! The BDI ontology keeps LAV mappings as RDF *named graphs* — each wrapper
//! `w` owns a named graph (identified by `w`'s IRI) containing the subset of
//! the global graph that `w` populates (paper §2.3). [`Dataset`] provides
//! exactly that: named graphs keyed by IRI, a default graph, and union views.

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::Graph;
use crate::term::{Iri, Term, Triple};

/// The name of a graph within a [`Dataset`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GraphName {
    /// The unnamed default graph.
    Default,
    /// A named graph identified by an IRI.
    Named(Iri),
}

impl GraphName {
    /// The IRI of a named graph; `None` for the default graph.
    pub fn iri(&self) -> Option<&Iri> {
        match self {
            GraphName::Default => None,
            GraphName::Named(iri) => Some(iri),
        }
    }
}

impl fmt::Display for GraphName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphName::Default => write!(f, "DEFAULT"),
            GraphName::Named(iri) => write!(f, "{iri}"),
        }
    }
}

impl From<Iri> for GraphName {
    fn from(iri: Iri) -> Self {
        GraphName::Named(iri)
    }
}

/// A quad: a triple plus the graph it belongs to.
pub type Quad = (GraphName, Term, Term, Term);

/// A collection of one default graph and zero or more named graphs.
#[derive(Default, Clone)]
pub struct Dataset {
    default: Graph,
    named: BTreeMap<Iri, Graph>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// The default graph.
    pub fn default_graph(&self) -> &Graph {
        &self.default
    }

    /// Mutable access to the default graph.
    pub fn default_graph_mut(&mut self) -> &mut Graph {
        &mut self.default
    }

    /// The named graph for `name`, if present.
    pub fn named_graph(&self, name: &Iri) -> Option<&Graph> {
        self.named.get(name)
    }

    /// Mutable access to the named graph for `name`, creating it if absent.
    pub fn named_graph_mut(&mut self, name: &Iri) -> &mut Graph {
        self.named.entry(name.clone()).or_default()
    }

    /// Removes a named graph entirely; returns it when it existed.
    pub fn remove_named_graph(&mut self, name: &Iri) -> Option<Graph> {
        self.named.remove(name)
    }

    /// Iterates the names of all named graphs, in IRI order.
    pub fn graph_names(&self) -> impl Iterator<Item = &Iri> {
        self.named.keys()
    }

    /// Number of named graphs.
    pub fn named_graph_count(&self) -> usize {
        self.named.len()
    }

    /// Inserts a triple into the graph designated by `name`.
    pub fn insert(&mut self, name: &GraphName, triple: Triple) -> bool {
        match name {
            GraphName::Default => self.default.insert(triple),
            GraphName::Named(iri) => self.named_graph_mut(iri).insert(triple),
        }
    }

    /// Resolves `name` to its graph (empty graphs for absent names read as
    /// `None`).
    pub fn graph(&self, name: &GraphName) -> Option<&Graph> {
        match name {
            GraphName::Default => Some(&self.default),
            GraphName::Named(iri) => self.named.get(iri),
        }
    }

    /// Iterates every quad in the dataset (default graph first, then named
    /// graphs in IRI order).
    pub fn quads(&self) -> impl Iterator<Item = Quad> + '_ {
        let default = self
            .default
            .iter()
            .map(|(s, p, o)| (GraphName::Default, s, p, o));
        let named = self.named.iter().flat_map(|(name, graph)| {
            graph
                .iter()
                .map(move |(s, p, o)| (GraphName::Named(name.clone()), s, p, o))
        });
        default.chain(named)
    }

    /// Total number of quads across all graphs.
    pub fn quad_count(&self) -> usize {
        self.default.len() + self.named.values().map(Graph::len).sum::<usize>()
    }

    /// A new graph holding the union of the default graph and every named
    /// graph (set semantics).
    pub fn union(&self) -> Graph {
        let mut out = self.default.clone();
        for graph in self.named.values() {
            out.extend_from(graph);
        }
        out
    }

    /// Names of every named graph containing the given triple. This is the
    /// primitive behind "which wrappers populate this global-graph element?"
    pub fn graphs_containing(&self, s: &Term, p: &Term, o: &Term) -> Vec<&Iri> {
        self.named
            .iter()
            .filter(|(_, g)| g.contains(s, p, o))
            .map(|(name, _)| name)
            .collect()
    }

    /// Names of every named graph in which the term occurs as subject or
    /// object of at least one triple.
    pub fn graphs_mentioning(&self, term: &Term) -> Vec<&Iri> {
        self.named
            .iter()
            .filter(|(_, g)| {
                !g.matching(Some(term), None, None).is_empty()
                    || !g.matching(None, None, Some(term)).is_empty()
            })
            .map(|(name, _)| name)
            .collect()
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dataset({} named graphs, {} quads)",
            self.named.len(),
            self.quad_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        (Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn default_and_named_graphs_are_separate() {
        let mut ds = Dataset::new();
        ds.insert(&GraphName::Default, t("a", "p", "b"));
        let w1 = Iri::new("ex:w1");
        ds.insert(&GraphName::Named(w1.clone()), t("a", "p", "c"));
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.named_graph(&w1).unwrap().len(), 1);
        assert_eq!(ds.quad_count(), 2);
    }

    #[test]
    fn named_graph_mut_creates_on_demand() {
        let mut ds = Dataset::new();
        let name = Iri::new("ex:w1");
        assert!(ds.named_graph(&name).is_none());
        ds.named_graph_mut(&name).insert(t("x", "y", "z"));
        assert_eq!(ds.named_graph(&name).unwrap().len(), 1);
    }

    #[test]
    fn union_merges_all_graphs() {
        let mut ds = Dataset::new();
        ds.insert(&GraphName::Default, t("a", "p", "b"));
        ds.insert(&GraphName::Named(Iri::new("g1")), t("a", "p", "b"));
        ds.insert(&GraphName::Named(Iri::new("g2")), t("c", "p", "d"));
        let u = ds.union();
        assert_eq!(u.len(), 2); // duplicate collapses
    }

    #[test]
    fn graphs_containing_finds_mapping_overlap() {
        // Mirrors Fig. 7: wrappers w1 and w2 both cover sc:SportsTeam's id.
        let mut ds = Dataset::new();
        let triple = t("sc:SportsTeam", "G:hasFeature", "sc:identifier");
        ds.insert(&GraphName::Named(Iri::new("ex:w1")), triple.clone());
        ds.insert(&GraphName::Named(Iri::new("ex:w2")), triple.clone());
        ds.insert(&GraphName::Named(Iri::new("ex:w3")), t("x", "y", "z"));
        let (s, p, o) = triple;
        let hits = ds.graphs_containing(&s, &p, &o);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].as_str(), "ex:w1");
        assert_eq!(hits[1].as_str(), "ex:w2");
    }

    #[test]
    fn graphs_mentioning_checks_subject_and_object() {
        let mut ds = Dataset::new();
        ds.insert(&GraphName::Named(Iri::new("g1")), t("a", "p", "b"));
        ds.insert(&GraphName::Named(Iri::new("g2")), t("b", "p", "c"));
        let b = Term::iri("b");
        assert_eq!(ds.graphs_mentioning(&b).len(), 2);
        let a = Term::iri("a");
        assert_eq!(ds.graphs_mentioning(&a).len(), 1);
    }

    #[test]
    fn remove_named_graph_drops_quads() {
        let mut ds = Dataset::new();
        let g = Iri::new("g1");
        ds.insert(&GraphName::Named(g.clone()), t("a", "p", "b"));
        assert!(ds.remove_named_graph(&g).is_some());
        assert_eq!(ds.quad_count(), 0);
        assert!(ds.remove_named_graph(&g).is_none());
    }

    #[test]
    fn quads_iterates_default_then_named() {
        let mut ds = Dataset::new();
        ds.insert(&GraphName::Named(Iri::new("g1")), t("n", "p", "o"));
        ds.insert(&GraphName::Default, t("d", "p", "o"));
        let quads: Vec<_> = ds.quads().collect();
        assert_eq!(quads.len(), 2);
        assert_eq!(quads[0].0, GraphName::Default);
        assert!(matches!(&quads[1].0, GraphName::Named(i) if i.as_str() == "g1"));
    }

    #[test]
    fn graph_names_sorted() {
        let mut ds = Dataset::new();
        ds.named_graph_mut(&Iri::new("g2"));
        ds.named_graph_mut(&Iri::new("g1"));
        let names: Vec<_> = ds.graph_names().map(Iri::as_str).collect();
        assert_eq!(names, vec!["g1", "g2"]);
    }
}

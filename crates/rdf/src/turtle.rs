//! Turtle reader and writer (with TriG-style named-graph blocks).
//!
//! Covers the Turtle subset MDM itself emits and consumes:
//!
//! * `@prefix` directives, `<...>` IRIs, `prefix:local` names, the `a`
//!   keyword;
//! * string literals with escapes, `@lang` tags and `^^` datatypes;
//! * integer / decimal / boolean shorthand literals;
//! * predicate lists (`;`), object lists (`,`), blank node labels (`_:x`);
//! * `GRAPH <iri> { ... }` blocks (TriG) so a whole [`Dataset`] — global
//!   graph + one named graph per LAV mapping — round-trips through a single
//!   document.
//!
//! Not covered (MDM never generates them): collections `( ... )`, anonymous
//! blank nodes `[ ... ]`, `@base`/relative IRI resolution.

use std::fmt;

use crate::dataset::{Dataset, GraphName};
use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{xsd, Iri, Literal, Term};

/// An error raised by the Turtle reader, with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "turtle parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a Turtle document into a [`Graph`].
pub fn parse_graph(input: &str) -> Result<Graph, ParseError> {
    let dataset = parse_dataset(input)?;
    Ok(dataset.union())
}

/// Parses a Turtle document, also returning the prefix bindings its
/// `@prefix`/`PREFIX` directives declared (consumers that re-render the
/// graph — e.g. snapshot restore — need them).
pub fn parse_graph_with_prefixes(input: &str) -> Result<(Graph, PrefixMap), ParseError> {
    let parser = Parser::new(input);
    let (dataset, prefixes) = parser.parse_with_prefixes()?;
    Ok((dataset.union(), prefixes))
}

/// Parses a Turtle/TriG document into a [`Dataset`]; triples outside `GRAPH`
/// blocks land in the default graph.
pub fn parse_dataset(input: &str) -> Result<Dataset, ParseError> {
    Parser::new(input).parse()
}

/// Serialises a graph as Turtle using `prefixes` for compaction.
pub fn write_graph(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    write_prefixes(&mut out, prefixes);
    write_graph_body(&mut out, graph, prefixes, 0);
    out
}

/// Serialises a dataset as TriG: default graph first, then one
/// `GRAPH <iri> { ... }` block per named graph.
pub fn write_dataset(dataset: &Dataset, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    write_prefixes(&mut out, prefixes);
    write_graph_body(&mut out, dataset.default_graph(), prefixes, 0);
    for name in dataset.graph_names() {
        let graph = dataset.named_graph(name).expect("name comes from dataset");
        out.push_str(&format!("GRAPH {} {{\n", format_iri(name, prefixes)));
        write_graph_body(&mut out, graph, prefixes, 1);
        out.push_str("}\n");
    }
    out
}

fn write_prefixes(out: &mut String, prefixes: &PrefixMap) {
    for (prefix, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
}

/// Writes triples grouped by subject with `;`-separated predicates and
/// `,`-separated objects, the style of the paper's figure listings.
fn write_graph_body(out: &mut String, graph: &Graph, prefixes: &PrefixMap, indent: usize) {
    let pad = "    ".repeat(indent);
    for subject in graph.all_subjects() {
        let mut triples = graph.matching(Some(&subject), None, None);
        if triples.is_empty() {
            continue;
        }
        // Canonical order: sort by (predicate, object) *term* value, not
        // the interner-id order matching() returns — graphs holding the
        // same triples serialise identically regardless of insertion
        // history, so snapshot → restore → snapshot is a fixpoint.
        triples.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.2.cmp(&b.2)));
        out.push_str(&format!("{pad}{}", format_term(&subject, prefixes)));
        // Group consecutive triples by predicate (same-predicate triples
        // are adjacent after the sort).
        let mut last_pred: Option<Term> = None;
        for (_, p, o) in triples {
            if last_pred.as_ref() == Some(&p) {
                out.push_str(&format!(", {}", format_term(&o, prefixes)));
            } else {
                if last_pred.is_some() {
                    out.push_str(" ;");
                }
                out.push_str(&format!(
                    "\n{pad}    {} {}",
                    format_term(&p, prefixes),
                    format_term(&o, prefixes)
                ));
                last_pred = Some(p);
            }
        }
        out.push_str(" .\n");
    }
}

/// Formats one term in Turtle syntax, compacting IRIs through `prefixes`.
pub fn format_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => format_iri(iri, prefixes),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(lit) => format_literal(lit, prefixes),
    }
}

fn format_iri(iri: &Iri, prefixes: &PrefixMap) -> String {
    if iri.as_str() == crate::vocab::rdf::TYPE.as_str() {
        return "a".to_string();
    }
    prefixes
        .compact(iri)
        .unwrap_or_else(|| format!("<{}>", iri.as_str()))
}

fn format_literal(lit: &Literal, prefixes: &PrefixMap) -> String {
    // Shorthand numeric/boolean forms when the lexical form is canonical.
    match lit.datatype().as_str() {
        xsd::INTEGER if lit.as_i64().is_some() => return lit.lexical().to_string(),
        xsd::BOOLEAN if matches!(lit.lexical(), "true" | "false") => {
            return lit.lexical().to_string()
        }
        xsd::DOUBLE if lit.lexical().contains('.') && lit.as_f64().is_some() => {
            return lit.lexical().to_string()
        }
        _ => {}
    }
    let escaped = escape_string(lit.lexical());
    if let Some(lang) = lit.language() {
        format!("\"{escaped}\"@{lang}")
    } else if lit.datatype().as_str() == xsd::STRING {
        format!("\"{escaped}\"")
    } else {
        format!("\"{escaped}\"^^{}", format_iri(lit.datatype(), prefixes))
    }
}

fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    prefixes: PrefixMap,
    dataset: Dataset,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            prefixes: PrefixMap::new(),
            dataset: Dataset::new(),
        }
    }

    fn parse(self) -> Result<Dataset, ParseError> {
        self.parse_with_prefixes().map(|(dataset, _)| dataset)
    }

    fn parse_with_prefixes(mut self) -> Result<(Dataset, PrefixMap), ParseError> {
        loop {
            self.skip_ws();
            if self.at_end() {
                break;
            }
            if self.try_keyword("@prefix") {
                self.parse_prefix_directive()?;
            } else if self.try_keyword_ci("PREFIX") {
                self.parse_sparql_prefix_directive()?;
            } else if self.try_keyword_ci("GRAPH") {
                self.parse_graph_block()?;
            } else {
                self.parse_statement(&GraphName::Default)?;
            }
        }
        Ok((self.dataset, self.prefixes))
    }

    // ---- lexical helpers ----

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            column: self.pos - self.line_start + 1,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Consumes `kw` if the input starts with it (case-sensitive).
    fn try_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            for _ in 0..kw.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consumes `kw` if the input starts with it case-insensitively and the
    /// keyword is followed by whitespace or `<` (so `GRAPHX` doesn't match).
    fn try_keyword_ci(&mut self, kw: &str) -> bool {
        let rest = &self.input[self.pos..];
        if rest.len() < kw.len() {
            return false;
        }
        let candidate = &rest[..kw.len()];
        if !candidate.eq_ignore_ascii_case(kw.as_bytes()) {
            return false;
        }
        match rest.get(kw.len()) {
            Some(&c) if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' || c == b'<' => {}
            _ => return false,
        }
        for _ in 0..kw.len() {
            self.bump();
        }
        true
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(found) if found == c => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.error(format!(
                "expected '{}', found '{}'",
                c as char, found as char
            ))),
            None => Err(self.error(format!("expected '{}', found end of input", c as char))),
        }
    }

    // ---- directives ----

    fn parse_prefix_directive(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let prefix = self.parse_prefix_name()?;
        self.expect(b':')?;
        self.skip_ws();
        let ns = self.parse_iri_ref()?;
        self.skip_ws();
        self.expect(b'.')?;
        self.prefixes.insert(prefix, ns);
        Ok(())
    }

    fn parse_sparql_prefix_directive(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let prefix = self.parse_prefix_name()?;
        self.expect(b':')?;
        self.skip_ws();
        let ns = self.parse_iri_ref()?;
        self.prefixes.insert(prefix, ns);
        Ok(())
    }

    fn parse_prefix_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.bump();
            } else {
                break;
            }
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .to_string())
    }

    fn parse_iri_ref(&mut self) -> Result<String, ParseError> {
        self.expect(b'<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'>' {
                if self.pos == start {
                    return Err(self.error("empty IRI '<>' (base resolution is unsupported)"));
                }
                let iri = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("IRI is not valid UTF-8"))?
                    .to_string();
                self.bump();
                return Ok(iri);
            }
            if c == b'\n' {
                return Err(self.error("unterminated IRI"));
            }
            self.bump();
        }
        Err(self.error("unterminated IRI"))
    }

    // ---- statements ----

    fn parse_graph_block(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let name = match self.parse_term()? {
            Term::Iri(iri) => iri,
            other => return Err(self.error(format!("graph name must be an IRI, got {other:?}"))),
        };
        self.skip_ws();
        self.expect(b'{')?;
        let graph_name = GraphName::Named(name.clone());
        // Materialise the named graph even when the block is empty: an empty
        // LAV mapping is representable (and is rejected later with a good
        // error at the mdm-core layer, not silently dropped here).
        self.dataset.named_graph_mut(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.bump();
                    return Ok(());
                }
                None => return Err(self.error("unterminated GRAPH block")),
                _ => self.parse_statement(&graph_name)?,
            }
        }
    }

    /// One subject with its predicate-object list, terminated by `.`.
    fn parse_statement(&mut self, graph: &GraphName) -> Result<(), ParseError> {
        let subject = self.parse_term()?;
        loop {
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                self.skip_ws();
                let object = self.parse_term()?;
                self.dataset
                    .insert(graph, (subject.clone(), predicate.clone(), object));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(b';') => {
                    self.bump();
                    // Allow a trailing `;` before `.` (common in the wild).
                    self.skip_ws();
                    if self.peek() == Some(b'.') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(b'.') => {
                    self.bump();
                    return Ok(());
                }
                Some(other) => {
                    return Err(self.error(format!(
                        "expected ',', ';' or '.', found '{}'",
                        other as char
                    )))
                }
                None => return Err(self.error("unterminated statement")),
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, ParseError> {
        // `a` shorthand for rdf:type (must not be the start of a longer name).
        if self.peek() == Some(b'a') {
            let next = self.input.get(self.pos + 1).copied();
            if matches!(next, Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')) {
                self.bump();
                return Ok(crate::vocab::rdf::TYPE.term());
            }
        }
        self.parse_term()
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                let iri = self.parse_iri_ref()?;
                Ok(Term::iri(iri))
            }
            Some(b'"') => self.parse_string_literal(),
            Some(b'_') => self.parse_blank_node(),
            Some(c) if c == b'+' || c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => self.parse_qname_or_keyword(),
            None => Err(self.error("expected term, found end of input")),
        }
    }

    fn parse_blank_node(&mut self) -> Result<Term, ParseError> {
        self.expect(b'_')?;
        self.expect(b':')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("empty blank node label"));
        }
        let label = std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .to_string();
        Ok(Term::blank(label))
    }

    fn parse_string_literal(&mut self) -> Result<Term, ParseError> {
        self.expect(b'"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'n') => value.push('\n'),
                    Some(b'r') => value.push('\r'),
                    Some(b't') => value.push('\t'),
                    Some(other) => {
                        return Err(self.error(format!("unknown escape '\\{}'", other as char)))
                    }
                    None => return Err(self.error("unterminated string escape")),
                },
                Some(other) => {
                    // Collect raw UTF-8 bytes; validity is checked at the end
                    // of multibyte sequences by String::from_utf8 semantics —
                    // we rebuild chars from the original byte slice instead.
                    value.push(other as char);
                    if other >= 0x80 {
                        // Multibyte char: back up and take the full char.
                        value.pop();
                        let start = self.pos - 1;
                        let s = std::str::from_utf8(&self.input[start..])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?;
                        let ch = s.chars().next().expect("non-empty");
                        for _ in 1..ch.len_utf8() {
                            self.bump();
                        }
                        value.push(ch);
                    }
                }
                None => return Err(self.error("unterminated string literal")),
            }
        }
        // Language tag or datatype suffix.
        if self.peek() == Some(b'@') {
            self.bump();
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'-' {
                    self.bump();
                } else {
                    break;
                }
            }
            let lang = std::str::from_utf8(&self.input[start..self.pos])
                .expect("ascii slice")
                .to_string();
            if lang.is_empty() {
                return Err(self.error("empty language tag"));
            }
            return Ok(Term::Literal(Literal::lang_string(value, lang)));
        }
        if self.input[self.pos..].starts_with(b"^^") {
            self.bump();
            self.bump();
            let datatype = match self.parse_term()? {
                Term::Iri(iri) => iri,
                other => return Err(self.error(format!("datatype must be an IRI, got {other:?}"))),
            };
            return Ok(Term::Literal(Literal::typed(value, datatype)));
        }
        Ok(Term::Literal(Literal::string(value)))
    }

    fn parse_number(&mut self) -> Result<Term, ParseError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut is_double = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' {
                // A '.' is a decimal point only when followed by a digit;
                // otherwise it terminates the statement.
                match self.input.get(self.pos + 1) {
                    Some(d) if d.is_ascii_digit() => {
                        is_double = true;
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == b'e' || c == b'E' {
                is_double = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii slice");
        if is_double {
            let value: f64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid double '{text}'")))?;
            Ok(Term::Literal(Literal::typed(
                format_num(text, value),
                Iri::new(xsd::DOUBLE),
            )))
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid integer '{text}'")))?;
            Ok(Term::integer(value))
        }
    }

    fn parse_qname_or_keyword(&mut self) -> Result<Term, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                // A trailing '.' ends the statement rather than the name.
                if c == b'.' {
                    match self.input.get(self.pos + 1) {
                        Some(n) if n.is_ascii_alphanumeric() || *n == b'_' => {}
                        _ => break,
                    }
                }
                self.bump();
            } else {
                break;
            }
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .to_string();
        match name.as_str() {
            "true" => return Ok(Term::Literal(Literal::boolean(true))),
            "false" => return Ok(Term::Literal(Literal::boolean(false))),
            _ => {}
        }
        if self.peek() == Some(b':') {
            self.bump();
            let local_start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                    if c == b'.' {
                        match self.input.get(self.pos + 1) {
                            Some(n) if n.is_ascii_alphanumeric() || *n == b'_' => {}
                            _ => break,
                        }
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            let local =
                std::str::from_utf8(&self.input[local_start..self.pos]).expect("ascii slice");
            let qname = format!("{name}:{local}");
            return self
                .prefixes
                .expand(&qname)
                .map(Term::Iri)
                .ok_or_else(|| self.error(format!("unknown prefix '{name}:'")));
        }
        Err(self.error(format!("unexpected token '{name}'")))
    }
}

/// Preserves scientific-notation text exactly; canonicalises plain decimals.
fn format_num(text: &str, value: f64) -> String {
    if text.contains(['e', 'E']) {
        text.to_string()
    } else {
        // Keep the user's lexical form for decimals (e.g. "170.18").
        let _ = value;
        text.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn parse_simple_triple() {
        let g = parse_graph("<http://e.x/a> <http://e.x/p> <http://e.x/b> .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_prefixed_names_and_a_keyword() {
        let doc = "@prefix ex: <http://e.x/> .\nex:Player a ex:Concept .";
        let g = parse_graph(doc).unwrap();
        assert!(g.contains(
            &Term::iri("http://e.x/Player"),
            &vocab::rdf::TYPE.term(),
            &Term::iri("http://e.x/Concept"),
        ));
    }

    #[test]
    fn parse_predicate_and_object_lists() {
        let doc = r#"
            @prefix ex: <http://e.x/> .
            ex:Player ex:hasFeature ex:name, ex:height ;
                      a ex:Concept .
        "#;
        let g = parse_graph(doc).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn parse_literals_of_each_kind() {
        let doc = r#"
            @prefix ex: <http://e.x/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            ex:messi ex:name "Lionel Messi" ;
                     ex:height 170.18 ;
                     ex:weight 159 ;
                     ex:active true ;
                     ex:label "Messi"@es ;
                     ex:custom "x"^^xsd:token .
        "#;
        let g = parse_graph(doc).unwrap();
        assert_eq!(g.len(), 6);
        let messi = Term::iri("http://e.x/messi");
        let height = g.object(&messi, &Term::iri("http://e.x/height")).unwrap();
        assert_eq!(height.as_literal().unwrap().as_f64(), Some(170.18));
        let weight = g.object(&messi, &Term::iri("http://e.x/weight")).unwrap();
        assert_eq!(weight.as_literal().unwrap().as_i64(), Some(159));
        let label = g.object(&messi, &Term::iri("http://e.x/label")).unwrap();
        assert_eq!(label.as_literal().unwrap().language(), Some("es"));
    }

    #[test]
    fn parse_escaped_string() {
        let doc = r#"<http://e.x/a> <http://e.x/p> "line1\nline\"2\"" ."#;
        let g = parse_graph(doc).unwrap();
        let (_, _, o) = g.iter().next().unwrap();
        assert_eq!(o.as_literal().unwrap().lexical(), "line1\nline\"2\"");
    }

    #[test]
    fn parse_unicode_string() {
        let doc = "<http://e.x/a> <http://e.x/p> \"Barça ⚽\" .";
        let g = parse_graph(doc).unwrap();
        let (_, _, o) = g.iter().next().unwrap();
        assert_eq!(o.as_literal().unwrap().lexical(), "Barça ⚽");
    }

    #[test]
    fn parse_blank_nodes() {
        let doc = "_:w1 <http://e.x/p> _:w2 .";
        let g = parse_graph(doc).unwrap();
        let (s, _, o) = g.iter().next().unwrap();
        assert_eq!(s.as_blank().unwrap().label(), "w1");
        assert_eq!(o.as_blank().unwrap().label(), "w2");
    }

    #[test]
    fn parse_comments_and_whitespace() {
        let doc = "# leading comment\n<http://e.x/a> <http://e.x/p> 1 . # trailing\n";
        let g = parse_graph(doc).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_graph_blocks_into_named_graphs() {
        let doc = r#"
            @prefix ex: <http://e.x/> .
            ex:global ex:p ex:o .
            GRAPH ex:w1 {
                ex:Player ex:hasFeature ex:name .
                ex:Player a ex:Concept .
            }
            GRAPH ex:w2 {
                ex:Team ex:hasFeature ex:teamName .
            }
        "#;
        let ds = parse_dataset(doc).unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.named_graph_count(), 2);
        assert_eq!(ds.named_graph(&Iri::new("http://e.x/w1")).unwrap().len(), 2);
    }

    #[test]
    fn unknown_prefix_is_an_error_with_position() {
        let err = parse_graph("nope:a nope:b nope:c .").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = parse_graph("<a> <b> \"oops .").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let mut g = Graph::new();
        let mut prefixes = PrefixMap::with_defaults();
        prefixes.insert("e", "http://e.x/");
        g.insert((
            Term::iri("http://e.x/Player"),
            vocab::rdf::TYPE.term(),
            vocab::bdi::CONCEPT.term(),
        ));
        g.insert((
            Term::iri("http://e.x/Player"),
            vocab::bdi::HAS_FEATURE.term(),
            Term::iri("http://e.x/playerName"),
        ));
        g.insert((
            Term::iri("http://e.x/messi"),
            Term::iri("http://e.x/height"),
            Term::double(170.18),
        ));
        g.insert((
            Term::iri("http://e.x/messi"),
            Term::iri("http://e.x/name"),
            Term::string("Lionel Messi"),
        ));
        let text = write_graph(&g, &prefixes);
        let parsed = parse_graph(&text).unwrap();
        assert_eq!(parsed.len(), g.len());
        for t in g.iter() {
            assert!(
                parsed.contains(&t.0, &t.1, &t.2),
                "missing {t:?} in:\n{text}"
            );
        }
    }

    #[test]
    fn dataset_round_trips_through_trig() {
        let mut ds = Dataset::new();
        let mut prefixes = PrefixMap::new();
        prefixes.insert("e", "http://e.x/");
        ds.insert(
            &GraphName::Default,
            (
                Term::iri("http://e.x/a"),
                Term::iri("http://e.x/p"),
                Term::string("v"),
            ),
        );
        ds.insert(
            &GraphName::Named(Iri::new("http://e.x/w1")),
            (
                Term::iri("http://e.x/Player"),
                Term::iri("http://e.x/hasFeature"),
                Term::iri("http://e.x/name"),
            ),
        );
        let text = write_dataset(&ds, &prefixes);
        let parsed = parse_dataset(&text).unwrap();
        assert_eq!(parsed.default_graph().len(), 1);
        assert_eq!(parsed.named_graph_count(), 1);
        assert_eq!(
            parsed
                .named_graph(&Iri::new("http://e.x/w1"))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn rdf_type_renders_as_a() {
        let mut g = Graph::new();
        g.insert((
            Term::iri("http://e.x/x"),
            vocab::rdf::TYPE.term(),
            Term::iri("http://e.x/C"),
        ));
        let mut prefixes = PrefixMap::new();
        prefixes.insert("e", "http://e.x/");
        let text = write_graph(&g, &prefixes);
        assert!(text.contains(" a e:C"), "got: {text}");
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let g = parse_graph("<a> <p> -42 . <a> <q> 1.5e3 .").unwrap();
        assert_eq!(g.len(), 2);
        let o = g.object(&Term::iri("a"), &Term::iri("p")).unwrap();
        assert_eq!(o.as_literal().unwrap().as_i64(), Some(-42));
        let o = g.object(&Term::iri("a"), &Term::iri("q")).unwrap();
        assert_eq!(o.as_literal().unwrap().as_f64(), Some(1500.0));
    }

    #[test]
    fn empty_graph_block_is_materialised() {
        let ds = parse_dataset("@prefix e: <http://e.x/> .\nGRAPH e:w1 { }").unwrap();
        assert_eq!(ds.named_graph_count(), 1);
        assert!(ds
            .named_graph(&Iri::new("http://e.x/w1"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sparql_style_prefix_directive() {
        let g = parse_graph("PREFIX e: <http://e.x/>\ne:a e:p e:b .").unwrap();
        assert_eq!(g.len(), 1);
    }
}

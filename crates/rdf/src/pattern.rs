//! Triple patterns with variables, and single-pattern matching.
//!
//! This is the shared primitive under both the SPARQL evaluator
//! (`mdm-sparql`) and the query-rewriting engine (`mdm-core`): a triple whose
//! components may be variables, matched against a [`Graph`] to produce
//! variable bindings.

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::Graph;
use crate::term::Term;

/// A variable name (without the leading `?`).
pub type Var = String;

/// One component of a [`TriplePattern`]: a constant term or a variable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatternTerm {
    /// A constant that must match exactly.
    Const(Term),
    /// A variable to be bound.
    Var(Var),
}

impl PatternTerm {
    /// Shorthand for a variable component.
    pub fn var(name: impl Into<String>) -> Self {
        PatternTerm::Var(name.into())
    }

    /// Returns the constant term, if this component is one.
    pub fn as_const(&self) -> Option<&Term> {
        match self {
            PatternTerm::Const(t) => Some(t),
            PatternTerm::Var(_) => None,
        }
    }

    /// Returns the variable name, if this component is one.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }
}

impl fmt::Debug for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Const(t) => write!(f, "{t:?}"),
            PatternTerm::Var(v) => write!(f, "?{v}"),
        }
    }
}

impl From<Term> for PatternTerm {
    fn from(t: Term) -> Self {
        PatternTerm::Const(t)
    }
}

/// A set of variable bindings produced by pattern matching.
pub type Bindings = BTreeMap<Var, Term>;

/// A triple pattern: three components, each constant or variable.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub subject: PatternTerm,
    pub predicate: PatternTerm,
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Builds a pattern from any three convertible components.
    pub fn new(
        subject: impl Into<PatternTerm>,
        predicate: impl Into<PatternTerm>,
        object: impl Into<PatternTerm>,
    ) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// The distinct variable names in this pattern, in s/p/o order.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars = Vec::new();
        for component in [&self.subject, &self.predicate, &self.object] {
            if let Some(v) = component.as_var() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// Applies existing bindings, turning bound variables into constants.
    pub fn substituted(&self, bindings: &Bindings) -> TriplePattern {
        let subst = |component: &PatternTerm| -> PatternTerm {
            match component {
                PatternTerm::Var(v) => match bindings.get(v) {
                    Some(term) => PatternTerm::Const(term.clone()),
                    None => component.clone(),
                },
                PatternTerm::Const(_) => component.clone(),
            }
        };
        TriplePattern {
            subject: subst(&self.subject),
            predicate: subst(&self.predicate),
            object: subst(&self.object),
        }
    }

    /// Matches this pattern against `graph` under `seed` bindings, returning
    /// one extended binding set per matching triple.
    ///
    /// Repeated variables within the pattern (e.g. `?x p ?x`) are honoured:
    /// a candidate triple only matches when all occurrences agree.
    pub fn match_against(&self, graph: &Graph, seed: &Bindings) -> Vec<Bindings> {
        let pattern = self.substituted(seed);
        let s = pattern.subject.as_const();
        let p = pattern.predicate.as_const();
        let o = pattern.object.as_const();
        let mut out = Vec::new();
        'triples: for (ts, tp, to) in graph.matching(s, p, o) {
            let mut bindings = seed.clone();
            for (component, term) in [
                (&pattern.subject, ts),
                (&pattern.predicate, tp),
                (&pattern.object, to),
            ] {
                if let PatternTerm::Var(v) = component {
                    match bindings.get(v) {
                        Some(existing) if *existing != term => continue 'triples,
                        Some(_) => {}
                        None => {
                            bindings.insert(v.clone(), term);
                        }
                    }
                }
            }
            out.push(bindings);
        }
        out
    }
}

impl fmt::Debug for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {:?} {:?} .",
            self.subject, self.predicate, self.object
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert((
            Term::iri("ex:Player"),
            Term::iri("G:hasFeature"),
            Term::iri("ex:playerName"),
        ));
        g.insert((
            Term::iri("ex:Player"),
            Term::iri("G:hasFeature"),
            Term::iri("ex:height"),
        ));
        g.insert((
            Term::iri("sc:SportsTeam"),
            Term::iri("G:hasFeature"),
            Term::iri("ex:teamName"),
        ));
        g.insert((
            Term::iri("ex:loop"),
            Term::iri("ex:self"),
            Term::iri("ex:loop"),
        ));
        g
    }

    #[test]
    fn all_constant_pattern_matches_once() {
        let g = sample_graph();
        let pat = TriplePattern::new(
            Term::iri("ex:Player"),
            Term::iri("G:hasFeature"),
            Term::iri("ex:height"),
        );
        assert_eq!(pat.match_against(&g, &Bindings::new()).len(), 1);
    }

    #[test]
    fn variable_object_binds_each_match() {
        let g = sample_graph();
        let pat = TriplePattern::new(
            Term::iri("ex:Player"),
            Term::iri("G:hasFeature"),
            PatternTerm::var("f"),
        );
        let matches = pat.match_against(&g, &Bindings::new());
        assert_eq!(matches.len(), 2);
        let bound: Vec<_> = matches.iter().map(|b| b["f"].clone()).collect();
        assert!(bound.contains(&Term::iri("ex:playerName")));
        assert!(bound.contains(&Term::iri("ex:height")));
    }

    #[test]
    fn seed_bindings_constrain_matching() {
        let g = sample_graph();
        let pat = TriplePattern::new(
            PatternTerm::var("c"),
            Term::iri("G:hasFeature"),
            PatternTerm::var("f"),
        );
        let mut seed = Bindings::new();
        seed.insert("c".into(), Term::iri("sc:SportsTeam"));
        let matches = pat.match_against(&g, &seed);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0]["f"], Term::iri("ex:teamName"));
    }

    #[test]
    fn repeated_variable_requires_equality() {
        let g = sample_graph();
        let pat = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::var("x"),
        );
        let matches = pat.match_against(&g, &Bindings::new());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0]["x"], Term::iri("ex:loop"));
    }

    #[test]
    fn variables_lists_in_order_without_duplicates() {
        let pat = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::var("x"),
        );
        assert_eq!(pat.variables(), vec!["x", "p"]);
    }

    #[test]
    fn substituted_freezes_bound_vars() {
        let pat = TriplePattern::new(PatternTerm::var("s"), Term::iri("p"), PatternTerm::var("o"));
        let mut b = Bindings::new();
        b.insert("s".into(), Term::iri("ex:a"));
        let sub = pat.substituted(&b);
        assert_eq!(sub.subject.as_const(), Some(&Term::iri("ex:a")));
        assert!(sub.object.as_var().is_some());
    }

    #[test]
    fn no_match_yields_empty() {
        let g = sample_graph();
        let pat = TriplePattern::new(
            Term::iri("ex:Nothing"),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        );
        assert!(pat.match_against(&g, &Bindings::new()).is_empty());
    }
}

//! Property tests for the RDF substrate: index coherence under arbitrary
//! insert/remove interleavings, and Turtle/TriG round-trips.

use proptest::prelude::*;

use mdm_rdf::dataset::{Dataset, GraphName};
use mdm_rdf::namespace::PrefixMap;
use mdm_rdf::term::{Iri, Literal, Term, Triple};
use mdm_rdf::{turtle, Graph};

/// A small pool of IRIs so triples collide often (exercises set semantics).
fn arb_iri() -> impl Strategy<Value = Iri> {
    (0u8..12).prop_map(|i| Iri::new(format!("http://e.x/n{i}")))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Printable strings incl. the characters the escaper must handle.
        "[ -~àé⚽]{0,12}".prop_map(Literal::string),
        any::<i64>().prop_map(Literal::integer),
        // Doubles from a grid that round-trips exactly through decimal text.
        (-1000i32..1000, 0u8..100).prop_map(|(a, b)| Literal::double(a as f64 + b as f64 / 100.0)),
        any::<bool>().prop_map(Literal::boolean),
        ("[a-z]{1,8}", "[a-z]{2}").prop_map(|(s, lang)| Literal::lang_string(s, lang)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => arb_iri().prop_map(Term::Iri),
        1 => "[a-z][a-z0-9]{0,6}".prop_map(Term::blank),
        3 => arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (
        arb_iri().prop_map(Term::Iri),
        arb_iri().prop_map(Term::Iri),
        arb_term(),
    )
        .prop_map(|(s, p, o)| (s, p, o))
}

proptest! {
    /// Every pattern shape answers exactly what a naive scan answers.
    #[test]
    fn matching_agrees_with_naive_filter(
        triples in proptest::collection::vec(arb_triple(), 0..40),
        probe in arb_triple(),
        mask in 0u8..8,
    ) {
        let graph: Graph = triples.iter().cloned().collect();
        let (ps, pp, po) = &probe;
        let s = (mask & 1 != 0).then_some(ps);
        let p = (mask & 2 != 0).then_some(pp);
        let o = (mask & 4 != 0).then_some(po);
        let mut expected: Vec<Triple> = triples
            .iter()
            .filter(|(ts, tp, to)| {
                s.is_none_or(|x| x == ts)
                    && p.is_none_or(|x| x == tp)
                    && o.is_none_or(|x| x == to)
            })
            .cloned()
            .collect();
        expected.sort();
        expected.dedup();
        let mut actual = graph.matching(s, p, o);
        actual.sort();
        prop_assert_eq!(actual, expected);
    }

    /// Removals keep all three permutation indexes coherent.
    #[test]
    fn insert_remove_interleaving_keeps_indexes_coherent(
        ops in proptest::collection::vec((any::<bool>(), arb_triple()), 0..60),
    ) {
        let mut graph = Graph::new();
        let mut reference: std::collections::BTreeSet<Triple> = Default::default();
        for (insert, triple) in ops {
            if insert {
                prop_assert_eq!(graph.insert(triple.clone()), reference.insert(triple));
            } else {
                let (s, p, o) = &triple;
                prop_assert_eq!(graph.remove(s, p, o), reference.remove(&triple));
            }
            prop_assert_eq!(graph.len(), reference.len());
        }
        let from_graph: Vec<Triple> = graph.iter().collect();
        let from_reference: Vec<Triple> = reference.into_iter().collect();
        // Same set (graph iterates in interner order, so compare sorted).
        let mut from_graph_sorted = from_graph;
        from_graph_sorted.sort();
        prop_assert_eq!(from_graph_sorted, from_reference);
    }

    /// write_graph ∘ parse_graph is the identity on graphs.
    #[test]
    fn turtle_round_trip(
        triples in proptest::collection::vec(arb_triple(), 0..30),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let mut prefixes = PrefixMap::with_defaults();
        prefixes.insert("e", "http://e.x/");
        let text = turtle::write_graph(&graph, &prefixes);
        let parsed = turtle::parse_graph(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(parsed.len(), graph.len());
        for (s, p, o) in graph.iter() {
            prop_assert!(parsed.contains(&s, &p, &o), "lost {:?} in:\n{}", (s, p, o), text);
        }
    }

    /// TriG round-trips datasets with named graphs.
    #[test]
    fn trig_round_trip(
        default in proptest::collection::vec(arb_triple(), 0..10),
        named in proptest::collection::vec(
            (0u8..4, arb_triple()),
            0..20,
        ),
    ) {
        let mut dataset = Dataset::new();
        for t in default {
            dataset.insert(&GraphName::Default, t);
        }
        for (g, t) in named {
            dataset.insert(
                &GraphName::Named(Iri::new(format!("http://e.x/g{g}"))),
                t,
            );
        }
        let mut prefixes = PrefixMap::with_defaults();
        prefixes.insert("e", "http://e.x/");
        let text = turtle::write_dataset(&dataset, &prefixes);
        let parsed = turtle::parse_dataset(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(parsed.quad_count(), dataset.quad_count());
        prop_assert_eq!(parsed.named_graph_count(), dataset.named_graph_count());
    }

    /// Union view equals the set union of members.
    #[test]
    fn dataset_union_is_set_union(
        a in proptest::collection::vec(arb_triple(), 0..15),
        b in proptest::collection::vec(arb_triple(), 0..15),
    ) {
        let mut dataset = Dataset::new();
        for t in &a {
            dataset.insert(&GraphName::Named(Iri::new("http://e.x/a")), t.clone());
        }
        for t in &b {
            dataset.insert(&GraphName::Named(Iri::new("http://e.x/b")), t.clone());
        }
        let expected: std::collections::BTreeSet<Triple> =
            a.into_iter().chain(b).collect();
        let union = dataset.union();
        prop_assert_eq!(union.len(), expected.len());
        for t in expected {
            prop_assert!(union.contains(&t.0, &t.1, &t.2));
        }
    }
}

//! Edge-case tests for the RDF substrate: Turtle syntax corners, writer
//! escaping, dataset isolation, large-graph behaviour.

use mdm_rdf::namespace::PrefixMap;
use mdm_rdf::term::{Iri, Literal, Term};
use mdm_rdf::{turtle, Graph};

#[test]
fn prefixed_local_names_with_dots_and_dashes() {
    let doc = "@prefix e: <http://e.x/> .\ne:a-b e:p.q e:v2.1 .";
    let g = turtle::parse_graph(doc).unwrap();
    assert_eq!(g.len(), 1);
    let (s, p, o) = g.iter().next().unwrap();
    assert_eq!(s.as_iri().unwrap().as_str(), "http://e.x/a-b");
    assert_eq!(p.as_iri().unwrap().as_str(), "http://e.x/p.q");
    assert_eq!(o.as_iri().unwrap().as_str(), "http://e.x/v2.1");
}

#[test]
fn trailing_dot_after_local_name_terminates_statement() {
    // `e:b.` — the dot ends the statement, not the name.
    let doc = "@prefix e: <http://e.x/> .\ne:a e:p e:b.";
    let g = turtle::parse_graph(doc).unwrap();
    let (_, _, o) = g.iter().next().unwrap();
    assert_eq!(o.as_iri().unwrap().as_str(), "http://e.x/b");
}

#[test]
fn semicolons_and_commas_mixed_deeply() {
    let doc = r#"
        @prefix e: <http://e.x/> .
        e:s e:p1 e:a, e:b, e:c ;
            e:p2 e:d ;
            e:p3 e:e, e:f .
    "#;
    let g = turtle::parse_graph(doc).unwrap();
    assert_eq!(g.len(), 6);
}

#[test]
fn string_with_all_escapes_round_trips() {
    let tricky = "quote:\" backslash:\\ newline:\n tab:\t cr:\r done";
    let mut g = Graph::new();
    g.insert((
        Term::iri("http://e.x/s"),
        Term::iri("http://e.x/p"),
        Term::string(tricky),
    ));
    let text = turtle::write_graph(&g, &PrefixMap::new());
    let parsed = turtle::parse_graph(&text).unwrap();
    let (_, _, o) = parsed.iter().next().unwrap();
    assert_eq!(o.as_literal().unwrap().lexical(), tricky);
}

#[test]
fn iri_that_no_prefix_covers_writes_in_angles() {
    let mut g = Graph::new();
    g.insert((
        Term::iri("urn:uuid:1234"),
        Term::iri("http://unprefixed.example/p"),
        Term::iri("http://e.x/with space"), // space: cannot compact safely
    ));
    let mut prefixes = PrefixMap::new();
    prefixes.insert("e", "http://e.x/");
    let text = turtle::write_graph(&g, &prefixes);
    assert!(text.contains("<urn:uuid:1234>"));
    assert!(text.contains("<http://e.x/with space>"));
    let parsed = turtle::parse_graph(&text).unwrap();
    assert_eq!(parsed.len(), 1);
}

#[test]
fn typed_literal_with_unprefixed_datatype_round_trips() {
    let mut g = Graph::new();
    g.insert((
        Term::iri("http://e.x/s"),
        Term::iri("http://e.x/p"),
        Term::Literal(Literal::typed("v", Iri::new("http://types.example/T"))),
    ));
    let text = turtle::write_graph(&g, &PrefixMap::new());
    assert!(text.contains("^^<http://types.example/T>"));
    let parsed = turtle::parse_graph(&text).unwrap();
    let (_, _, o) = parsed.iter().next().unwrap();
    assert_eq!(
        o.as_literal().unwrap().datatype().as_str(),
        "http://types.example/T"
    );
}

#[test]
fn graph_block_followed_by_default_triples() {
    let doc = r#"
        @prefix e: <http://e.x/> .
        GRAPH e:g1 { e:a e:p e:b . }
        e:x e:p e:y .
        GRAPH e:g2 { e:c e:p e:d . }
    "#;
    let ds = turtle::parse_dataset(doc).unwrap();
    assert_eq!(ds.default_graph().len(), 1);
    assert_eq!(ds.named_graph_count(), 2);
}

#[test]
fn same_triple_in_two_named_graphs_stays_separate() {
    let doc = r#"
        @prefix e: <http://e.x/> .
        GRAPH e:g1 { e:a e:p e:b . }
        GRAPH e:g2 { e:a e:p e:b . }
    "#;
    let ds = turtle::parse_dataset(doc).unwrap();
    assert_eq!(ds.quad_count(), 2);
    assert_eq!(ds.union().len(), 1);
}

#[test]
fn boolean_and_numeric_literals_distinct_from_iris() {
    let doc = "@prefix e: <http://e.x/> .\ne:s e:p true . e:s e:q 42 . e:s e:r e:true .";
    let g = turtle::parse_graph(doc).unwrap();
    let objects: Vec<Term> = g
        .matching(Some(&Term::iri("http://e.x/s")), None, None)
        .into_iter()
        .map(|(_, _, o)| o)
        .collect();
    assert!(objects
        .iter()
        .any(|o| matches!(o, Term::Literal(l) if l.as_bool() == Some(true))));
    assert!(objects
        .iter()
        .any(|o| matches!(o, Term::Literal(l) if l.as_i64() == Some(42))));
    assert!(objects
        .iter()
        .any(|o| o.as_iri().is_some_and(|i| i.as_str().ends_with("true"))));
}

#[test]
fn ten_thousand_triples_round_trip() {
    let mut g = Graph::new();
    for i in 0..10_000 {
        g.insert((
            Term::iri(format!("http://e.x/s{}", i % 100)),
            Term::iri(format!("http://e.x/p{}", i % 10)),
            Term::integer(i),
        ));
    }
    assert_eq!(g.len(), 10_000);
    let mut prefixes = PrefixMap::new();
    prefixes.insert("e", "http://e.x/");
    let text = turtle::write_graph(&g, &prefixes);
    let parsed = turtle::parse_graph(&text).unwrap();
    assert_eq!(parsed.len(), 10_000);
}

#[test]
fn pattern_matching_on_dense_predicate() {
    let mut g = Graph::new();
    let p = Term::iri("http://e.x/p");
    for i in 0..1000 {
        g.insert((
            Term::iri(format!("http://e.x/s{i}")),
            p.clone(),
            Term::integer(i),
        ));
    }
    assert_eq!(g.matching(None, Some(&p), None).len(), 1000);
    assert_eq!(
        g.matching(None, Some(&p), Some(&Term::integer(500))).len(),
        1
    );
}

#[test]
fn comment_only_and_whitespace_only_documents() {
    assert_eq!(turtle::parse_graph("").unwrap().len(), 0);
    assert_eq!(turtle::parse_graph("   \n\t  ").unwrap().len(), 0);
    assert_eq!(
        turtle::parse_graph("# nothing here\n# at all")
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn error_positions_point_at_the_problem() {
    let doc = "@prefix e: <http://e.x/> .\ne:a e:p e:b .\ne:broken e:p @ .";
    let err = turtle::parse_graph(doc).unwrap_err();
    assert_eq!(err.line, 3, "{err}");
}

//! Robustness: the Turtle/TriG reader must never panic on arbitrary input.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn turtle_parser_never_panics(input in "\\PC*") {
        let _ = mdm_rdf::turtle::parse_graph(&input);
        let _ = mdm_rdf::turtle::parse_dataset(&input);
    }

    #[test]
    fn turtle_parser_never_panics_on_turtleish(
        input in "[<>@a-z0-9:/\\.\"'#;,{}\\^ \\n_-]*",
    ) {
        let _ = mdm_rdf::turtle::parse_dataset(&input);
    }
}

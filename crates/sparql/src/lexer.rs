//! The SPARQL tokenizer.

use std::fmt;

/// A token produced by the lexer.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// A keyword, uppercased (`SELECT`, `WHERE`, `FILTER`, …) or the `a`
    /// shorthand (kept lowercase to distinguish it from a variable).
    Keyword(String),
    /// `?name` or `$name`.
    Variable(String),
    /// `<iri>` (contents without angle brackets).
    IriRef(String),
    /// `prefix:local` (including empty prefix `:local`).
    PrefixedName(String, String),
    /// A string literal (unescaped), with optional language tag or datatype
    /// handled by the parser via following tokens.
    String(String),
    /// An integer literal.
    Integer(i64),
    /// A decimal/double literal.
    Double(f64),
    /// `true` / `false`.
    Boolean(bool),
    /// Punctuation and operators.
    Punct(&'static str),
    /// A language tag from `@tag`.
    LangTag(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Variable(v) => write!(f, "?{v}"),
            Token::IriRef(iri) => write!(f, "<{iri}>"),
            Token::PrefixedName(p, l) => write!(f, "{p}:{l}"),
            Token::String(s) => write!(f, "\"{s}\""),
            Token::Integer(i) => write!(f, "{i}"),
            Token::Double(d) => write!(f, "{d}"),
            Token::Boolean(b) => write!(f, "{b}"),
            Token::Punct(p) => write!(f, "{p}"),
            Token::LangTag(t) => write!(f, "@{t}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexer error with 1-based line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparql lex error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// SPARQL keywords recognised case-insensitively.
const KEYWORDS: &[&str] = &[
    "SELECT", "ASK", "WHERE", "FILTER", "OPTIONAL", "UNION", "GRAPH", "PREFIX", "DISTINCT",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "BOUND", "REGEX", "STR", "AS",
];

/// Tokenizes a SPARQL document; appends [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize, usize)>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut line_start = 0usize;

    macro_rules! err {
        ($msg:expr) => {
            return Err(LexError {
                message: $msg.to_string(),
                line,
                column: pos - line_start + 1,
            })
        };
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        let col = pos - line_start + 1;
        match c {
            b'\n' => {
                pos += 1;
                line += 1;
                line_start = pos;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'?' | b'$' => {
                pos += 1;
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                if pos == start {
                    err!("empty variable name");
                }
                tokens.push((Token::Variable(input[start..pos].to_string()), line, col));
            }
            b'<' => {
                // '<' begins an IRI when followed by a non-space, non-'='
                // char that can appear in an IRI; otherwise it is the
                // comparison operator.
                let next = bytes.get(pos + 1).copied();
                let is_iri =
                    matches!(next, Some(n) if n != b' ' && n != b'=' && n != b'?' && n != b'<');
                if is_iri {
                    pos += 1;
                    let start = pos;
                    while pos < bytes.len() && bytes[pos] != b'>' {
                        if bytes[pos] == b'\n' {
                            err!("unterminated IRI");
                        }
                        pos += 1;
                    }
                    if pos >= bytes.len() {
                        err!("unterminated IRI");
                    }
                    if pos == start {
                        err!("empty IRI '<>' (base resolution is unsupported)");
                    }
                    tokens.push((Token::IriRef(input[start..pos].to_string()), line, col));
                    pos += 1;
                } else if next == Some(b'=') {
                    tokens.push((Token::Punct("<="), line, col));
                    pos += 2;
                } else {
                    tokens.push((Token::Punct("<"), line, col));
                    pos += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                pos += 1;
                let mut value = String::new();
                loop {
                    if pos >= bytes.len() {
                        err!("unterminated string");
                    }
                    let b = bytes[pos];
                    if b == quote {
                        pos += 1;
                        break;
                    }
                    if b == b'\\' {
                        pos += 1;
                        if pos >= bytes.len() {
                            err!("unterminated escape");
                        }
                        match bytes[pos] {
                            b'"' => value.push('"'),
                            b'\'' => value.push('\''),
                            b'\\' => value.push('\\'),
                            b'n' => value.push('\n'),
                            b'r' => value.push('\r'),
                            b't' => value.push('\t'),
                            _ => err!("unknown string escape"),
                        }
                        pos += 1;
                    } else if b == b'\n' {
                        err!("newline in string literal");
                    } else if b < 0x80 {
                        value.push(b as char);
                        pos += 1;
                    } else {
                        let s = match std::str::from_utf8(&bytes[pos..]) {
                            Ok(s) => s,
                            Err(_) => err!("invalid UTF-8 in string"),
                        };
                        let ch = s.chars().next().expect("non-empty");
                        value.push(ch);
                        pos += ch.len_utf8();
                    }
                }
                tokens.push((Token::String(value), line, col));
            }
            b'@' => {
                pos += 1;
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                if pos == start {
                    err!("empty language tag");
                }
                tokens.push((Token::LangTag(input[start..pos].to_string()), line, col));
            }
            b'{' | b'}' | b'(' | b')' | b'.' | b',' | b';' | b'*' | b'+' | b'/' => {
                // '.' could start a number like ".5"? SPARQL requires a digit
                // before '.', so '.' here is always punctuation... except
                // after a digit, which is handled in the number branch.
                let punct: &'static str = match c {
                    b'{' => "{",
                    b'}' => "}",
                    b'(' => "(",
                    b')' => ")",
                    b'.' => ".",
                    b',' => ",",
                    b';' => ";",
                    b'*' => "*",
                    b'+' => "+",
                    b'/' => "/",
                    _ => unreachable!(),
                };
                tokens.push((Token::Punct(punct), line, col));
                pos += 1;
            }
            b'=' => {
                tokens.push((Token::Punct("="), line, col));
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((Token::Punct("!="), line, col));
                    pos += 2;
                } else {
                    tokens.push((Token::Punct("!"), line, col));
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((Token::Punct(">="), line, col));
                    pos += 2;
                } else {
                    tokens.push((Token::Punct(">"), line, col));
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    tokens.push((Token::Punct("&&"), line, col));
                    pos += 2;
                } else {
                    err!("expected '&&'");
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    tokens.push((Token::Punct("||"), line, col));
                    pos += 2;
                } else {
                    err!("expected '||'");
                }
            }
            b'^' => {
                if bytes.get(pos + 1) == Some(&b'^') {
                    tokens.push((Token::Punct("^^"), line, col));
                    pos += 2;
                } else {
                    err!("expected '^^'");
                }
            }
            c if c == b'-' || c.is_ascii_digit() => {
                let start = pos;
                if c == b'-' {
                    pos += 1;
                }
                let mut is_double = false;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                if pos < bytes.len()
                    && bytes[pos] == b'.'
                    && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_double = true;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                if pos < bytes.len() && matches!(bytes[pos], b'e' | b'E') {
                    is_double = true;
                    pos += 1;
                    if pos < bytes.len() && matches!(bytes[pos], b'+' | b'-') {
                        pos += 1;
                    }
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                let text = &input[start..pos];
                if is_double {
                    match text.parse::<f64>() {
                        Ok(v) => tokens.push((Token::Double(v), line, col)),
                        Err(_) => err!(format!("invalid number '{text}'")),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => tokens.push((Token::Integer(v), line, col)),
                        Err(_) => err!(format!("invalid number '{text}'")),
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b':' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric()
                        || bytes[pos] == b'_'
                        || bytes[pos] == b'-')
                {
                    pos += 1;
                }
                let word = &input[start..pos];
                // A prefixed name when followed by ':'.
                if pos < bytes.len() && bytes[pos] == b':' {
                    pos += 1;
                    let local_start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric()
                            || bytes[pos] == b'_'
                            || bytes[pos] == b'-'
                            || (bytes[pos] == b'.'
                                && bytes
                                    .get(pos + 1)
                                    .is_some_and(|n| n.is_ascii_alphanumeric() || *n == b'_')))
                    {
                        pos += 1;
                    }
                    tokens.push((
                        Token::PrefixedName(word.to_string(), input[local_start..pos].to_string()),
                        line,
                        col,
                    ));
                    continue;
                }
                match word {
                    "a" => tokens.push((Token::Keyword("a".to_string()), line, col)),
                    "true" => tokens.push((Token::Boolean(true), line, col)),
                    "false" => tokens.push((Token::Boolean(false), line, col)),
                    _ => {
                        let upper = word.to_ascii_uppercase();
                        if KEYWORDS.contains(&upper.as_str()) {
                            tokens.push((Token::Keyword(upper), line, col));
                        } else {
                            err!(format!("unexpected word '{word}'"));
                        }
                    }
                }
            }
            other => err!(format!("unexpected character '{}'", other as char)),
        }
    }
    tokens.push((Token::Eof, line, bytes.len() - line_start + 1));
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|(t, _, _)| t)
            .collect()
    }

    #[test]
    fn tokenizes_select_query() {
        let tokens = kinds("SELECT ?name WHERE { ?p ex:name ?name . }");
        assert_eq!(tokens[0], Token::Keyword("SELECT".to_string()));
        assert_eq!(tokens[1], Token::Variable("name".to_string()));
        assert_eq!(tokens[2], Token::Keyword("WHERE".to_string()));
        assert_eq!(tokens[3], Token::Punct("{"));
        assert_eq!(
            tokens[5],
            Token::PrefixedName("ex".to_string(), "name".to_string())
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], Token::Keyword("SELECT".to_string()));
        assert_eq!(kinds("Select")[0], Token::Keyword("SELECT".to_string()));
    }

    #[test]
    fn a_keyword_stays_lowercase() {
        assert_eq!(kinds("a")[0], Token::Keyword("a".to_string()));
    }

    #[test]
    fn iri_vs_less_than() {
        let tokens = kinds("FILTER (?x < 5)");
        assert!(tokens.contains(&Token::Punct("<")));
        let tokens = kinds("<http://e.x/p>");
        assert_eq!(tokens[0], Token::IriRef("http://e.x/p".to_string()));
        let tokens = kinds("?x <= 5");
        assert!(tokens.contains(&Token::Punct("<=")));
    }

    #[test]
    fn strings_with_escapes() {
        let tokens = kinds(r#""he said \"hi\"\n""#);
        assert_eq!(tokens[0], Token::String("he said \"hi\"\n".to_string()));
        let tokens = kinds("'single'");
        assert_eq!(tokens[0], Token::String("single".to_string()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Token::Integer(42));
        assert_eq!(kinds("-7")[0], Token::Integer(-7));
        assert_eq!(kinds("3.25")[0], Token::Double(3.25));
        assert_eq!(kinds("1e2")[0], Token::Double(100.0));
    }

    #[test]
    fn operators() {
        let tokens = kinds("= != < <= > >= && || ! ^^");
        let expected = ["=", "!=", "<", "<=", ">", ">=", "&&", "||", "!", "^^"];
        for (i, e) in expected.iter().enumerate() {
            assert_eq!(tokens[i], Token::Punct(e), "at {i}");
        }
    }

    #[test]
    fn comments_skipped() {
        let tokens = kinds("SELECT # comment\n ?x");
        assert_eq!(tokens.len(), 3); // SELECT, ?x, EOF
    }

    #[test]
    fn default_prefix_name() {
        let tokens = kinds(":local");
        assert_eq!(
            tokens[0],
            Token::PrefixedName(String::new(), "local".to_string())
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("SELECT ?x\n WHERE { ~ }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains('~'));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn lang_tags() {
        let tokens = kinds("\"hola\"@es");
        assert_eq!(tokens[1], Token::LangTag("es".to_string()));
    }
}

//! Solution sequences: the results of SPARQL evaluation.

use std::collections::BTreeMap;
use std::fmt;

use mdm_rdf::Term;

/// One solution: a partial mapping from variable names to terms.
/// Unbound variables (possible under OPTIONAL/UNION) are simply absent.
pub type Solution = BTreeMap<String, Term>;

/// An ordered sequence of solutions plus the projected variable list.
#[derive(Clone, Debug, PartialEq)]
pub struct Solutions {
    pub variables: Vec<String>,
    pub rows: Vec<Solution>,
}

impl Solutions {
    /// An empty result with the given header.
    pub fn empty(variables: Vec<String>) -> Self {
        Solutions {
            variables,
            rows: Vec::new(),
        }
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The bound term for `variable` in row `index`.
    pub fn get(&self, index: usize, variable: &str) -> Option<&Term> {
        self.rows.get(index)?.get(variable)
    }

    /// Renders results as an aligned text table (`?var` headers, one row per
    /// solution), the form the MDM interface displays.
    pub fn render(&self) -> String {
        let headers: Vec<String> = self.variables.iter().map(|v| format!("?{v}")).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                self.variables
                    .iter()
                    .map(|v| row.get(v).map(|t| t.to_string()).unwrap_or_default())
                    .collect()
            })
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let push = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push(&headers, &mut out);
        for row in &rendered {
            push(row, &mut out);
        }
        out
    }
}

impl fmt::Display for Solutions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut row1 = Solution::new();
        row1.insert("n".to_string(), Term::string("Lionel Messi"));
        let mut row2 = Solution::new();
        row2.insert("n".to_string(), Term::string("Xavi"));
        let s = Solutions {
            variables: vec!["n".to_string()],
            rows: vec![row1, row2],
        };
        let text = s.render();
        assert!(text.starts_with("?n\n"));
        assert!(text.contains("Lionel Messi"));
    }

    #[test]
    fn unbound_variables_render_empty() {
        let s = Solutions {
            variables: vec!["a".to_string(), "b".to_string()],
            rows: vec![Solution::new()],
        };
        let rendered = s.render();
        assert_eq!(rendered.lines().count(), 2);
    }

    #[test]
    fn accessors() {
        let mut row = Solution::new();
        row.insert("x".to_string(), Term::integer(1));
        let s = Solutions {
            variables: vec!["x".to_string()],
            rows: vec![row],
        };
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.get(0, "x"), Some(&Term::integer(1)));
        assert_eq!(s.get(0, "y"), None);
        assert_eq!(s.get(1, "x"), None);
    }
}

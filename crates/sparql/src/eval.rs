//! The SPARQL evaluator.
//!
//! Evaluation is solution-set based: a [`GraphPattern`] maps a sequence of
//! partial bindings to an extended sequence. BGPs fold triple patterns
//! left-to-right (index-backed matching from `mdm-rdf`), OPTIONAL is a left
//! join, UNION concatenates, FILTER drops rows whose expression is not
//! *true* (error → false, per SPARQL's effective boolean value rules).

use std::cmp::Ordering;
use std::fmt;

use mdm_rdf::dataset::Dataset;
use mdm_rdf::graph::Graph;
use mdm_rdf::pattern::Bindings;
use mdm_rdf::term::{xsd, Term};

use crate::ast::{CompareOp, Expression, GraphPattern, GraphTarget, Query, QueryForm};
use crate::parser::parse_query;
use crate::result::{Solution, Solutions};

/// An evaluation error (cascades parser errors for the convenience APIs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sparql evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Parses and executes `query` against a dataset. The active graph is the
/// dataset's default graph; `GRAPH` blocks switch to named graphs.
pub fn execute(query: &str, dataset: &Dataset) -> Result<Solutions, EvalError> {
    let parsed = parse_query(query).map_err(|e| EvalError(e.to_string()))?;
    execute_parsed(&parsed, dataset)
}

/// Executes against a bare graph (wrapped as the default graph).
pub fn execute_select_on_graph(query: &str, graph: &Graph) -> Result<Solutions, EvalError> {
    let mut dataset = Dataset::new();
    dataset.default_graph_mut().extend_from(graph);
    execute(query, &dataset)
}

/// Executes an already-parsed query.
pub fn execute_parsed(query: &Query, dataset: &Dataset) -> Result<Solutions, EvalError> {
    let seed = vec![Bindings::new()];
    let mut rows = eval_pattern(&query.pattern, dataset, dataset.default_graph(), seed);

    // ORDER BY.
    if !query.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (variable, descending) in &query.order_by {
                let ordering = compare_optional_terms(a.get(variable), b.get(variable));
                let ordering = if *descending {
                    ordering.reverse()
                } else {
                    ordering
                };
                if ordering != Ordering::Equal {
                    return ordering;
                }
            }
            Ordering::Equal
        });
    }

    // OFFSET / LIMIT.
    let offset = query.offset.unwrap_or(0);
    let rows: Vec<Bindings> = rows
        .into_iter()
        .skip(offset)
        .take(query.limit.unwrap_or(usize::MAX))
        .collect();

    match &query.form {
        QueryForm::Ask => {
            // ASK renders as a single boolean row under variable "ask".
            let mut solutions = Solutions::empty(vec!["ask".to_string()]);
            let mut row = Solution::new();
            row.insert(
                "ask".to_string(),
                Term::Literal(mdm_rdf::term::Literal::boolean(!rows.is_empty())),
            );
            solutions.rows.push(row);
            Ok(solutions)
        }
        QueryForm::Select {
            distinct,
            variables,
        } => {
            let projected = if variables.is_empty() {
                query.pattern.variables()
            } else {
                variables.clone()
            };
            let mut out_rows: Vec<Solution> = rows
                .into_iter()
                .map(|bindings| {
                    projected
                        .iter()
                        .filter_map(|v| bindings.get(v).map(|t| (v.clone(), t.clone())))
                        .collect::<Solution>()
                })
                .collect();
            if *distinct {
                let mut seen = std::collections::BTreeSet::new();
                out_rows.retain(|row| seen.insert(row.clone()));
            }
            Ok(Solutions {
                variables: projected,
                rows: out_rows,
            })
        }
    }
}

/// Orders possibly-unbound terms: unbound < bound, then term order with
/// numeric literals compared numerically.
fn compare_optional_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => match (numeric_value(x), numeric_value(y)) {
            (Some(nx), Some(ny)) => nx.total_cmp(&ny),
            _ => x.cmp(y),
        },
    }
}

fn numeric_value(term: &Term) -> Option<f64> {
    let literal = term.as_literal()?;
    match literal.datatype().as_str() {
        xsd::INTEGER | xsd::DOUBLE => literal.as_f64(),
        _ => None,
    }
}

/// Core recursion: evaluates `pattern` under each binding in `input` against
/// `active` (the current graph), with `dataset` available for GRAPH blocks.
fn eval_pattern(
    pattern: &GraphPattern,
    dataset: &Dataset,
    active: &Graph,
    input: Vec<Bindings>,
) -> Vec<Bindings> {
    match pattern {
        GraphPattern::Bgp(triples) => {
            let mut solutions = input;
            for triple in triples {
                let mut next = Vec::new();
                for bindings in &solutions {
                    next.extend(triple.match_against(active, bindings));
                }
                solutions = next;
                if solutions.is_empty() {
                    break;
                }
            }
            solutions
        }
        GraphPattern::Group(parts) => {
            let mut solutions = input;
            for part in parts {
                solutions = eval_pattern(part, dataset, active, solutions);
                if solutions.is_empty() {
                    break;
                }
            }
            solutions
        }
        GraphPattern::Optional(inner) => {
            let mut out = Vec::new();
            for bindings in input {
                let extended = eval_pattern(inner, dataset, active, vec![bindings.clone()]);
                if extended.is_empty() {
                    out.push(bindings);
                } else {
                    out.extend(extended);
                }
            }
            out
        }
        GraphPattern::Union(a, b) => {
            let mut out = eval_pattern(a, dataset, active, input.clone());
            out.extend(eval_pattern(b, dataset, active, input));
            out
        }
        GraphPattern::Filter(expression, inner) => {
            let solutions = eval_pattern(inner, dataset, active, input);
            solutions
                .into_iter()
                .filter(|bindings| effective_boolean(expression, bindings))
                .collect()
        }
        GraphPattern::Graph(target, inner) => match target {
            GraphTarget::Active => eval_pattern(inner, dataset, active, input),
            GraphTarget::Named(iri) => match dataset.named_graph(iri) {
                Some(graph) => eval_pattern(inner, dataset, graph, input),
                None => Vec::new(),
            },
            GraphTarget::Variable(variable) => {
                let mut out = Vec::new();
                let names: Vec<_> = dataset.graph_names().cloned().collect();
                for name in names {
                    let graph = dataset
                        .named_graph(&name)
                        .expect("name enumerated from dataset");
                    let name_term = Term::Iri(name.clone());
                    // Respect an existing binding of the graph variable.
                    let seeds: Vec<Bindings> = input
                        .iter()
                        .filter(|b| match b.get(variable) {
                            Some(existing) => *existing == name_term,
                            None => true,
                        })
                        .map(|b| {
                            let mut b = b.clone();
                            b.insert(variable.clone(), name_term.clone());
                            b
                        })
                        .collect();
                    out.extend(eval_pattern(inner, dataset, graph, seeds));
                }
                out
            }
        },
    }
}

/// SPARQL effective boolean value: errors (type mismatch, unbound variable
/// outside BOUND) make the filter reject the row.
fn effective_boolean(expression: &Expression, bindings: &Bindings) -> bool {
    matches!(
        eval_expression(expression, bindings),
        Ok(ExprValue::Bool(true))
    )
}

/// Evaluated expression values.
enum ExprValue {
    Term(Term),
    Bool(bool),
    Str(String),
}

fn eval_expression(expression: &Expression, bindings: &Bindings) -> Result<ExprValue, EvalError> {
    match expression {
        Expression::Variable(v) => bindings
            .get(v)
            .cloned()
            .map(ExprValue::Term)
            .ok_or_else(|| EvalError(format!("unbound variable ?{v}"))),
        Expression::Constant(t) => Ok(ExprValue::Term(t.clone())),
        Expression::Bound(v) => Ok(ExprValue::Bool(bindings.contains_key(v))),
        Expression::Not(inner) => match eval_expression(inner, bindings)? {
            ExprValue::Bool(b) => Ok(ExprValue::Bool(!b)),
            ExprValue::Term(t) => Ok(ExprValue::Bool(!term_truthiness(&t)?)),
            _ => Err(EvalError("! applied to non-boolean".to_string())),
        },
        Expression::And(a, b) => {
            let left = coerce_bool(eval_expression(a, bindings)?)?;
            if !left {
                return Ok(ExprValue::Bool(false));
            }
            Ok(ExprValue::Bool(coerce_bool(eval_expression(b, bindings)?)?))
        }
        Expression::Or(a, b) => {
            let left = coerce_bool(eval_expression(a, bindings)?)?;
            if left {
                return Ok(ExprValue::Bool(true));
            }
            Ok(ExprValue::Bool(coerce_bool(eval_expression(b, bindings)?)?))
        }
        Expression::Str(inner) => {
            let value = eval_expression(inner, bindings)?;
            Ok(ExprValue::Str(match value {
                ExprValue::Term(t) => match t {
                    Term::Iri(iri) => iri.as_str().to_string(),
                    Term::Literal(lit) => lit.lexical().to_string(),
                    Term::Blank(b) => b.label().to_string(),
                },
                ExprValue::Str(s) => s,
                ExprValue::Bool(b) => b.to_string(),
            }))
        }
        Expression::Regex(target, pattern) => {
            let text = match eval_expression(&Expression::Str((*target).clone()), bindings)? {
                ExprValue::Str(s) => s,
                _ => unreachable!("Str always yields Str"),
            };
            Ok(ExprValue::Bool(regex_lite(&text, pattern)))
        }
        Expression::Compare(op, a, b) => {
            let left = eval_expression(a, bindings)?;
            let right = eval_expression(b, bindings)?;
            let ordering = compare_values(&left, &right)?;
            let result = match op {
                CompareOp::Eq => ordering == Ordering::Equal,
                CompareOp::Ne => ordering != Ordering::Equal,
                CompareOp::Lt => ordering == Ordering::Less,
                CompareOp::Le => ordering != Ordering::Greater,
                CompareOp::Gt => ordering == Ordering::Greater,
                CompareOp::Ge => ordering != Ordering::Less,
            };
            Ok(ExprValue::Bool(result))
        }
    }
}

fn coerce_bool(value: ExprValue) -> Result<bool, EvalError> {
    match value {
        ExprValue::Bool(b) => Ok(b),
        ExprValue::Term(t) => term_truthiness(&t),
        _ => Err(EvalError("expected boolean".to_string())),
    }
}

fn term_truthiness(term: &Term) -> Result<bool, EvalError> {
    match term {
        Term::Literal(lit) => lit
            .as_bool()
            .ok_or_else(|| EvalError(format!("'{lit}' is not boolean"))),
        _ => Err(EvalError("non-literal in boolean position".to_string())),
    }
}

fn compare_values(a: &ExprValue, b: &ExprValue) -> Result<Ordering, EvalError> {
    // Numeric comparison when both sides coerce to numbers; string
    // comparison when both are stringy; RDF-term comparison otherwise.
    let num = |v: &ExprValue| -> Option<f64> {
        match v {
            ExprValue::Term(t) => numeric_value(t),
            _ => None,
        }
    };
    if let (Some(x), Some(y)) = (num(a), num(b)) {
        return Ok(x.total_cmp(&y));
    }
    let string = |v: &ExprValue| -> Option<String> {
        match v {
            ExprValue::Str(s) => Some(s.clone()),
            ExprValue::Term(Term::Literal(l)) if l.datatype().as_str() == xsd::STRING => {
                Some(l.lexical().to_string())
            }
            _ => None,
        }
    };
    if let (Some(x), Some(y)) = (string(a), string(b)) {
        return Ok(x.cmp(&y));
    }
    match (a, b) {
        (ExprValue::Term(x), ExprValue::Term(y)) => Ok(x.cmp(y)),
        (ExprValue::Bool(x), ExprValue::Bool(y)) => Ok(x.cmp(y)),
        _ => Err(EvalError("incomparable values".to_string())),
    }
}

/// A tiny regex: supports plain substring search plus `^`/`$` anchors and
/// `.*` wildcards — the patterns MDM's interface generates.
fn regex_lite(text: &str, pattern: &str) -> bool {
    let (anchored_start, pattern) = match pattern.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let (anchored_end, pattern) = match pattern.strip_suffix('$') {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let parts: Vec<&str> = pattern.split(".*").collect();
    // Match parts in order.
    let mut position = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        match text[position..].find(part) {
            Some(found) => {
                if i == 0 && anchored_start && found != 0 {
                    return false;
                }
                position += found + part.len();
            }
            None => return false,
        }
    }
    if anchored_end {
        if let Some(last) = parts.last() {
            if !last.is_empty() && !text.ends_with(last) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_rdf::dataset::GraphName;
    use mdm_rdf::Iri;

    /// A small football dataset in the shape of the paper's global graph
    /// instance data.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let g = ds.default_graph_mut();
        let ex = "http://e.x/";
        let triples = [
            ("messi", "a", "Player"),
            ("messi", "name", "\"Lionel Messi\""),
            ("messi", "team", "fcb"),
            ("lewa", "a", "Player"),
            ("lewa", "name", "\"Robert Lewandowski\""),
            ("lewa", "team", "bayern"),
            ("fcb", "a", "Team"),
            ("fcb", "name", "\"FC Barcelona\""),
            ("bayern", "a", "Team"),
            ("bayern", "name", "\"Bayern Munich\""),
        ];
        for (s, p, o) in triples {
            let subject = Term::iri(format!("{ex}{s}"));
            let predicate = if p == "a" {
                mdm_rdf::vocab::rdf::TYPE.term()
            } else {
                Term::iri(format!("{ex}{p}"))
            };
            let object = if let Some(text) = o.strip_prefix('"') {
                Term::string(text.trim_end_matches('"'))
            } else {
                Term::iri(format!("{ex}{o}"))
            };
            g.insert((subject, predicate, object));
        }
        // Heights for FILTER tests.
        g.insert((
            Term::iri(format!("{ex}messi")),
            Term::iri(format!("{ex}height")),
            Term::double(170.18),
        ));
        g.insert((
            Term::iri(format!("{ex}lewa")),
            Term::iri(format!("{ex}height")),
            Term::double(184.0),
        ));
        ds
    }

    #[test]
    fn join_across_patterns() {
        let results = execute(
            r#"SELECT ?pname ?tname WHERE {
                ?p a <http://e.x/Player> .
                ?p <http://e.x/name> ?pname .
                ?p <http://e.x/team> ?t .
                ?t <http://e.x/name> ?tname .
            }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let rendered = results.render();
        assert!(rendered.contains("Lionel Messi"));
        assert!(rendered.contains("FC Barcelona"));
    }

    #[test]
    fn filter_numeric() {
        let results = execute(
            r#"SELECT ?p WHERE {
                ?p <http://e.x/height> ?h .
                FILTER (?h > 180)
            }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, "p").unwrap().short(), "lewa");
    }

    #[test]
    fn optional_keeps_unmatched() {
        let mut ds = dataset();
        ds.default_graph_mut().insert((
            Term::iri("http://e.x/newguy"),
            mdm_rdf::vocab::rdf::TYPE.term(),
            Term::iri("http://e.x/Player"),
        ));
        let results = execute(
            r#"SELECT ?p ?n WHERE {
                ?p a <http://e.x/Player> .
                OPTIONAL { ?p <http://e.x/name> ?n . }
            }"#,
            &ds,
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        let unnamed: Vec<_> = results
            .rows
            .iter()
            .filter(|row| !row.contains_key("n"))
            .collect();
        assert_eq!(unnamed.len(), 1);
    }

    #[test]
    fn union_concatenates() {
        let results = execute(
            r#"SELECT ?x WHERE {
                { ?x a <http://e.x/Player> . } UNION { ?x a <http://e.x/Team> . }
            }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn distinct_deduplicates() {
        let results = execute(
            r#"SELECT DISTINCT ?t WHERE { ?p <http://e.x/team> ?t . ?p a <http://e.x/Player> . }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn ask_true_and_false() {
        let truthy = execute("ASK { ?p a <http://e.x/Player> . }", &dataset()).unwrap();
        assert_eq!(
            truthy
                .get(0, "ask")
                .unwrap()
                .as_literal()
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let falsy = execute("ASK { ?p a <http://e.x/Nothing> . }", &dataset()).unwrap();
        assert_eq!(
            falsy.get(0, "ask").unwrap().as_literal().unwrap().as_bool(),
            Some(false)
        );
    }

    #[test]
    fn order_by_numeric_and_limit() {
        let results = execute(
            r#"SELECT ?p WHERE { ?p <http://e.x/height> ?h . } ORDER BY DESC(?h) LIMIT 1"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, "p").unwrap().short(), "lewa");
    }

    #[test]
    fn offset_skips() {
        let results = execute(
            r#"SELECT ?p WHERE { ?p <http://e.x/height> ?h . } ORDER BY ?h OFFSET 1"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, "p").unwrap().short(), "lewa");
    }

    #[test]
    fn named_graph_matching() {
        let mut ds = dataset();
        let w1 = Iri::new("http://e.x/w1");
        ds.insert(
            &GraphName::Named(w1.clone()),
            (
                Term::iri("http://e.x/Player"),
                Term::iri("http://e.x/covered"),
                Term::iri("http://e.x/name"),
            ),
        );
        // Named graph via constant.
        let results = execute(
            r#"SELECT ?c WHERE { GRAPH <http://e.x/w1> { ?c <http://e.x/covered> ?f . } }"#,
            &ds,
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        // Named graph via variable binds the graph name.
        let results = execute(
            r#"SELECT ?g ?c WHERE { GRAPH ?g { ?c <http://e.x/covered> ?f . } }"#,
            &ds,
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, "g").unwrap(), &Term::Iri(w1));
    }

    #[test]
    fn bound_filter() {
        let mut ds = dataset();
        ds.default_graph_mut().insert((
            Term::iri("http://e.x/newguy"),
            mdm_rdf::vocab::rdf::TYPE.term(),
            Term::iri("http://e.x/Player"),
        ));
        let results = execute(
            r#"SELECT ?p WHERE {
                ?p a <http://e.x/Player> .
                OPTIONAL { ?p <http://e.x/name> ?n . }
                FILTER (!BOUND(?n))
            }"#,
            &ds,
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, "p").unwrap().short(), "newguy");
    }

    #[test]
    fn regex_filter() {
        let results = execute(
            r#"SELECT ?n WHERE { ?p <http://e.x/name> ?n . FILTER REGEX(?n, "Lion") }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn regex_lite_semantics() {
        assert!(regex_lite("Lionel Messi", "Messi"));
        assert!(regex_lite("Lionel Messi", "^Lionel"));
        assert!(!regex_lite("Lionel Messi", "^Messi"));
        assert!(regex_lite("Lionel Messi", "Messi$"));
        assert!(!regex_lite("Lionel Messi", "Lionel$"));
        assert!(regex_lite("Lionel Messi", "^Lio.*ssi$"));
        assert!(!regex_lite("Lionel Messi", "^Lio.*xyz$"));
    }

    #[test]
    fn string_equality_filter() {
        let results = execute(
            r#"SELECT ?p WHERE { ?p <http://e.x/name> ?n . FILTER (?n = "Lionel Messi") }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn filter_error_rejects_row() {
        // Comparing an IRI with a number errors → row filtered out, query ok.
        let results = execute(
            r#"SELECT ?p WHERE { ?p a <http://e.x/Player> . FILTER (?p > 5) }"#,
            &dataset(),
        )
        .unwrap();
        assert_eq!(results.len(), 0);
    }

    #[test]
    fn empty_bgp_yields_one_empty_solution() {
        let results = execute("SELECT * WHERE { }", &dataset()).unwrap();
        assert_eq!(results.len(), 1);
    }
}

//! The SPARQL abstract syntax tree.

use mdm_rdf::pattern::TriplePattern;
use mdm_rdf::{Iri, Term};

/// Which result form the query uses.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryForm {
    /// `SELECT ?a ?b` (empty projection list means `SELECT *`).
    Select {
        distinct: bool,
        variables: Vec<String>,
    },
    /// `ASK`.
    Ask,
}

/// The graph a pattern block is matched against.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphTarget {
    /// The dataset's active (default) graph.
    Active,
    /// `GRAPH <iri> { … }`.
    Named(Iri),
    /// `GRAPH ?g { … }` — iterate all named graphs, binding `?g`.
    Variable(String),
}

/// A graph pattern (the contents of a `WHERE` clause or nested block).
#[derive(Clone, Debug, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// Sequential conjunction of sub-patterns (joins their solutions).
    Group(Vec<GraphPattern>),
    /// `OPTIONAL { … }` (left join).
    Optional(Box<GraphPattern>),
    /// `{ … } UNION { … }`.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `FILTER expr`.
    Filter(Expression, Box<GraphPattern>),
    /// `GRAPH target { … }`.
    Graph(GraphTarget, Box<GraphPattern>),
}

impl GraphPattern {
    /// All variables mentioned in triple patterns, in first-use order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        let mut push = |v: &str| {
            if !out.iter().any(|existing| existing == v) {
                out.push(v.to_string());
            }
        };
        match self {
            GraphPattern::Bgp(patterns) => {
                for pattern in patterns {
                    for v in pattern.variables() {
                        push(v);
                    }
                }
            }
            GraphPattern::Group(parts) => {
                for part in parts {
                    part.collect_variables(out);
                }
            }
            GraphPattern::Optional(inner) => inner.collect_variables(out),
            GraphPattern::Union(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            GraphPattern::Filter(_, inner) => inner.collect_variables(out),
            GraphPattern::Graph(target, inner) => {
                if let GraphTarget::Variable(v) = target {
                    push(v);
                }
                inner.collect_variables(out);
            }
        }
    }
}

/// Comparison operators in FILTER expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A FILTER expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Variable(String),
    /// A constant term.
    Constant(Term),
    /// Binary comparison.
    Compare(CompareOp, Box<Expression>, Box<Expression>),
    /// Conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Negation.
    Not(Box<Expression>),
    /// `BOUND(?v)`.
    Bound(String),
    /// `REGEX(str, pattern)` — substring / anchored-wildcard match.
    Regex(Box<Expression>, String),
    /// `STR(expr)` — the lexical form as a plain string.
    Str(Box<Expression>),
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub form: QueryForm,
    pub pattern: GraphPattern,
    pub order_by: Vec<(String, bool)>, // (variable, descending)
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

impl Query {
    /// The variables the query projects (expanding `SELECT *` against the
    /// pattern's variables).
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Select { variables, .. } if !variables.is_empty() => variables.clone(),
            _ => self.pattern.variables(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdm_rdf::pattern::PatternTerm;

    #[test]
    fn variables_collected_in_order() {
        let pattern = GraphPattern::Bgp(vec![
            TriplePattern::new(
                PatternTerm::var("p"),
                Term::iri("ex:name"),
                PatternTerm::var("n"),
            ),
            TriplePattern::new(
                PatternTerm::var("p"),
                Term::iri("ex:team"),
                PatternTerm::var("t"),
            ),
        ]);
        assert_eq!(pattern.variables(), vec!["p", "n", "t"]);
    }

    #[test]
    fn graph_variable_is_collected() {
        let pattern = GraphPattern::Graph(
            GraphTarget::Variable("g".to_string()),
            Box::new(GraphPattern::Bgp(vec![])),
        );
        assert_eq!(pattern.variables(), vec!["g"]);
    }

    #[test]
    fn select_star_expands() {
        let q = Query {
            form: QueryForm::Select {
                distinct: false,
                variables: vec![],
            },
            pattern: GraphPattern::Bgp(vec![TriplePattern::new(
                PatternTerm::var("s"),
                PatternTerm::var("p"),
                PatternTerm::var("o"),
            )]),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_variables(), vec!["s", "p", "o"]);
    }
}

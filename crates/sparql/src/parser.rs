//! The recursive-descent SPARQL parser.

use std::fmt;

use mdm_rdf::namespace::PrefixMap;
use mdm_rdf::pattern::{PatternTerm, TriplePattern};
use mdm_rdf::term::{Iri, Literal, Term};
use mdm_rdf::vocab;

use crate::ast::{CompareOp, Expression, GraphPattern, GraphTarget, Query, QueryForm};
use crate::lexer::{tokenize, LexError, Token};

/// A parse error with 1-based position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparql parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// Parses a SPARQL query. `PREFIX` declarations in the query extend (and
/// shadow) the defaults of [`PrefixMap::with_defaults`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: PrefixMap::with_defaults(),
    };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<(Token, usize, usize)>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (_, line, column) = self.tokens[self.pos.min(self.tokens.len() - 1)];
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.bump() {
            Token::Punct(found) if found == p => Ok(()),
            other => Err(self.error(format!("expected '{p}', found '{other}'"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Token::Keyword(found) if found == kw => Ok(()),
            other => Err(self.error(format!("expected {kw}, found '{other}'"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Token::Eof => Ok(()),
            other => Err(self.error(format!("unexpected trailing '{other}'"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- query structure ----

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        while self.try_keyword("PREFIX") {
            let (prefix, ns) = self.parse_prefix_decl()?;
            self.prefixes.insert(prefix, ns);
        }
        let form = if self.try_keyword("SELECT") {
            let distinct = self.try_keyword("DISTINCT");
            let mut variables = Vec::new();
            if matches!(self.peek(), Token::Punct("*")) {
                self.bump();
            } else {
                while let Token::Variable(_) = self.peek() {
                    if let Token::Variable(v) = self.bump() {
                        variables.push(v);
                    }
                }
                if variables.is_empty() {
                    return Err(self.error("SELECT requires '*' or at least one variable"));
                }
            }
            QueryForm::Select {
                distinct,
                variables,
            }
        } else if self.try_keyword("ASK") {
            QueryForm::Ask
        } else {
            return Err(self.error("expected SELECT or ASK"));
        };
        // WHERE is optional in SPARQL for ASK; we accept it optionally.
        let _ = self.try_keyword("WHERE");
        let pattern = self.parse_group_pattern()?;

        let mut order_by = Vec::new();
        if self.try_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    Token::Variable(v) => {
                        self.bump();
                        order_by.push((v, false));
                    }
                    Token::Keyword(k) if k == "ASC" || k == "DESC" => {
                        self.bump();
                        self.expect_punct("(")?;
                        let v = match self.bump() {
                            Token::Variable(v) => v,
                            other => {
                                return Err(
                                    self.error(format!("expected variable, found '{other}'"))
                                )
                            }
                        };
                        self.expect_punct(")")?;
                        order_by.push((v, k == "DESC"));
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.error("ORDER BY requires at least one key"));
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.try_keyword("LIMIT") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                    other => return Err(self.error(format!("bad LIMIT '{other}'"))),
                }
            } else if self.try_keyword("OFFSET") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => offset = Some(n as usize),
                    other => return Err(self.error(format!("bad OFFSET '{other}'"))),
                }
            } else {
                break;
            }
        }
        Ok(Query {
            form,
            pattern,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_prefix_decl(&mut self) -> Result<(String, String), ParseError> {
        // The lexer tokenizes `ex:` with empty local as PrefixedName("ex",""),
        // followed by the IRI.
        match self.bump() {
            Token::PrefixedName(prefix, local) if local.is_empty() => match self.bump() {
                Token::IriRef(iri) => Ok((prefix, iri)),
                other => Err(self.error(format!("expected IRI after prefix, found '{other}'"))),
            },
            other => Err(self.error(format!("expected 'prefix:', found '{other}'"))),
        }
    }

    // ---- graph patterns ----

    /// Parses `{ … }` including FILTERs, OPTIONALs, UNIONs and nested groups.
    fn parse_group_pattern(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect_punct("{")?;
        let mut parts: Vec<GraphPattern> = Vec::new();
        let mut filters: Vec<Expression> = Vec::new();
        let mut bgp: Vec<TriplePattern> = Vec::new();

        macro_rules! flush_bgp {
            () => {
                if !bgp.is_empty() {
                    parts.push(GraphPattern::Bgp(std::mem::take(&mut bgp)));
                }
            };
        }

        loop {
            match self.peek().clone() {
                Token::Punct("}") => {
                    self.bump();
                    break;
                }
                Token::Keyword(k) if k == "FILTER" => {
                    self.bump();
                    filters.push(self.parse_filter_expression()?);
                }
                Token::Keyword(k) if k == "OPTIONAL" => {
                    self.bump();
                    flush_bgp!();
                    let inner = self.parse_group_pattern()?;
                    parts.push(GraphPattern::Optional(Box::new(inner)));
                }
                Token::Keyword(k) if k == "GRAPH" => {
                    self.bump();
                    flush_bgp!();
                    let target = match self.bump() {
                        Token::IriRef(iri) => GraphTarget::Named(Iri::new(iri)),
                        Token::PrefixedName(p, l) => {
                            GraphTarget::Named(self.expand_prefixed(&p, &l)?)
                        }
                        Token::Variable(v) => GraphTarget::Variable(v),
                        other => return Err(self.error(format!("bad GRAPH target '{other}'"))),
                    };
                    let inner = self.parse_group_pattern()?;
                    parts.push(GraphPattern::Graph(target, Box::new(inner)));
                }
                Token::Punct("{") => {
                    flush_bgp!();
                    let mut left = self.parse_group_pattern()?;
                    while self.try_keyword("UNION") {
                        let right = self.parse_group_pattern()?;
                        left = GraphPattern::Union(Box::new(left), Box::new(right));
                    }
                    parts.push(left);
                }
                Token::Punct(".") => {
                    self.bump();
                }
                Token::Eof => return Err(self.error("unterminated group pattern")),
                _ => {
                    let triples = self.parse_triples_block()?;
                    bgp.extend(triples);
                }
            }
        }
        flush_bgp!();
        let mut pattern = match parts.len() {
            0 => GraphPattern::Bgp(vec![]),
            1 => parts.pop().expect("len checked"),
            _ => GraphPattern::Group(parts),
        };
        for filter in filters {
            pattern = GraphPattern::Filter(filter, Box::new(pattern));
        }
        Ok(pattern)
    }

    /// One subject with predicate-object lists (`;` and `,` supported).
    fn parse_triples_block(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let subject = self.parse_pattern_term()?;
        let mut out = Vec::new();
        loop {
            let predicate = self.parse_pattern_term()?;
            loop {
                let object = self.parse_pattern_term()?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if matches!(self.peek(), Token::Punct(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Token::Punct(";")) {
                self.bump();
                // Allow dangling ';' before '.' or '}'.
                if matches!(self.peek(), Token::Punct(".") | Token::Punct("}")) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_pattern_term(&mut self) -> Result<PatternTerm, ParseError> {
        match self.bump() {
            Token::Variable(v) => Ok(PatternTerm::Var(v)),
            Token::IriRef(iri) => Ok(PatternTerm::Const(Term::iri(iri))),
            Token::PrefixedName(p, l) => {
                Ok(PatternTerm::Const(Term::Iri(self.expand_prefixed(&p, &l)?)))
            }
            Token::Keyword(k) if k == "a" => Ok(PatternTerm::Const(vocab::rdf::TYPE.term())),
            Token::String(s) => {
                // Optional @lang or ^^datatype suffix.
                match self.peek().clone() {
                    Token::LangTag(tag) => {
                        self.bump();
                        Ok(PatternTerm::Const(Term::Literal(Literal::lang_string(
                            s, tag,
                        ))))
                    }
                    Token::Punct("^^") => {
                        self.bump();
                        let datatype = match self.bump() {
                            Token::IriRef(iri) => Iri::new(iri),
                            Token::PrefixedName(p, l) => self.expand_prefixed(&p, &l)?,
                            other => return Err(self.error(format!("bad datatype '{other}'"))),
                        };
                        Ok(PatternTerm::Const(Term::Literal(Literal::typed(
                            s, datatype,
                        ))))
                    }
                    _ => Ok(PatternTerm::Const(Term::string(s))),
                }
            }
            Token::Integer(i) => Ok(PatternTerm::Const(Term::integer(i))),
            Token::Double(d) => Ok(PatternTerm::Const(Term::double(d))),
            Token::Boolean(b) => Ok(PatternTerm::Const(Term::Literal(Literal::boolean(b)))),
            other => Err(self.error(format!("expected term, found '{other}'"))),
        }
    }

    fn expand_prefixed(&self, prefix: &str, local: &str) -> Result<Iri, ParseError> {
        self.prefixes
            .expand_prefix(prefix)
            .map(|ns| Iri::new(format!("{ns}{local}")))
            .ok_or_else(|| self.error(format!("unknown prefix '{prefix}:'")))
    }

    // ---- filter expressions ----

    fn parse_filter_expression(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Token::Punct("||")) {
            self.bump();
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_comparison()?;
        while matches!(self.peek(), Token::Punct("&&")) {
            self.bump();
            let right = self.parse_comparison()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expression, ParseError> {
        let left = self.parse_primary()?;
        let op = match self.peek() {
            Token::Punct("=") => Some(CompareOp::Eq),
            Token::Punct("!=") => Some(CompareOp::Ne),
            Token::Punct("<") => Some(CompareOp::Lt),
            Token::Punct("<=") => Some(CompareOp::Le),
            Token::Punct(">") => Some(CompareOp::Gt),
            Token::Punct(">=") => Some(CompareOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_primary()?;
            Ok(Expression::Compare(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            Token::Punct("(") => {
                self.bump();
                let inner = self.parse_filter_expression()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            Token::Punct("!") => {
                self.bump();
                let inner = self.parse_primary()?;
                Ok(Expression::Not(Box::new(inner)))
            }
            Token::Keyword(k) if k == "BOUND" => {
                self.bump();
                self.expect_punct("(")?;
                let v = match self.bump() {
                    Token::Variable(v) => v,
                    other => {
                        return Err(self.error(format!("BOUND expects a variable, found '{other}'")))
                    }
                };
                self.expect_punct(")")?;
                Ok(Expression::Bound(v))
            }
            Token::Keyword(k) if k == "REGEX" => {
                self.bump();
                self.expect_punct("(")?;
                let target = self.parse_filter_expression()?;
                self.expect_punct(",")?;
                let pattern = match self.bump() {
                    Token::String(s) => s,
                    other => {
                        return Err(
                            self.error(format!("REGEX expects a string pattern, found '{other}'"))
                        )
                    }
                };
                self.expect_punct(")")?;
                Ok(Expression::Regex(Box::new(target), pattern))
            }
            Token::Keyword(k) if k == "STR" => {
                self.bump();
                self.expect_punct("(")?;
                let inner = self.parse_filter_expression()?;
                self.expect_punct(")")?;
                Ok(Expression::Str(Box::new(inner)))
            }
            Token::Variable(v) => {
                self.bump();
                Ok(Expression::Variable(v))
            }
            _ => {
                let term = self.parse_pattern_term()?;
                match term {
                    PatternTerm::Const(t) => Ok(Expression::Constant(t)),
                    PatternTerm::Var(v) => Ok(Expression::Variable(v)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure8_style_query() {
        // The query MDM generates in Figure 8: names of players and teams.
        let q = parse_query(
            r#"
            PREFIX ex: <http://www.essi.upc.edu/~snadal/example/>
            PREFIX sc: <http://schema.org/>
            SELECT ?teamName ?playerName
            WHERE {
                ?player a ex:Player .
                ?player ex:hasName ?playerName .
                ?player ex:belongsTo ?team .
                ?team a sc:SportsTeam .
                ?team ex:hasName ?teamName .
            }
            "#,
        )
        .unwrap();
        match &q.form {
            QueryForm::Select { variables, .. } => {
                assert_eq!(variables, &["teamName", "playerName"]);
            }
            _ => panic!("expected SELECT"),
        }
        match &q.pattern {
            GraphPattern::Bgp(triples) => assert_eq!(triples.len(), 5),
            other => panic!("expected flat BGP, got {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let q = parse_query("SELECT * WHERE { ?s ?p ?o . }").unwrap();
        assert_eq!(q.projected_variables(), vec!["s", "p", "o"]);
    }

    #[test]
    fn distinct_flag() {
        let q = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o . }").unwrap();
        assert!(matches!(q.form, QueryForm::Select { distinct: true, .. }));
    }

    #[test]
    fn ask_form() {
        let q = parse_query("ASK { ?s a <http://e.x/C> . }").unwrap();
        assert!(matches!(q.form, QueryForm::Ask));
    }

    #[test]
    fn predicate_object_lists() {
        let q = parse_query("SELECT * WHERE { ?p a <http://e.x/C> ; <http://e.x/n> ?n, ?m . }")
            .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(triples) => assert_eq!(triples.len(), 3),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn filter_comparison() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://e.x/h> ?h . FILTER (?h > 170 && ?h <= 200) }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Filter(Expression::And(_, _), _) => {}
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn optional_and_union() {
        let q = parse_query(
            r#"SELECT * WHERE {
                ?s a <http://e.x/C> .
                OPTIONAL { ?s <http://e.x/n> ?n . }
                { ?s <http://e.x/a> ?v . } UNION { ?s <http://e.x/b> ?v . }
            }"#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Group(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[1], GraphPattern::Optional(_)));
                assert!(matches!(parts[2], GraphPattern::Union(_, _)));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn graph_blocks() {
        let q = parse_query(
            "SELECT * WHERE { GRAPH <http://e.x/w1> { ?s ?p ?o . } GRAPH ?g { ?s ?p ?o . } }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Group(parts) => {
                assert!(
                    matches!(&parts[0], GraphPattern::Graph(GraphTarget::Named(i), _) if i.as_str() == "http://e.x/w1")
                );
                assert!(matches!(
                    &parts[1],
                    GraphPattern::Graph(GraphTarget::Variable(v), _) if v == "g"
                ));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn order_limit_offset() {
        let q =
            parse_query("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY ?s DESC(?o) LIMIT 10 OFFSET 5")
                .unwrap();
        assert_eq!(
            q.order_by,
            vec![("s".to_string(), false), ("o".to_string(), true)]
        );
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn default_prefixes_available() {
        let q = parse_query("SELECT ?c WHERE { ?c a G:Concept . }").unwrap();
        match &q.pattern {
            GraphPattern::Bgp(triples) => {
                let object = triples[0].object.as_const().unwrap();
                assert_eq!(
                    object.as_iri().unwrap().as_str(),
                    mdm_rdf::vocab::bdi::CONCEPT.as_str()
                );
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_error() {
        let err = parse_query("SELECT ?s WHERE { ?s a nope:C . }").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o . } garbage").is_err());
    }

    #[test]
    fn typed_and_lang_literals() {
        let q = parse_query(
            r#"SELECT * WHERE { ?s <http://e.x/p> "x"^^xsd:token ; <http://e.x/q> "y"@en . }"#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(triples) => {
                let lit = triples[0].object.as_const().unwrap().as_literal().unwrap();
                assert!(lit.datatype().as_str().ends_with("token"));
                let lit = triples[1].object.as_const().unwrap().as_literal().unwrap();
                assert_eq!(lit.language(), Some("en"));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn bound_and_regex() {
        let q = parse_query(
            r#"SELECT ?n WHERE { ?s <http://e.x/n> ?n . FILTER (BOUND(?n) && REGEX(?n, "Messi")) }"#,
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(_, _)));
    }
}

//! # mdm-sparql
//!
//! A SPARQL engine for the fragment MDM generates and consumes.
//!
//! MDM translates graphically-posed OMQs (walks over the global graph) into
//! SPARQL (paper §2.4, Figure 8); internally it also queries the BDI
//! ontology itself (e.g. "which wrappers' named graphs cover this concept").
//! The paper's stack used Jena ARQ; this crate is the native replacement.
//!
//! Supported fragment:
//!
//! * `SELECT [DISTINCT] ?v … | *`, `ASK`
//! * basic graph patterns with `a` and prefixed names
//! * `FILTER` with comparisons, `&&`/`||`/`!`, `BOUND`, `REGEX`(substring)
//! * `OPTIONAL { … }`, `{ … } UNION { … }`, `GRAPH <g> { … }` /
//!   `GRAPH ?g { … }`
//! * `ORDER BY`, `LIMIT`, `OFFSET`
//!
//! ```
//! use mdm_rdf::{Graph, Term};
//! use mdm_sparql::execute_select_on_graph;
//!
//! let mut g = Graph::new();
//! g.insert((Term::iri("http://e.x/messi"),
//!           Term::iri("http://e.x/plays"),
//!           Term::iri("http://e.x/fcb")));
//! let results = execute_select_on_graph(
//!     "SELECT ?who WHERE { ?who <http://e.x/plays> <http://e.x/fcb> . }",
//!     &g,
//! ).unwrap();
//! assert_eq!(results.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod result;

pub use ast::{Expression, GraphPattern, Query, QueryForm};
pub use eval::{execute, execute_select_on_graph, EvalError};
pub use parser::{parse_query, ParseError};
pub use result::{Solution, Solutions};

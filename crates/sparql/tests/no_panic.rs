//! Robustness: the SPARQL parser must never panic on arbitrary input.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sparql_parser_never_panics(input in "\\PC*") {
        let _ = mdm_sparql::parse_query(&input);
    }

    #[test]
    fn sparql_parser_never_panics_on_sparqlish(
        input in "[?$a-zA-Z0-9<>{}()\\.;,\"'= !&|*#\\n:/-]*",
    ) {
        let _ = mdm_sparql::parse_query(&input);
    }
}

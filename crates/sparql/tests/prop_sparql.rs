//! Property tests for the SPARQL engine: BGP evaluation must agree with a
//! naive reference evaluator on random graphs and patterns.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mdm_rdf::pattern::{Bindings, PatternTerm, TriplePattern};
use mdm_rdf::{Graph, Term};
use mdm_sparql::ast::{GraphPattern, Query, QueryForm};
use mdm_sparql::eval::execute_parsed;

fn arb_node() -> impl Strategy<Value = Term> {
    (0u8..6).prop_map(|i| Term::iri(format!("http://e.x/n{i}")))
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((arb_node(), arb_node(), arb_node()), 0..25)
        .prop_map(|triples| triples.into_iter().collect())
}

/// A pattern component: a variable from a tiny pool or a constant node.
fn arb_component() -> impl Strategy<Value = PatternTerm> {
    prop_oneof![
        (0u8..3).prop_map(|i| PatternTerm::var(format!("v{i}"))),
        arb_node().prop_map(PatternTerm::Const),
    ]
}

fn arb_bgp() -> impl Strategy<Value = Vec<TriplePattern>> {
    proptest::collection::vec(
        (arb_component(), arb_component(), arb_component()).prop_map(|(s, p, o)| TriplePattern {
            subject: s,
            predicate: p,
            object: o,
        }),
        1..4,
    )
}

/// Reference: evaluate the BGP by brute-force nested loops over all triples.
fn naive_bgp(graph: &Graph, patterns: &[TriplePattern]) -> BTreeSet<Bindings> {
    let triples: Vec<_> = graph.iter().collect();
    let mut solutions: Vec<Bindings> = vec![Bindings::new()];
    for pattern in patterns {
        let mut next = Vec::new();
        for bindings in &solutions {
            for (s, p, o) in &triples {
                let mut extended = bindings.clone();
                let mut ok = true;
                for (component, term) in [
                    (&pattern.subject, s),
                    (&pattern.predicate, p),
                    (&pattern.object, o),
                ] {
                    match component {
                        PatternTerm::Const(c) => {
                            if c != term {
                                ok = false;
                                break;
                            }
                        }
                        PatternTerm::Var(v) => match extended.get(v) {
                            Some(existing) if existing != term => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                extended.insert(v.clone(), term.clone());
                            }
                        },
                    }
                }
                if ok {
                    next.push(extended);
                }
            }
        }
        solutions = next;
    }
    solutions.into_iter().collect()
}

proptest! {
    /// The engine's BGP evaluation equals the brute-force evaluation.
    #[test]
    fn bgp_matches_naive_evaluation(graph in arb_graph(), bgp in arb_bgp()) {
        let query = Query {
            form: QueryForm::Select {
                distinct: true,
                variables: vec![],
            },
            pattern: GraphPattern::Bgp(bgp.clone()),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let mut dataset = mdm_rdf::Dataset::new();
        dataset.default_graph_mut().extend_from(&graph);
        let engine = execute_parsed(&query, &dataset).unwrap();
        // Project naive solutions to the pattern's variables (distinct).
        let variables = GraphPattern::Bgp(bgp.clone()).variables();
        let expected: BTreeSet<Vec<Option<Term>>> = naive_bgp(&graph, &bgp)
            .into_iter()
            .map(|b| variables.iter().map(|v| b.get(v).cloned()).collect())
            .collect();
        let actual: BTreeSet<Vec<Option<Term>>> = engine
            .rows
            .iter()
            .map(|row| variables.iter().map(|v| row.get(v).cloned()).collect())
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// UNION of a pattern with itself doubles nothing under DISTINCT and
    /// changes nothing in the solution *set*.
    #[test]
    fn union_idempotent_under_distinct(graph in arb_graph(), bgp in arb_bgp()) {
        let base = Query {
            form: QueryForm::Select { distinct: true, variables: vec![] },
            pattern: GraphPattern::Bgp(bgp.clone()),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let doubled = Query {
            form: QueryForm::Select { distinct: true, variables: vec![] },
            pattern: GraphPattern::Union(
                Box::new(GraphPattern::Bgp(bgp.clone())),
                Box::new(GraphPattern::Bgp(bgp)),
            ),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let mut dataset = mdm_rdf::Dataset::new();
        dataset.default_graph_mut().extend_from(&graph);
        let a = execute_parsed(&base, &dataset).unwrap();
        let b = execute_parsed(&doubled, &dataset).unwrap();
        let set = |s: &mdm_sparql::Solutions| -> BTreeSet<_> {
            s.rows.iter().cloned().collect()
        };
        prop_assert_eq!(set(&a), set(&b));
    }

    /// LIMIT n yields min(n, total) rows; OFFSET k skips exactly k.
    #[test]
    fn limit_offset_laws(graph in arb_graph(), n in 0usize..10, k in 0usize..10) {
        let total_query = Query {
            form: QueryForm::Select { distinct: false, variables: vec![] },
            pattern: GraphPattern::Bgp(vec![TriplePattern {
                subject: PatternTerm::var("s"),
                predicate: PatternTerm::var("p"),
                object: PatternTerm::var("o"),
            }]),
            order_by: vec![("s".to_string(), false)],
            limit: None,
            offset: None,
        };
        let mut dataset = mdm_rdf::Dataset::new();
        dataset.default_graph_mut().extend_from(&graph);
        let total = execute_parsed(&total_query, &dataset).unwrap().len();
        let mut limited = total_query;
        limited.limit = Some(n);
        limited.offset = Some(k);
        let got = execute_parsed(&limited, &dataset).unwrap().len();
        prop_assert_eq!(got, total.saturating_sub(k).min(n));
    }
}

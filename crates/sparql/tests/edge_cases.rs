//! Edge-case tests for the SPARQL engine: parser negatives, evaluator
//! corner cases, and the interplay of GRAPH with joins.

use mdm_rdf::dataset::GraphName;
use mdm_rdf::{Dataset, Iri, Term};
use mdm_sparql::{execute, parse_query};

fn dataset() -> Dataset {
    let mut ds = Dataset::new();
    let g = ds.default_graph_mut();
    g.insert((
        Term::iri("http://e.x/a"),
        Term::iri("http://e.x/p"),
        Term::iri("http://e.x/b"),
    ));
    g.insert((
        Term::iri("http://e.x/b"),
        Term::iri("http://e.x/p"),
        Term::iri("http://e.x/c"),
    ));
    for w in ["w1", "w2"] {
        ds.insert(
            &GraphName::Named(Iri::new(format!("http://e.x/{w}"))),
            (
                Term::iri(format!("http://e.x/{w}/s")),
                Term::iri("http://e.x/covers"),
                Term::iri("http://e.x/a"),
            ),
        );
    }
    ds
}

// ---- parser negatives ----

#[test]
fn parser_rejects_malformed_queries() {
    for (query, hint) in [
        ("SELECT", "variable"),
        ("SELECT ?x", "{"),
        ("SELECT ?x WHERE { ?s ?p }", "term"),
        ("SELECT ?x WHERE { ?s ?p ?o . ", "unterminated"),
        ("SELECT ?x WHERE { FILTER } ", ""),
        ("ASK { ?s ?p ?o . } LIMIT x", ""),
        ("SELECT ?x WHERE { ?s ?p ?o . } ORDER BY", "ORDER BY"),
        ("SELECT ?x WHERE { ?s ?p ?o . } LIMIT -3", ""),
        ("FOO ?x WHERE { }", "FOO"),
        ("SELECT ?x WHERE { GRAPH { ?s ?p ?o . } }", "GRAPH"),
    ] {
        let result = parse_query(query);
        assert!(result.is_err(), "should reject: {query}");
        if !hint.is_empty() {
            let message = result.unwrap_err().to_string();
            assert!(
                message.to_lowercase().contains(&hint.to_lowercase()),
                "error for '{query}' should mention '{hint}': {message}"
            );
        }
    }
}

#[test]
fn lexer_rejects_malformed_tokens() {
    for query in [
        "SELECT ?x WHERE { ?s ?p \"unterminated }",
        "SELECT ? WHERE { }",
        "SELECT ?x WHERE { ?s ?p ?o . } # fine\n @",
        "SELECT ?x WHERE { ?s ?p 'multi\nline' . }",
    ] {
        assert!(parse_query(query).is_err(), "should reject: {query}");
    }
}

// ---- evaluator corner cases ----

#[test]
fn self_join_via_shared_variable() {
    // ?x p ?y . ?y p ?z — a path of length 2.
    let results = execute(
        "SELECT ?x ?z WHERE { ?x <http://e.x/p> ?y . ?y <http://e.x/p> ?z . }",
        &dataset(),
    )
    .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results.get(0, "x").unwrap().short(), "a");
    assert_eq!(results.get(0, "z").unwrap().short(), "c");
}

#[test]
fn graph_variable_joins_with_default_graph_pattern() {
    // Bind ?g from named graphs, then use the binding in the default graph.
    let results = execute(
        r#"SELECT ?g ?t WHERE {
            GRAPH ?g { ?s <http://e.x/covers> ?t . }
            ?t <http://e.x/p> ?o .
        }"#,
        &dataset(),
    )
    .unwrap();
    // Both named graphs cover 'a', and 'a' has an outgoing p-edge.
    assert_eq!(results.len(), 2);
}

#[test]
fn graph_constant_missing_graph_yields_empty() {
    let results = execute(
        "SELECT ?s WHERE { GRAPH <http://e.x/nope> { ?s ?p ?o . } }",
        &dataset(),
    )
    .unwrap();
    assert!(results.is_empty());
}

#[test]
fn optional_inside_graph_block() {
    let results = execute(
        r#"SELECT ?s ?x WHERE {
            GRAPH <http://e.x/w1> {
                ?s <http://e.x/covers> ?t .
                OPTIONAL { ?s <http://e.x/missing> ?x . }
            }
        }"#,
        &dataset(),
    )
    .unwrap();
    assert_eq!(results.len(), 1);
    assert!(results.get(0, "x").is_none());
}

#[test]
fn filter_before_pattern_in_group_still_applies() {
    // FILTERs apply to the whole group regardless of position.
    let results = execute(
        r#"SELECT ?o WHERE {
            FILTER (?o != <http://e.x/b>)
            ?s <http://e.x/p> ?o .
        }"#,
        &dataset(),
    )
    .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results.get(0, "o").unwrap().short(), "c");
}

#[test]
fn distinct_with_partial_projection() {
    // Two triples share the predicate; projecting only ?p with DISTINCT
    // collapses them.
    let results = execute("SELECT DISTINCT ?p WHERE { ?s ?p ?o . }", &dataset()).unwrap();
    assert_eq!(results.len(), 1);
}

#[test]
fn ask_with_limit_zero_still_answers() {
    let results = execute("ASK { ?s ?p ?o . }", &dataset()).unwrap();
    assert_eq!(
        results
            .get(0, "ask")
            .unwrap()
            .as_literal()
            .unwrap()
            .as_bool(),
        Some(true)
    );
}

#[test]
fn numeric_comparison_across_integer_and_double() {
    let mut ds = Dataset::new();
    let g = ds.default_graph_mut();
    g.insert((
        Term::iri("http://e.x/x"),
        Term::iri("http://e.x/v"),
        Term::integer(25),
    ));
    g.insert((
        Term::iri("http://e.x/y"),
        Term::iri("http://e.x/v"),
        Term::double(25.5),
    ));
    let results = execute(
        "SELECT ?s WHERE { ?s <http://e.x/v> ?v . FILTER (?v > 25.2) }",
        &ds,
    )
    .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results.get(0, "s").unwrap().short(), "y");
}

#[test]
fn str_function_compares_iri_text() {
    let results = execute(
        r#"SELECT ?s WHERE { ?s <http://e.x/p> ?o . FILTER (STR(?s) = "http://e.x/a") }"#,
        &dataset(),
    )
    .unwrap();
    assert_eq!(results.len(), 1);
}

#[test]
fn nested_unions_accumulate() {
    let results = execute(
        r#"SELECT ?x WHERE {
            { ?x <http://e.x/p> <http://e.x/b> . }
            UNION { ?x <http://e.x/p> <http://e.x/c> . }
            UNION { <http://e.x/a> <http://e.x/p> ?x . }
        }"#,
        &dataset(),
    )
    .unwrap();
    assert_eq!(results.len(), 3);
}

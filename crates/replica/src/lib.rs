//! # mdm-replica
//!
//! WAL-shipping read replicas for `mdm-server`. A [`ReplicaNode`] serves
//! the full analyst API from its own [`Mdm`], kept in sync by pulling the
//! primary's replication stream:
//!
//! 1. **Bootstrap** — the first `/replication/stream` response carries the
//!    primary's snapshot generation; the replica restores it into a fresh
//!    `Mdm` and swaps it behind the server's lock.
//! 2. **Replay** — subsequent responses carry CRC-framed WAL records; each
//!    decodes to a [`MutationOp`] and replays through the same apply path
//!    crash recovery uses, so the replica's metadata (and epoch) is
//!    byte-identical to a primary restored at the same offset.
//! 3. **Hydrate** — the journal ships metadata only; wrapper payloads are
//!    fetched separately (`/replication/wrapper?name=`) and installed into
//!    the execution catalog without touching the epoch.
//! 4. **Follow** — caught up, the replica long-polls; a steward mutation
//!    on the primary lands here within one poll cycle.
//!
//! The node serves reads at its replay epoch throughout — including while
//! disconnected (state `disconnected`, still trustworthy, just stale).
//! Two conditions make it refuse to pretend otherwise: before the first
//! bootstrap `/healthz` reports `degraded` (there is nothing real to
//! serve), and a record that fails to decode or apply **poisons** the node
//! terminally (its state may have diverged; `/healthz` carries the
//! offending WAL offset). Steward mutations are answered with
//! `421 Misdirected Request` pointing at the primary.
//!
//! ## Failover
//!
//! Every stream request carries the highest **fencing term** the replica
//! has observed. Batches from a *staler* term are refused (the peer is a
//! demoted primary); a 409 reporting a *newer* term is the rejoin
//! handshake: the replica discards whatever local WAL tail lies past the
//! new term's fork epoch (counting it in `/metrics`), purges its
//! now-divergent store files, and resyncs from offset zero. A node that
//! used to be a primary starts the same way: [`ReplicaConfig::data_dir`]
//! pointing at its old journal recovers that state for stale reads, then
//! the handshake decides how much of it survives. Promotion runs the other
//! direction — `POST /admin/promote` detaches the sync thread (severing
//! its long-poll socket) and flips the node primary under a bumped term.

use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mdm_core::{Mdm, MutationOp};
use mdm_dataform::{json, Value};
use mdm_server::client::Connection;
use mdm_server::replication::{ReplicaState, ReplicaStatus};
use mdm_server::state::AppState;
use mdm_server::{serve_replica_aware, ServerConfig, ServerHandle};
use mdm_store::{purge, Recovered, ReplicationBatch, Store};
use mdm_wrappers::{Format, Release, Signature, Wrapper};

/// How a replica node connects to its primary and serves locally.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// The primary's `host:port`.
    pub primary: String,
    /// The local server (bind address, workers, shedding) — its
    /// `data_dir` is overridden by [`ReplicaConfig::data_dir`]: while
    /// following, a replica's durability is the primary's journal; its
    /// `fsync` policy governs the journal a promotion would open.
    pub server: ServerConfig,
    /// Identifier reported to the primary (`/metrics` lag gauges). Empty
    /// picks `replica-<port>` after binding.
    pub id: String,
    /// Long-poll budget per stream request once caught up.
    pub wait_ms: u64,
    /// First reconnect delay after a stream failure.
    pub min_backoff: Duration,
    /// Reconnect delays double up to this cap (jittered; see
    /// [`ReplicaConfig::backoff_seed`]).
    pub max_backoff: Duration,
    /// Seeds the deterministic reconnect jitter: attempt `n` sleeps
    /// between 50% and 100% of `min_backoff · 2ⁿ` (capped), so replicas
    /// with different seeds never hammer a recovering primary in
    /// lockstep, while a fixed seed keeps chaos runs reproducible.
    pub backoff_seed: u64,
    /// Directory of a journal this node wrote in a previous life (as a
    /// primary, or as a previously promoted replica). On start the state
    /// is recovered for stale reads until the rejoin handshake decides
    /// how much of it was divergent; on promotion the new primary
    /// generation opens here. `None` keeps the node purely in-memory.
    pub data_dir: Option<PathBuf>,
}

impl ReplicaConfig {
    /// Defaults for following `primary`: ephemeral local port, 1 s
    /// long-poll, 100 ms → 5 s reconnect backoff, no data dir.
    pub fn new(primary: impl Into<String>) -> Self {
        ReplicaConfig {
            primary: primary.into(),
            server: ServerConfig::default(),
            id: String::new(),
            wait_ms: 1_000,
            min_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            backoff_seed: 0x6d64_6d2d_7265_706c,
            data_dir: None,
        }
    }
}

/// A running replica; dropping it (or [`ReplicaHandle::shutdown`]) stops
/// the sync thread and the local server.
pub struct ReplicaHandle {
    addr: SocketAddr,
    status: Arc<ReplicaStatus>,
    stopping: Arc<AtomicBool>,
    server: Option<ServerHandle>,
    sync: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// The local serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live status latch (tests and the CLI poll it).
    pub fn status(&self) -> &Arc<ReplicaStatus> {
        &self.status
    }

    /// Blocks until the replica has bootstrapped and replayed up to
    /// `epoch` (or any later one). `false` on timeout or poisoning.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.status.is_bootstrapped()
                && self.status.replay_epoch.load(Ordering::SeqCst) >= epoch
            {
                return true;
            }
            if self.status.state() == ReplicaState::Poisoned || Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops syncing, drains the local server, joins both.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.sync.take() {
            let _ = handle.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The replica node entry point.
pub struct ReplicaNode;

impl ReplicaNode {
    /// Binds the local server (serving immediately — `degraded` until the
    /// first bootstrap lands, unless a previous life's journal in
    /// [`ReplicaConfig::data_dir`] restores state for stale reads) and
    /// spawns the sync thread.
    pub fn start(config: ReplicaConfig) -> io::Result<ReplicaHandle> {
        let listener = TcpListener::bind(&config.server.addr)?;
        let addr = listener.local_addr()?;
        let status = Arc::new(ReplicaStatus::new(config.primary.clone()));
        let mut server_config = config.server.clone();
        // The replica journals nothing while following, but promotion
        // opens its first primary generation here (`AppState.promote_dir`).
        server_config.data_dir = config.data_dir.clone();
        let mut mdm = Mdm::new();
        // Epochs of WAL records a previous life journalled; the rejoin
        // handshake decides how many lie past the fork and were divergent.
        let mut recovered_tail = Vec::new();
        if let Some(dir) = &config.data_dir {
            match Store::open(dir, server_config.fsync) {
                Ok(Some((_store, recovered))) => {
                    let local = recover_mdm(&recovered).map_err(io::Error::other)?;
                    recovered_tail = recovered.records.iter().map(|r| r.epoch).collect();
                    status.observe_term(recovered.term);
                    status.replay_epoch.store(local.epoch(), Ordering::SeqCst);
                    status.mark_bootstrapped();
                    status.set_state(ReplicaState::Disconnected);
                    status.set_error(Some(format!(
                        "recovered a term-{} journal from {}; serving stale reads until rejoin",
                        recovered.term,
                        dir.display()
                    )));
                    mdm = local;
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(io::Error::other(format!(
                        "recovering the journal in {} failed: {e}",
                        dir.display()
                    )));
                }
            }
        }
        let server = serve_replica_aware(
            listener,
            &server_config,
            mdm,
            None,
            Some(Arc::clone(&status)),
        )?;
        let stopping = Arc::new(AtomicBool::new(false));
        let id = if config.id.is_empty() {
            format!("replica-{}", addr.port())
        } else {
            config.id.clone()
        };
        let ctx = SyncCtx {
            state: Arc::clone(server.state()),
            status: Arc::clone(&status),
            stopping: Arc::clone(&stopping),
            primary: config.primary.clone(),
            id,
            wait_ms: config.wait_ms,
            min_backoff: config.min_backoff,
            max_backoff: config.max_backoff,
            backoff_seed: config.backoff_seed,
            data_dir: config.data_dir,
            recovered_tail,
        };
        let sync = thread::Builder::new()
            .name("mdm-replica-sync".to_string())
            .spawn(move || sync_loop(ctx))?;
        Ok(ReplicaHandle {
            addr,
            status,
            stopping,
            server: Some(server),
            sync: Some(sync),
        })
    }
}

// ---------------------------------------------------------------------
// Sync thread
// ---------------------------------------------------------------------

struct SyncCtx {
    state: Arc<AppState>,
    status: Arc<ReplicaStatus>,
    stopping: Arc<AtomicBool>,
    primary: String,
    id: String,
    wait_ms: u64,
    min_backoff: Duration,
    max_backoff: Duration,
    backoff_seed: u64,
    data_dir: Option<PathBuf>,
    /// Epochs of WAL records recovered from a previous life's journal.
    recovered_tail: Vec<u64>,
}

impl SyncCtx {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    fn exiting(&self) -> bool {
        self.stopping() || self.status.detach_requested()
    }
}

/// Where the replica's replay stands in the primary's WAL.
#[derive(Clone, Copy, Default)]
struct Cursor {
    generation: u64,
    from: u64,
}

/// Why a sync session ended.
enum SessionEnd {
    /// Shutdown requested.
    Stopping,
    /// Promotion detached the sync thread — the node stops following.
    Detached,
    /// A record failed to decode or apply — terminal, thread exits.
    Poisoned,
    /// Transport or protocol failure — reconnect with backoff. `healthy`
    /// records whether the session applied at least one batch before
    /// dying: only a full healthy session restarts the backoff schedule.
    Disconnected { error: String, healthy: bool },
}

fn sync_loop(ctx: SyncCtx) {
    let mut attempt: u32 = 0;
    let mut cursor = Cursor::default();
    // Wrapper names registered in metadata whose payloads still need
    // fetching; survives reconnects so a failed hydration retries.
    let mut pending_wrappers = BTreeSet::new();
    let mut local_tail = ctx.recovered_tail.clone();
    while !ctx.exiting() {
        match sync_session(&ctx, &mut cursor, &mut pending_wrappers, &mut local_tail) {
            SessionEnd::Stopping | SessionEnd::Detached | SessionEnd::Poisoned => break,
            SessionEnd::Disconnected { error, healthy } => {
                // A bootstrapped replica keeps serving its epoch while
                // reconnecting; an unbootstrapped one stays degraded.
                if ctx.status.is_bootstrapped() {
                    ctx.status.set_state(ReplicaState::Disconnected);
                }
                ctx.status.set_error(Some(error));
                ctx.status.reconnects.fetch_add(1, Ordering::SeqCst);
                // Only a session that proved the primary healthy (applied
                // a batch) restarts the schedule; anything else keeps
                // climbing, so a flapping primary sees spread-out retries
                // instead of a lockstep thundering herd.
                attempt = if healthy {
                    0
                } else {
                    attempt.saturating_add(1)
                };
                sleep_unless_stopping(
                    &ctx,
                    jittered_backoff(ctx.backoff_seed, attempt, ctx.min_backoff, ctx.max_backoff),
                );
            }
        }
    }
    // Whatever the exit path, the thread no longer follows the primary;
    // promotion waits on this latch before reading the final state.
    ctx.status.mark_detached();
}

/// Exponential backoff with deterministic jitter — the same SplitMix64
/// mix `relational::resilience::RetryPolicy` uses. Attempt `n` sleeps
/// between 50% and 100% of `min · 2ⁿ`, capped at `max`.
fn jittered_backoff(seed: u64, attempt: u32, min: Duration, max: Duration) -> Duration {
    let base = min
        .saturating_mul(2u32.saturating_pow(attempt.min(16)))
        .min(max);
    let mut z = seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let unit = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.5 + unit * 0.5)
}

/// Sleeps in slices so shutdown (or a detach request) never waits out a
/// full backoff.
fn sleep_unless_stopping(ctx: &SyncCtx, total: Duration) {
    let deadline = Instant::now() + total;
    while !ctx.exiting() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// One connection's worth of streaming: request batches from the cursor,
/// apply them, long-poll when caught up. Returns when the connection (or
/// the replica) dies. The socket is registered with the status latch so
/// `request_detach` can sever a read parked mid-long-poll.
fn sync_session(
    ctx: &SyncCtx,
    cursor: &mut Cursor,
    pending_wrappers: &mut BTreeSet<String>,
    local_tail: &mut Vec<u64>,
) -> SessionEnd {
    let mut conn = match Connection::open(&ctx.primary) {
        Ok(conn) => conn,
        Err(e) => {
            return SessionEnd::Disconnected {
                error: format!("connect to primary failed: {e}"),
                healthy: false,
            }
        }
    };
    ctx.status.set_stream(conn.try_clone_stream().ok());
    let end = stream_session(ctx, &mut conn, cursor, pending_wrappers, local_tail);
    ctx.status.set_stream(None);
    end
}

fn stream_session(
    ctx: &SyncCtx,
    conn: &mut Connection,
    cursor: &mut Cursor,
    pending_wrappers: &mut BTreeSet<String>,
    local_tail: &mut Vec<u64>,
) -> SessionEnd {
    // The read may legitimately park for the whole long-poll budget.
    let _ = conn.set_read_timeout(Some(
        Duration::from_millis(ctx.wait_ms) + Duration::from_secs(10),
    ));
    let mut healthy = false;
    loop {
        if ctx.stopping() {
            return SessionEnd::Stopping;
        }
        if ctx.status.detach_requested() {
            return SessionEnd::Detached;
        }
        let path = format!(
            "/replication/stream?generation={}&from={}&wait_ms={}&replica_id={}&term={}",
            cursor.generation,
            cursor.from,
            ctx.wait_ms,
            ctx.id,
            ctx.status.term()
        );
        let raw = match conn.send_raw("GET", &path, None) {
            Ok(raw) => raw,
            Err(e) => {
                if ctx.status.detach_requested() {
                    // The severed socket is the detach mechanism, not a
                    // failure.
                    return SessionEnd::Detached;
                }
                return SessionEnd::Disconnected {
                    error: format!("stream request failed: {e}"),
                    healthy,
                };
            }
        };
        if raw.status == 409 {
            match rejoin_handshake(ctx, &raw.body, cursor, local_tail) {
                // Term adopted; re-request from offset 0 on this
                // connection — the next batch carries a full snapshot.
                Ok(()) => continue,
                Err(error) => return SessionEnd::Disconnected { error, healthy },
            }
        }
        if raw.status != 200 {
            return SessionEnd::Disconnected {
                error: format!("primary answered HTTP {} to the stream request", raw.status),
                healthy,
            };
        }
        // A frame that fails CRC is a transport problem, not divergence:
        // reconnect and re-request the same offset.
        let batch = match ReplicationBatch::decode(&raw.body) {
            Ok(batch) => batch,
            Err(e) => {
                return SessionEnd::Disconnected {
                    error: format!("bad replication frame: {e}"),
                    healthy,
                }
            }
        };
        let observed = ctx.status.term();
        if batch.term < observed {
            // A demoted primary still streaming its old term: refuse its
            // records — accepting them would fork us off the new history.
            ctx.state
                .failover
                .fenced_rejections
                .fetch_add(1, Ordering::SeqCst);
            return SessionEnd::Disconnected {
                error: format!(
                    "primary streams term {} but term {observed} was observed; refusing stale records",
                    batch.term
                ),
                healthy,
            };
        }
        ctx.status.observe_term(batch.term);
        match apply_batch(ctx, conn, &batch, cursor, pending_wrappers) {
            Ok(()) => {
                healthy = true;
                ctx.status.set_error(None);
            }
            Err(end) => return end,
        }
    }
}

/// Handles a 409 from the stream route. When it carries a term newer than
/// anything observed, this is a legitimate rejoin: whatever local WAL tail
/// lies past the new term's fork epoch is divergent — count and discard
/// it, purge the stale store files, adopt the term, and restart the
/// cursor so the next response bootstraps from the new primary's
/// snapshot. Any other 409 (this replica itself presented the newer term,
/// or the body is opaque) is a plain disconnect.
fn rejoin_handshake(
    ctx: &SyncCtx,
    body: &[u8],
    cursor: &mut Cursor,
    local_tail: &mut Vec<u64>,
) -> Result<(), String> {
    let text = String::from_utf8_lossy(body).into_owned();
    let value = json::parse(&text).map_err(|_| format!("primary answered 409: {text}"))?;
    let uint = |name: &str| {
        value
            .get(name)
            .and_then(Value::as_number)
            .and_then(|n| n.as_i64())
            .and_then(|n| u64::try_from(n).ok())
    };
    let observed = uint("observed_term").ok_or_else(|| format!("primary answered 409: {text}"))?;
    if observed <= ctx.status.term() {
        return Err(format!("primary answered 409: {text}"));
    }
    let fork = uint("term_start_epoch").unwrap_or(0);
    let divergent = local_tail.iter().filter(|&&epoch| epoch > fork).count() as u64;
    if divergent > 0 {
        ctx.state
            .failover
            .divergent_records_discarded
            .fetch_add(divergent, Ordering::SeqCst);
    }
    local_tail.clear();
    if let Some(dir) = &ctx.data_dir {
        // The on-disk generation carries the divergent tail too; drop it
        // so a later promotion starts from the replicated history only.
        let _ = purge(dir);
    }
    ctx.status.observe_term(observed);
    *cursor = Cursor::default();
    ctx.state.failover.rejoins.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// Applies one batch: snapshot bootstrap (when present), then record
/// replay, then wrapper hydration. The cursor advances per record, so a
/// failure mid-batch resumes exactly where it stopped.
fn apply_batch(
    ctx: &SyncCtx,
    conn: &mut Connection,
    batch: &ReplicationBatch,
    cursor: &mut Cursor,
    pending_wrappers: &mut BTreeSet<String>,
) -> Result<(), SessionEnd> {
    ctx.status
        .primary_epoch
        .store(batch.primary_epoch, Ordering::SeqCst);
    if let Some(snapshot) = &batch.snapshot {
        let mut restored = match Mdm::restore_metadata(snapshot) {
            Ok(mdm) => mdm,
            Err(e) => {
                // The frame passed its CRC, so these bytes are what the
                // primary meant to send — retrying cannot help.
                ctx.status
                    .poison(batch.start, format!("snapshot restore failed: {e}"));
                return Err(SessionEnd::Poisoned);
            }
        };
        restored.ensure_epoch_at_least(batch.base_epoch);
        {
            let mut mdm = ctx.state.mdm.write().expect("state poisoned");
            *mdm = restored;
        }
        ctx.status
            .generation
            .store(batch.generation, Ordering::SeqCst);
        ctx.status.bootstraps.fetch_add(1, Ordering::SeqCst);
        cursor.generation = batch.generation;
        cursor.from = batch.start;
        // The snapshot declares wrappers; their payloads ship separately.
        pending_wrappers.clear();
        match fetch_wrapper_names(conn) {
            Ok(names) => pending_wrappers.extend(names),
            Err(e) => {
                return Err(SessionEnd::Disconnected {
                    error: e,
                    healthy: false,
                })
            }
        }
    }
    for (index, record) in batch.records.iter().enumerate() {
        let offset = batch.start + index as u64;
        let op = match MutationOp::decode(&record.payload) {
            Ok(op) => op,
            Err(e) => {
                ctx.status.poison(
                    offset,
                    format!("WAL record at offset {offset} failed to decode: {e}"),
                );
                return Err(SessionEnd::Poisoned);
            }
        };
        {
            let mut mdm = ctx.state.mdm.write().expect("state poisoned");
            if let Err(e) = op.apply(&mut mdm) {
                ctx.status.poison(
                    offset,
                    format!(
                        "WAL record at offset {offset} ({}) failed to apply: {e}",
                        op.kind()
                    ),
                );
                return Err(SessionEnd::Poisoned);
            }
            mdm.ensure_epoch_at_least(record.epoch);
        }
        if let MutationOp::RegisterWrapper { wrapper, .. } = &op {
            pending_wrappers.insert(wrapper.clone());
        }
        ctx.status.records_applied.fetch_add(1, Ordering::SeqCst);
        cursor.from = offset + 1;
    }
    cursor.generation = batch.generation;
    cursor.from = batch.next_offset();
    hydrate_pending(ctx, conn, pending_wrappers).map_err(|error| SessionEnd::Disconnected {
        error,
        healthy: false,
    })?;
    // The gauge is published only now, after wrapper hydration: a reader
    // of `replay_epoch` (or `wait_for_epoch`) must be able to *query* at
    // that epoch, not merely know its metadata was applied. Reading the
    // epoch back from the Mdm also re-publishes after a hydration retry
    // that rode an empty batch.
    let replayed = ctx.state.mdm.read().expect("state poisoned").epoch();
    ctx.status.replay_epoch.store(replayed, Ordering::SeqCst);
    if batch.snapshot.is_some() {
        ctx.status.mark_bootstrapped();
    }
    ctx.status.set_state(ReplicaState::Replicating);
    Ok(())
}

/// Rebuilds the metadata a previous life journalled: snapshot restore
/// plus WAL replay through the same apply path crash recovery uses. No
/// journal sink is attached — the replayed tail may yet prove divergent
/// and be discarded at the rejoin handshake.
fn recover_mdm(recovered: &Recovered) -> Result<Mdm, String> {
    let mut mdm = Mdm::restore_metadata(&recovered.snapshot)
        .map_err(|e| format!("snapshot restore failed: {e}"))?;
    mdm.ensure_epoch_at_least(recovered.base_epoch);
    for record in &recovered.records {
        let op = MutationOp::decode(&record.payload)
            .map_err(|e| format!("WAL record at epoch {} failed to decode: {e}", record.epoch))?;
        op.apply(&mut mdm)
            .map_err(|e| format!("WAL record at epoch {} failed to apply: {e}", record.epoch))?;
        mdm.ensure_epoch_at_least(record.epoch);
    }
    Ok(mdm)
}

// ---------------------------------------------------------------------
// Wrapper hydration
// ---------------------------------------------------------------------

/// Asks the primary which wrappers its catalog can execute.
fn fetch_wrapper_names(conn: &mut Connection) -> Result<Vec<String>, String> {
    let raw = conn
        .send_raw("GET", "/replication/wrappers", None)
        .map_err(|e| format!("wrapper list request failed: {e}"))?;
    let body = raw
        .into_ok()
        .map_err(|e| format!("wrapper list request failed: {e}"))?;
    let text = String::from_utf8(body).map_err(|_| "wrapper list is not UTF-8".to_string())?;
    let value = json::parse(&text).map_err(|e| format!("wrapper list is not valid JSON: {e}"))?;
    Ok(value
        .get("wrappers")
        .and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default())
}

/// Fetches and installs every pending wrapper payload. Transport errors
/// abort (the set persists, so the next session retries); semantic errors
/// drop the name — a wrapper that cannot hydrate stays unbacked, which
/// degrades query completeness but never correctness of what is answered.
fn hydrate_pending(
    ctx: &SyncCtx,
    conn: &mut Connection,
    pending: &mut BTreeSet<String>,
) -> Result<(), String> {
    let names: Vec<String> = pending.iter().cloned().collect();
    for name in names {
        let raw = conn
            .send_raw("GET", &format!("/replication/wrapper?name={name}"), None)
            .map_err(|e| format!("wrapper fetch for '{name}' failed: {e}"))?;
        if raw.status == 404 {
            // The primary no longer serves this wrapper; nothing to install.
            pending.remove(&name);
            continue;
        }
        let body = raw
            .into_ok()
            .map_err(|e| format!("wrapper fetch for '{name}' failed: {e}"))?;
        match parse_wrapper(&body) {
            Ok(wrapper) => {
                let mut mdm = ctx.state.mdm.write().expect("state poisoned");
                if let Err(e) = mdm.hydrate_wrapper(wrapper) {
                    ctx.status
                        .set_error(Some(format!("hydration of '{name}' rejected: {e}")));
                }
                pending.remove(&name);
            }
            Err(e) => {
                ctx.status
                    .set_error(Some(format!("wrapper '{name}' payload malformed: {e}")));
                pending.remove(&name);
            }
        }
    }
    Ok(())
}

/// Rebuilds an executable [`Wrapper`] from `/replication/wrapper` JSON.
fn parse_wrapper(body: &[u8]) -> Result<Wrapper, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let field = |name: &str| -> Result<&str, String> {
        value
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing string field '{name}'"))
    };
    let name = field("name")?;
    let source = field("source")?;
    let payload = field("payload")?;
    let notes = value
        .get("notes")
        .and_then(Value::as_str)
        .unwrap_or_default();
    let version = value
        .get("version")
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| "missing unsigned field 'version'".to_string())?;
    let format = match value
        .get("format")
        .and_then(Value::as_str)
        .unwrap_or("json")
    {
        "json" => Format::Json,
        "xml" => Format::Xml,
        "csv" => Format::Csv,
        other => return Err(format!("unknown format '{other}'")),
    };
    let attributes: Vec<String> = value
        .get("attributes")
        .and_then(Value::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let bindings_object = value
        .get("bindings")
        .and_then(Value::as_object)
        .ok_or_else(|| "missing object field 'bindings'".to_string())?;
    let mut bindings = Vec::with_capacity(attributes.len());
    for attribute in &attributes {
        let column = bindings_object
            .get(attribute)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("bindings lacks a column for attribute '{attribute}'"))?;
        bindings.push((attribute.clone(), column.to_string()));
    }
    let signature = Signature::new(name, attributes).map_err(|e| e.to_string())?;
    let release = Release {
        version,
        format,
        body: payload.to_string(),
        notes: notes.to_string(),
    };
    Wrapper::over_release(signature, source, release, bindings).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_round_trips_through_replication_json() {
        let json_body = br#"{
            "name": "w1",
            "source": "PlayersAPI",
            "version": 3,
            "format": "json",
            "payload": "[{\"id\": 1, \"pName\": \"a\"}]",
            "notes": "",
            "attributes": ["id", "pName"],
            "bindings": {"id": "id", "pName": "pName"}
        }"#;
        let wrapper = parse_wrapper(json_body).unwrap();
        assert_eq!(wrapper.name(), "w1");
        assert_eq!(wrapper.source(), "PlayersAPI");
        assert_eq!(wrapper.release().version, 3);
        assert_eq!(wrapper.bindings().len(), 2);
    }

    #[test]
    fn malformed_wrapper_json_is_an_error_not_a_panic() {
        assert!(parse_wrapper(b"not json").is_err());
        assert!(parse_wrapper(b"{}").is_err());
        assert!(parse_wrapper(br#"{"name": "w", "source": "s", "version": 1, "payload": "[]", "attributes": ["a"], "bindings": {}}"#).is_err());
    }

    #[test]
    fn unbootstrapped_replica_reports_degraded() {
        // Primary address that refuses connections: the replica must come
        // up, answer /healthz as degraded, and keep retrying quietly.
        let mut config = ReplicaConfig::new("127.0.0.1:1");
        config.min_backoff = Duration::from_millis(10);
        config.max_backoff = Duration::from_millis(50);
        let replica = ReplicaNode::start(config).unwrap();
        let health = mdm_server::client::get(replica.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("degraded"), "{}", health.body);
        assert!(health.body.contains("bootstrapping"), "{}", health.body);
        let denied = mdm_server::client::post_json(
            replica.addr(),
            "/steward/concepts",
            r#"{"concept": "<http://example.org/X>"}"#,
        )
        .unwrap();
        assert_eq!(denied.status, 421);
        replica.shutdown();
    }
}

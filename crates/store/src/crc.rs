//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) over byte slices.
//!
//! Every WAL record carries the checksum of its epoch stamp and payload, so
//! recovery can tell a torn tail (partial write at the crash point) from a
//! complete record without trusting the length prefix alone.

/// The reflected IEEE polynomial.
const POLYNOMIAL: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// An incrementally-fed CRC-32 state.
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &byte in bytes {
            let index = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[index];
        }
    }

    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of a slice.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"governing evolution in big data ecosystems";
        let mut crc = Crc32::new();
        crc.update(&data[..10]);
        crc.update(&data[10..]);
        assert_eq!(crc.finish(), checksum(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"record payload".to_vec();
        let clean = checksum(&data);
        data[3] ^= 0x01;
        assert_ne!(checksum(&data), clean);
    }
}

//! The crate error type: I/O failures keep their operation context,
//! corruption is its own variant so callers can distinguish "the disk said
//! no" from "the bytes are not a store".

use std::fmt;

#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        context: String,
        source: std::io::Error,
    },
    /// The on-disk bytes violate the format (bad magic, unsupported
    /// version, missing generation files, …). Torn WAL tails are *not*
    /// corruption — recovery truncates them silently.
    Corrupt(String),
}

impl StoreError {
    pub fn io(context: String, source: std::io::Error) -> StoreError {
        StoreError::Io { context, source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::Corrupt(message) => write!(f, "corrupt store: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

//! WAL shipping: the binary frame format a primary uses to stream its
//! generation snapshot and journal records to read replicas.
//!
//! A batch is self-describing and self-correcting: it always names the
//! generation it belongs to, and when the requesting replica's generation
//! or offset no longer exists on the primary (compaction, restore, a fresh
//! store), the batch carries the current snapshot so the replica can
//! re-bootstrap instead of diverging.
//!
//! ## Wire layout (all integers little-endian)
//!
//! ```text
//! magic            8 bytes  "MDMREP1\0"
//! version          u32      2
//! flags            u32      bit 0: snapshot frame present
//! term             u64      the primary's fencing term
//! term_start_epoch u64      epoch at which that term began
//! generation       u64      live generation on the primary
//! base_epoch       u64      epoch of the generation's snapshot
//! primary_epoch    u64      primary's metadata epoch when the batch was cut
//! start            u64      WAL index of the first shipped record
//! wal_len          u64      total records in the generation's WAL right now
//! [snapshot]       u32 len | u32 crc | bytes      (only when flag bit 0)
//! record_count     u32
//! records          record_count × (u32 len | u64 epoch | u32 crc | payload)
//! ```
//!
//! Version 2 added the fencing term fields; version-1 frames are rejected
//! (replicas and primaries upgrade together, and a stale-version peer must
//! reconnect through the handshake anyway).
//!
//! Record frames reuse the WAL's own integrity rule: the CRC-32 covers the
//! epoch stamp (as 8 LE bytes) followed by the payload, so a replica checks
//! exactly what recovery checks. The snapshot CRC covers the snapshot bytes.

use crate::crc::Crc32;
use crate::error::StoreError;
use crate::wal::{WalRecord, MAX_RECORD_BYTES};

pub(crate) const REP_MAGIC: &[u8; 8] = b"MDMREP1\0";
pub(crate) const REP_VERSION: u32 = 2;
const FLAG_SNAPSHOT: u32 = 1;
/// Snapshots are metadata-scale; cap them like records to bound allocation.
const MAX_SNAPSHOT_BYTES: u32 = 64 * 1024 * 1024;

/// One shipped batch: an optional snapshot (re-bootstrap) plus a contiguous
/// run of WAL records starting at `start`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicationBatch {
    pub generation: u64,
    /// The fencing term the primary was serving under when the batch was
    /// cut. Replicas refuse batches stamped with a term older than one
    /// they have already observed — a fenced-out primary cannot feed them.
    pub term: u64,
    /// Epoch at which `term` began on the primary.
    pub term_start_epoch: u64,
    /// Epoch of the generation's snapshot (replicas restore to this first).
    pub base_epoch: u64,
    /// The primary's metadata epoch when the batch was cut; replicas report
    /// `primary_epoch - replay_epoch` as their lag.
    pub primary_epoch: u64,
    /// WAL index of `records[0]` within the generation.
    pub start: u64,
    /// Total records in the generation's WAL at encode time.
    pub wal_len: u64,
    /// Present when the replica must (re-)bootstrap from the snapshot.
    pub snapshot: Option<String>,
    pub records: Vec<WalRecord>,
}

impl ReplicationBatch {
    /// Index of the record *after* the last one shipped — the `from` the
    /// replica should request next.
    pub fn next_offset(&self) -> u64 {
        self.start + self.records.len() as u64
    }

    /// True when the batch leaves the replica fully caught up.
    pub fn caught_up(&self) -> bool {
        self.next_offset() >= self.wal_len
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.snapshot.as_ref().map_or(0, |s| s.len()));
        out.extend_from_slice(REP_MAGIC);
        out.extend_from_slice(&REP_VERSION.to_le_bytes());
        let flags = if self.snapshot.is_some() {
            FLAG_SNAPSHOT
        } else {
            0
        };
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.term.to_le_bytes());
        out.extend_from_slice(&self.term_start_epoch.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.base_epoch.to_le_bytes());
        out.extend_from_slice(&self.primary_epoch.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.wal_len.to_le_bytes());
        if let Some(snapshot) = &self.snapshot {
            let bytes = snapshot.as_bytes();
            let mut crc = Crc32::new();
            crc.update(bytes);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc.finish().to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for record in &self.records {
            let mut crc = Crc32::new();
            crc.update(&record.epoch.to_le_bytes());
            crc.update(&record.payload);
            out.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&record.epoch.to_le_bytes());
            out.extend_from_slice(&crc.finish().to_le_bytes());
            out.extend_from_slice(&record.payload);
        }
        out
    }

    /// Decodes and integrity-checks one batch. Any structural or checksum
    /// failure is `StoreError::Corrupt` — replicas treat that as a poisoned
    /// stream, not a panic.
    pub fn decode(bytes: &[u8]) -> Result<ReplicationBatch, StoreError> {
        let mut reader = FrameReader { bytes, pos: 0 };
        let magic = reader.take(8)?;
        if magic != REP_MAGIC {
            return Err(StoreError::Corrupt(
                "replication batch: bad magic".to_string(),
            ));
        }
        let version = reader.u32()?;
        if version != REP_VERSION {
            return Err(StoreError::Corrupt(format!(
                "replication batch: unsupported version {version}"
            )));
        }
        let flags = reader.u32()?;
        let term = reader.u64()?;
        let term_start_epoch = reader.u64()?;
        let generation = reader.u64()?;
        let base_epoch = reader.u64()?;
        let primary_epoch = reader.u64()?;
        let start = reader.u64()?;
        let wal_len = reader.u64()?;
        let snapshot = if flags & FLAG_SNAPSHOT != 0 {
            let len = reader.u32()?;
            if len > MAX_SNAPSHOT_BYTES {
                return Err(StoreError::Corrupt(format!(
                    "replication batch: snapshot of {len} bytes exceeds cap"
                )));
            }
            let expected = reader.u32()?;
            let body = reader.take(len as usize)?;
            let mut crc = Crc32::new();
            crc.update(body);
            if crc.finish() != expected {
                return Err(StoreError::Corrupt(
                    "replication batch: snapshot checksum mismatch".to_string(),
                ));
            }
            let text = String::from_utf8(body.to_vec()).map_err(|_| {
                StoreError::Corrupt("replication batch: snapshot is not UTF-8".to_string())
            })?;
            Some(text)
        } else {
            None
        };
        let count = reader.u32()?;
        let mut records = Vec::new();
        for index in 0..count {
            let len = reader.u32()?;
            if len > MAX_RECORD_BYTES {
                return Err(StoreError::Corrupt(format!(
                    "replication batch: record {index} of {len} bytes exceeds cap"
                )));
            }
            let epoch = reader.u64()?;
            let expected = reader.u32()?;
            let payload = reader.take(len as usize)?;
            let mut crc = Crc32::new();
            crc.update(&epoch.to_le_bytes());
            crc.update(payload);
            if crc.finish() != expected {
                return Err(StoreError::Corrupt(format!(
                    "replication batch: record {} (wal offset {}) checksum mismatch",
                    index,
                    start + u64::from(index)
                )));
            }
            records.push(WalRecord {
                epoch,
                payload: payload.to_vec(),
            });
        }
        if reader.pos != bytes.len() {
            return Err(StoreError::Corrupt(format!(
                "replication batch: {} trailing bytes",
                bytes.len() - reader.pos
            )));
        }
        Ok(ReplicationBatch {
            generation,
            term,
            term_start_epoch,
            base_epoch,
            primary_epoch,
            start,
            wal_len,
            snapshot,
            records,
        })
    }
}

struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < len {
            return Err(StoreError::Corrupt(
                "replication batch: truncated frame".to_string(),
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes([
            bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplicationBatch {
        ReplicationBatch {
            generation: 3,
            term: 2,
            term_start_epoch: 8,
            base_epoch: 10,
            primary_epoch: 14,
            start: 2,
            wal_len: 4,
            snapshot: Some("SNAPSHOT TEXT".to_string()),
            records: vec![
                WalRecord {
                    epoch: 13,
                    payload: b"op-a".to_vec(),
                },
                WalRecord {
                    epoch: 14,
                    payload: b"op-b".to_vec(),
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let batch = sample();
        let decoded = ReplicationBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(decoded.next_offset(), 4);
        assert!(decoded.caught_up());
    }

    #[test]
    fn round_trip_without_snapshot() {
        let mut batch = sample();
        batch.snapshot = None;
        batch.wal_len = 9;
        let decoded = ReplicationBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        assert!(!decoded.caught_up());
    }

    #[test]
    fn corrupt_record_is_rejected() {
        let batch = sample();
        let mut bytes = batch.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte in the final record
        let err = ReplicationBatch::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let batch = sample();
        let bytes = batch.encode();
        let err = ReplicationBatch::decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn stale_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = ReplicationBatch::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version 1"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let err = ReplicationBatch::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }
}

//! # mdm-store
//!
//! The durability layer under the MDM metadata catalog: an append-only
//! **write-ahead log** of steward mutations plus **generation-numbered
//! compaction** into a canonical snapshot, with crash recovery that
//! tolerates torn tails. The paper's stack leaned on Jena TDB + MongoDB for
//! this; here it is a dependency-free, from-scratch store so the governance
//! state (ontology releases, wrappers, LAV mappings, the metadata *epoch*)
//! survives process death instead of living only as long as the server.
//!
//! This crate is deliberately **payload-agnostic**: records are opaque byte
//! strings stamped with the metadata epoch, snapshots are opaque text. The
//! encoding of mutations and the replay logic live in `mdm-core`
//! (`mdm_core::journal` / `mdm_core::durable`), keeping the storage format
//! decoupled from the ontology model.
//!
//! * [`wal`] — the record format: length prefix, epoch stamp, CRC-32
//!   checksum, versioned file header; [`FsyncPolicy`] (always / interval /
//!   never); recovery truncates at the first incomplete or corrupt record.
//! * [`store`] — the generation protocol: `snapshot.gen-N.ttl` +
//!   `wal.gen-N.log`, atomically committed by renaming `CURRENT`.
//! * [`crc`] — CRC-32/IEEE, table-driven.
//!
//! ```no_run
//! use mdm_store::{FsyncPolicy, Store};
//! # fn main() -> Result<(), mdm_store::StoreError> {
//! let dir = std::path::Path::new("/var/lib/mdm");
//! let mut store = match Store::open(dir, FsyncPolicy::Always)? {
//!     Some((store, recovered)) => {
//!         // rebuild state from recovered.snapshot + recovered.records …
//!         store
//!     }
//!     None => Store::create(dir, FsyncPolicy::Always, "initial snapshot", 0)?,
//! };
//! store.append(1, b"encoded mutation")?;
//! store.compact("new canonical snapshot", 1)?;
//! # Ok(()) }
//! ```

pub mod crc;
pub mod error;
pub mod ship;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use ship::ReplicationBatch;
pub use store::{purge, Recovered, Store, StoreStats};
pub use wal::{read_wal, FsyncPolicy, WalRecord, MAX_RECORD_BYTES};

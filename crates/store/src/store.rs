//! The generation-numbered store: one canonical snapshot plus the WAL that
//! extends it, swapped atomically at compaction.
//!
//! ## Directory layout
//!
//! ```text
//! <data_dir>/
//!   CURRENT              one ASCII line: "<generation> <term> <term_start_epoch>"
//!   snapshot.gen-N.ttl   opaque snapshot text for generation N
//!   wal.gen-N.log        the WAL of mutations applied after that snapshot
//! ```
//!
//! `CURRENT` also carries the **fencing term**: a monotonically increasing
//! counter bumped exactly once per promotion, plus the epoch at which that
//! term began. Stores written before terms existed hold a single token;
//! they parse as term 1 starting at epoch 0. Because the term only changes
//! through the same atomic `CURRENT` rename that commits a generation
//! swap, generation and term can never be observed torn apart.
//!
//! ## Crash-consistency protocol
//!
//! Compaction to generation `N+1`:
//!
//! 1. write `snapshot.gen-(N+1).ttl.tmp`, fsync, **rename** to final name;
//! 2. create `wal.gen-(N+1).log` with a synced header;
//! 3. write `CURRENT.tmp`, fsync, **rename** over `CURRENT`, fsync the
//!    directory.
//!
//! `CURRENT` is the commit point: until its rename lands, recovery opens
//! the previous generation (whose files are untouched); after it lands the
//! new generation is complete by construction. Stale generation files are
//! deleted only after the swap, and deletion failures are ignored — extra
//! files are garbage, not corruption.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::ship::ReplicationBatch;
use crate::wal::{read_wal, FsyncPolicy, WalRecord, WalWriter};

const CURRENT: &str = "CURRENT";

/// Counters for `/metrics`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Intact records in the live WAL (replayed + appended this process).
    pub wal_records: u64,
    /// Byte length of the live WAL, header included.
    pub wal_bytes: u64,
    /// `fsync` calls issued by this process (WAL and compaction).
    pub fsyncs: u64,
    /// The live generation number.
    pub generation: u64,
    /// Compactions performed by this process.
    pub compactions: u64,
}

/// What recovery found on open.
#[derive(Debug)]
pub struct Recovered {
    /// The generation's snapshot text, exactly as compaction wrote it.
    pub snapshot: String,
    /// The epoch recorded in the WAL header (epoch of the snapshot).
    pub base_epoch: u64,
    /// Every intact WAL record, in append order.
    pub records: Vec<WalRecord>,
    /// True when a torn or corrupt tail was cut from the WAL.
    pub truncated_tail: bool,
    pub generation: u64,
    /// The fencing term this store last wrote under.
    pub term: u64,
    /// Epoch at which that term began (the promotion fork point).
    pub term_start_epoch: u64,
}

/// An open store: the live generation's WAL plus compaction bookkeeping.
pub struct Store {
    dir: PathBuf,
    generation: u64,
    wal: WalWriter,
    policy: FsyncPolicy,
    compactions: u64,
    compaction_fsyncs: u64,
    /// The live generation's snapshot text, kept in memory so replication
    /// can re-bootstrap replicas without re-reading the file.
    snapshot: String,
    /// Epoch of the live generation's snapshot.
    base_epoch: u64,
    /// The fencing term this store writes under (see module docs).
    term: u64,
    /// Epoch at which `term` began.
    term_start_epoch: u64,
    /// Every record in the live generation's WAL, in append order — the
    /// in-memory image replication batches are cut from. Metadata-scale
    /// (compaction resets it), so retention is cheap.
    recent: Vec<WalRecord>,
}

impl Store {
    /// Opens an existing store, replaying the live generation. Returns
    /// `Ok(None)` when `dir` holds no store (no `CURRENT` file) — callers
    /// then seed one with [`Store::create`].
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<Option<(Store, Recovered)>, StoreError> {
        let current = dir.join(CURRENT);
        if !current.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&current)
            .map_err(|e| StoreError::io(format!("read {}", current.display()), e))?;
        let (generation, term, term_start_epoch) = parse_current(&text)?;
        let snapshot_path = dir.join(snapshot_name(generation));
        let wal_path = dir.join(wal_name(generation));
        let snapshot = fs::read_to_string(&snapshot_path)
            .map_err(|e| StoreError::io(format!("read {}", snapshot_path.display()), e))?;
        let contents = read_wal(&wal_path)?;
        if contents.generation != generation {
            return Err(StoreError::Corrupt(format!(
                "{} claims generation {}, CURRENT says {generation}",
                wal_path.display(),
                contents.generation
            )));
        }
        let wal = WalWriter::reopen(&wal_path, &contents, policy)?;
        let recovered = Recovered {
            snapshot,
            base_epoch: contents.base_epoch,
            records: contents.records,
            truncated_tail: contents.truncated_tail,
            generation,
            term,
            term_start_epoch,
        };
        Ok(Some((
            Store {
                dir: dir.to_path_buf(),
                generation,
                wal,
                policy,
                compactions: 0,
                compaction_fsyncs: 0,
                snapshot: recovered.snapshot.clone(),
                base_epoch: recovered.base_epoch,
                term,
                term_start_epoch,
                recent: recovered.records.clone(),
            },
            recovered,
        )))
    }

    /// Initialises a store in an empty (or store-less) directory as
    /// generation 1, term 1: the given snapshot becomes the baseline, the
    /// WAL starts empty.
    pub fn create(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot: &str,
        epoch: u64,
    ) -> Result<Store, StoreError> {
        Store::create_at_term(dir, policy, snapshot, epoch, 1)
    }

    /// [`Store::create`] at an explicit fencing term — used when a
    /// promoted replica opens its first local generation, which must start
    /// at the bumped term, not at 1.
    pub fn create_at_term(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot: &str,
        epoch: u64,
        term: u64,
    ) -> Result<Store, StoreError> {
        fs::create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("create {}", dir.display()), e))?;
        if dir.join(CURRENT).exists() {
            return Err(StoreError::Corrupt(format!(
                "{} already holds a store; open it instead of re-initialising",
                dir.display()
            )));
        }
        let mut store = Store {
            dir: dir.to_path_buf(),
            generation: 0,
            wal: WalWriter::create(&dir.join(wal_name(0)), 0, epoch, policy)?,
            policy,
            compactions: 0,
            compaction_fsyncs: 0,
            snapshot: String::new(),
            base_epoch: epoch,
            term,
            term_start_epoch: epoch,
            recent: Vec::new(),
        };
        // The initial generation is written through the same protocol as
        // every later compaction, so a crash during init leaves either no
        // store (no CURRENT) or a complete generation 1.
        store.compact(snapshot, epoch)?;
        store.compactions = 0; // init is not a compaction for metrics
        Ok(store)
    }

    /// Appends one opaque mutation record stamped with the post-mutation
    /// epoch, honouring the fsync policy.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        self.wal.append(epoch, payload)?;
        self.recent.push(WalRecord {
            epoch,
            payload: payload.to_vec(),
        });
        Ok(())
    }

    /// Flushes and fsyncs the WAL regardless of policy (drain/shutdown).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Folds the journal into a new generation whose snapshot is `snapshot`
    /// (the caller's canonical serialisation of its current state) and
    /// whose WAL is empty. Returns the new generation number.
    pub fn compact(&mut self, snapshot: &str, epoch: u64) -> Result<u64, StoreError> {
        let next = self.generation + 1;
        let snapshot_final = self.dir.join(snapshot_name(next));
        let snapshot_tmp = self.dir.join(format!("{}.tmp", snapshot_name(next)));

        // (1) the new snapshot, durably, under its final name.
        let mut file = File::create(&snapshot_tmp)
            .map_err(|e| StoreError::io(format!("create {}", snapshot_tmp.display()), e))?;
        file.write_all(snapshot.as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|e| StoreError::io(format!("write {}", snapshot_tmp.display()), e))?;
        drop(file);
        fs::rename(&snapshot_tmp, &snapshot_final)
            .map_err(|e| StoreError::io(format!("rename {}", snapshot_final.display()), e))?;

        // (2) the new, empty WAL (synced header inside).
        let wal = WalWriter::create(&self.dir.join(wal_name(next)), next, epoch, self.policy)?;

        // (3) the commit point: CURRENT.
        self.write_current(next)?;

        let old = self.generation;
        self.generation = next;
        self.wal = wal;
        self.compactions += 1;
        self.compaction_fsyncs += 3; // snapshot + CURRENT + directory
        self.snapshot = snapshot.to_string();
        self.base_epoch = epoch;
        self.recent.clear();

        // Best-effort cleanup of the superseded generation.
        fs::remove_file(self.dir.join(snapshot_name(old))).ok();
        fs::remove_file(self.dir.join(wal_name(old))).ok();
        Ok(next)
    }

    /// Promotion: a compaction that also bumps the fencing term. The new
    /// generation's snapshot is the promoted node's state at `epoch`, and
    /// the term swap commits atomically with the generation swap through
    /// the `CURRENT` rename — there is no window where the old term could
    /// be recovered alongside the new generation.
    pub fn promote(
        &mut self,
        snapshot: &str,
        epoch: u64,
        new_term: u64,
    ) -> Result<u64, StoreError> {
        if new_term <= self.term {
            return Err(StoreError::Corrupt(format!(
                "promotion term {new_term} is not newer than the store's term {}",
                self.term
            )));
        }
        self.term = new_term;
        self.term_start_epoch = epoch;
        self.compact(snapshot, epoch)
    }

    fn write_current(&self, generation: u64) -> Result<(), StoreError> {
        let tmp = self.dir.join("CURRENT.tmp");
        let final_path = self.dir.join(CURRENT);
        let mut file = File::create(&tmp)
            .map_err(|e| StoreError::io(format!("create {}", tmp.display()), e))?;
        file.write_all(
            format!("{generation} {} {}\n", self.term, self.term_start_epoch).as_bytes(),
        )
        .and_then(|()| file.sync_all())
        .map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        drop(file);
        fs::rename(&tmp, &final_path)
            .map_err(|e| StoreError::io(format!("rename {}", final_path.display()), e))?;
        // Persist the rename itself (POSIX: sync the containing directory).
        sync_dir(&self.dir);
        Ok(())
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fencing term this store writes under.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Epoch at which the current term began.
    pub fn term_start_epoch(&self) -> u64 {
        self.term_start_epoch
    }

    /// Number of records in the live generation's WAL — the offset space
    /// replicas request from.
    pub fn wal_len(&self) -> u64 {
        self.recent.len() as u64
    }

    /// Epoch of the live generation's snapshot.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Cuts a replication batch for a replica that believes it is at
    /// (`generation`, `from`). When that position no longer exists — a
    /// different generation (compaction or restore happened) or an offset
    /// past the WAL (the replica outran a store swap) — the batch carries
    /// the current snapshot and restarts the replica from offset 0.
    /// `primary_epoch` is stamped by the caller, who knows the live
    /// metadata epoch. At most `max_records` records are shipped.
    pub fn replication_batch(
        &self,
        generation: u64,
        from: u64,
        max_records: usize,
        primary_epoch: u64,
    ) -> ReplicationBatch {
        let resync = generation != self.generation || from > self.wal_len();
        let start = if resync { 0 } else { from as usize };
        let end = (start + max_records).min(self.recent.len());
        ReplicationBatch {
            generation: self.generation,
            term: self.term,
            term_start_epoch: self.term_start_epoch,
            base_epoch: self.base_epoch,
            primary_epoch,
            start: start as u64,
            wal_len: self.wal_len(),
            snapshot: resync.then(|| self.snapshot.clone()),
            records: self.recent[start..end].to_vec(),
        }
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            fsyncs: self.wal.fsyncs() + self.compaction_fsyncs,
            generation: self.generation,
            compactions: self.compactions,
        }
    }
}

/// Parses a `CURRENT` line. Modern stores write three tokens
/// (`generation term term_start_epoch`); stores written before fencing
/// terms existed hold a bare generation, which reads as term 1 from
/// epoch 0.
fn parse_current(text: &str) -> Result<(u64, u64, u64), StoreError> {
    let corrupt = || {
        StoreError::Corrupt(format!(
            "CURRENT holds '{}', not 'generation [term term_start_epoch]'",
            text.trim()
        ))
    };
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        [generation] => Ok((generation.parse().map_err(|_| corrupt())?, 1, 0)),
        [generation, term, start] => Ok((
            generation.parse().map_err(|_| corrupt())?,
            term.parse().map_err(|_| corrupt())?,
            start.parse().map_err(|_| corrupt())?,
        )),
        _ => Err(corrupt()),
    }
}

/// Removes every store file in `dir` (CURRENT, snapshots, WALs) so a
/// demoted primary can discard its divergent timeline before resyncing.
/// The directory itself is kept; missing files are not an error.
pub fn purge(dir: &Path) -> Result<(), StoreError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // no directory, nothing to purge
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ours = name == CURRENT
            || name == "CURRENT.tmp"
            || name.starts_with("snapshot.gen-")
            || name.starts_with("wal.gen-");
        if ours {
            fs::remove_file(entry.path())
                .map_err(|e| StoreError::io(format!("remove {}", entry.path().display()), e))?;
        }
    }
    sync_dir(dir);
    Ok(())
}

/// Fsyncs a directory so renames inside it survive power loss. Best-effort:
/// platforms where directories cannot be opened for sync just skip it.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = OpenOptions::new().read(true).open(dir) {
        handle.sync_all().ok();
    }
}

fn snapshot_name(generation: u64) -> String {
    format!("snapshot.gen-{generation}.ttl")
}

fn wal_name(generation: u64) -> String {
    format!("wal.gen-{generation}.log")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mdm-store-tests-{name}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn create_recover_round_trip() {
        let dir = temp_dir("round-trip");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP-0", 5).unwrap();
        assert_eq!(store.generation(), 1);
        store.append(6, b"op-a").unwrap();
        store.append(7, b"op-b").unwrap();
        store.sync().unwrap();
        drop(store);

        let (store, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.snapshot, "SNAP-0");
        assert_eq!(recovered.base_epoch, 5);
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.records.len(), 2);
        assert_eq!(recovered.records[1].epoch, 7);
        assert!(!recovered.truncated_tail);
        assert_eq!(store.stats().wal_records, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_on_empty_dir_is_none() {
        let dir = temp_dir("empty");
        assert!(Store::open(&dir, FsyncPolicy::Never).unwrap().is_none());
        fs::create_dir_all(&dir).unwrap();
        assert!(Store::open(&dir, FsyncPolicy::Never).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_create_is_rejected() {
        let dir = temp_dir("double-create");
        Store::create(&dir, FsyncPolicy::Never, "SNAP", 0).unwrap();
        let err = match Store::create(&dir, FsyncPolicy::Never, "SNAP", 0) {
            Err(e) => e,
            Ok(_) => panic!("second create must fail"),
        };
        assert!(err.to_string().contains("already holds a store"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_swaps_generation_and_empties_wal() {
        let dir = temp_dir("compaction");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP-1", 0).unwrap();
        store.append(1, b"op").unwrap();
        let generation = store.compact("SNAP-2", 1).unwrap();
        assert_eq!(generation, 2);
        store.append(2, b"post-compaction").unwrap();
        store.sync().unwrap();
        drop(store);

        let (_, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.snapshot, "SNAP-2");
        assert_eq!(recovered.base_epoch, 1);
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.records[0].payload, b"post-compaction");
        // The superseded generation's files are gone.
        assert!(!dir.join(snapshot_name(1)).exists());
        assert!(!dir.join(wal_name(1)).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_to_prefix() {
        let dir = temp_dir("torn");
        let mut store = Store::create(&dir, FsyncPolicy::Always, "SNAP", 0).unwrap();
        store.append(1, b"intact").unwrap();
        store.append(2, b"this record dies mid-write").unwrap();
        drop(store);
        let wal_path = dir.join(wal_name(1));
        let full = fs::metadata(&wal_path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(full - 7).unwrap();
        drop(file);

        let (mut store, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap().unwrap();
        assert!(recovered.truncated_tail);
        assert_eq!(recovered.records.len(), 1);
        // Appends continue after the cut.
        store.append(2, b"retried").unwrap();
        drop(store);
        let (_, again) = Store::open(&dir, FsyncPolicy::Always).unwrap().unwrap();
        assert_eq!(again.records.len(), 2);
        assert!(!again.truncated_tail);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_compaction_keeps_previous_generation() {
        // Simulate a crash *between* writing the new generation's files and
        // the CURRENT swap: the new files exist but CURRENT still points at
        // the old generation, which must open cleanly.
        let dir = temp_dir("interrupted");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP-1", 0).unwrap();
        store.append(1, b"survives").unwrap();
        store.sync().unwrap();
        drop(store);
        // Fake the pre-swap state by hand.
        fs::write(dir.join(snapshot_name(2)), "SNAP-2-unfinished").unwrap();
        let _ = WalWriter::create(&dir.join(wal_name(2)), 2, 9, FsyncPolicy::Never).unwrap();

        let (_, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.snapshot, "SNAP-1");
        assert_eq!(recovered.records.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn term_persists_and_survives_compaction() {
        let dir = temp_dir("term");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP-1", 3).unwrap();
        assert_eq!(store.term(), 1);
        assert_eq!(store.term_start_epoch(), 3);
        store.compact("SNAP-2", 9).unwrap();
        drop(store);
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.term, 1);
        assert_eq!(recovered.term_start_epoch, 3);
        assert_eq!(store.term(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn promotion_bumps_term_atomically_with_the_generation() {
        let dir = temp_dir("promote");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP-1", 0).unwrap();
        store.append(1, b"op").unwrap();
        let generation = store.promote("SNAP-PROMOTED", 7, 2).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(store.term(), 2);
        assert_eq!(store.term_start_epoch(), 7);
        // Stale or equal terms are refused.
        assert!(store.promote("SNAP", 8, 2).is_err());
        drop(store);
        let (_, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.term, 2);
        assert_eq!(recovered.term_start_epoch, 7);
        assert_eq!(recovered.snapshot, "SNAP-PROMOTED");
        assert!(recovered.records.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_token_current_reads_as_term_one() {
        let dir = temp_dir("legacy-current");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP", 2).unwrap();
        store.sync().unwrap();
        drop(store);
        fs::write(dir.join(CURRENT), "1\n").unwrap();
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap().unwrap();
        assert_eq!(recovered.term, 1);
        assert_eq!(recovered.term_start_epoch, 0);
        assert_eq!(store.term(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn purge_removes_store_files_only() {
        let dir = temp_dir("purge");
        let mut store = Store::create(&dir, FsyncPolicy::Never, "SNAP", 0).unwrap();
        store.append(1, b"op").unwrap();
        store.sync().unwrap();
        drop(store);
        fs::write(dir.join("unrelated.txt"), "keep me").unwrap();
        purge(&dir).unwrap();
        assert!(Store::open(&dir, FsyncPolicy::Never).unwrap().is_none());
        assert!(dir.join("unrelated.txt").exists());
        // Purging an already-empty (or missing) directory is a no-op.
        purge(&dir).unwrap();
        purge(&dir.join("missing")).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_track_bytes_and_fsyncs() {
        let dir = temp_dir("stats");
        let mut store = Store::create(&dir, FsyncPolicy::Always, "SNAP", 0).unwrap();
        let before = store.stats();
        store.append(1, b"0123456789").unwrap();
        let after = store.stats();
        assert_eq!(after.wal_records, 1);
        assert_eq!(after.wal_bytes - before.wal_bytes, 16 + 10);
        assert!(after.fsyncs > before.fsyncs);
        assert_eq!(after.generation, 1);
        assert_eq!(after.compactions, 0);
        fs::remove_dir_all(&dir).ok();
    }
}

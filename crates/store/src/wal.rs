//! The write-ahead log: an append-only file of length-prefixed,
//! CRC-checksummed binary records behind a versioned header.
//!
//! ## On-disk format
//!
//! ```text
//! header  := magic[8] = "MDMWAL1\0"
//!            version  : u32 LE   (currently 1)
//!            generation : u64 LE (which compaction generation this log extends)
//!            base_epoch : u64 LE (metadata epoch of the generation's snapshot)
//! record  := payload_len : u32 LE
//!            epoch       : u64 LE (metadata epoch *after* the mutation)
//!            crc32       : u32 LE (over epoch bytes ++ payload)
//!            payload     : payload_len bytes (opaque to this crate)
//! ```
//!
//! Recovery reads records until the first incomplete or corrupt one and
//! **truncates** there: a torn tail (the record being appended when the
//! process died) silently shortens the log to its last durable prefix
//! instead of poisoning the whole store. Corruption is detected three ways:
//! a record header that does not fit in the remaining bytes, a length that
//! exceeds [`MAX_RECORD_BYTES`] (garbage read as a length), or a checksum
//! mismatch over the epoch stamp and payload.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::crc;
use crate::error::StoreError;

pub(crate) const MAGIC: &[u8; 8] = b"MDMWAL1\0";
pub(crate) const FORMAT_VERSION: u32 = 1;
pub(crate) const HEADER_BYTES: u64 = 8 + 4 + 8 + 8;
const RECORD_HEADER_BYTES: usize = 4 + 8 + 4;

/// Upper bound on a single record's payload; a length prefix beyond this is
/// treated as corruption (a torn write that happened to leave plausible
/// bytes where the length lives), not as a gigantic allocation request.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// When to force appended records onto the disk platter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: no acknowledged mutation is ever lost,
    /// at the cost of one disk round-trip per mutation.
    Always,
    /// `fsync` at most once per the given window; a crash loses at most the
    /// records appended since the last sync. The service default.
    Interval(Duration),
    /// Never `fsync` explicitly (the OS flushes on its own schedule).
    /// Crash durability is whatever the page cache got around to.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval` (100 ms default) or
    /// `interval:<ms>`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("invalid interval '{ms}' (milliseconds expected)")),
                None => Err(format!(
                    "unknown fsync policy '{other}' (expected always, interval[:<ms>] or never)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(window) => write!(f, "interval:{}", window.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One recovered record: the epoch stamped at append time plus the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    pub epoch: u64,
    pub payload: Vec<u8>,
}

/// The parse of a WAL file: its header fields, every intact record, and
/// whether a torn/corrupt tail was cut off.
#[derive(Debug)]
pub struct WalContents {
    pub generation: u64,
    pub base_epoch: u64,
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_bytes: u64,
    /// True when bytes beyond `valid_bytes` existed and were ignored.
    pub truncated_tail: bool,
}

/// Reads and validates a WAL file, truncating at the first bad record.
pub fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
    if bytes.len() < HEADER_BYTES as usize {
        return Err(StoreError::Corrupt(format!(
            "{}: shorter than the {HEADER_BYTES}-byte header",
            path.display()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{}: bad magic (not an MDM WAL)",
            path.display()
        )));
    }
    let version = u32_le(&bytes[8..12]);
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "{}: unsupported WAL format version {version} (this build reads {FORMAT_VERSION})",
            path.display()
        )));
    }
    let generation = u64_le(&bytes[12..20]);
    let base_epoch = u64_le(&bytes[20..28]);

    let mut records = Vec::new();
    let mut offset = HEADER_BYTES as usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < RECORD_HEADER_BYTES {
            break; // torn record header
        }
        let payload_len = u32_le(&bytes[offset..offset + 4]);
        if payload_len > MAX_RECORD_BYTES {
            break; // implausible length: garbage tail
        }
        let epoch = u64_le(&bytes[offset + 4..offset + 12]);
        let stored_crc = u32_le(&bytes[offset + 12..offset + 16]);
        let body_start = offset + RECORD_HEADER_BYTES;
        let body_end = body_start + payload_len as usize;
        if body_end > bytes.len() {
            break; // torn payload
        }
        let mut crc = crc::Crc32::new();
        crc.update(&bytes[offset + 4..offset + 12]);
        crc.update(&bytes[body_start..body_end]);
        if crc.finish() != stored_crc {
            break; // bit rot or torn overwrite
        }
        records.push(WalRecord {
            epoch,
            payload: bytes[body_start..body_end].to_vec(),
        });
        offset = body_end;
    }
    Ok(WalContents {
        generation,
        base_epoch,
        records,
        valid_bytes: offset as u64,
        truncated_tail: offset < bytes.len(),
    })
}

/// An open WAL positioned for appends, enforcing one [`FsyncPolicy`].
pub struct WalWriter {
    writer: BufWriter<File>,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Records appended since the last successful sync.
    unsynced: u64,
    records: u64,
    bytes: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Creates a fresh WAL with the given header fields. The file is synced
    /// so the header survives a crash even under `FsyncPolicy::Never`.
    pub fn create(
        path: &Path,
        generation: u64,
        base_epoch: u64,
        policy: FsyncPolicy,
    ) -> Result<WalWriter, StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("create {}", path.display()), e))?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&generation.to_le_bytes());
        header.extend_from_slice(&base_epoch.to_le_bytes());
        file.write_all(&header)
            .and_then(|()| file.sync_all())
            .map_err(|e| StoreError::io(format!("write header {}", path.display()), e))?;
        Ok(WalWriter {
            writer: BufWriter::new(file),
            policy,
            last_sync: Instant::now(),
            unsynced: 0,
            records: 0,
            bytes: HEADER_BYTES,
            fsyncs: 1,
        })
    }

    /// Opens an existing WAL for appends after recovery: the file is
    /// truncated to `valid_bytes` (cutting any torn tail) and positioned at
    /// its end.
    pub fn reopen(
        path: &Path,
        contents: &WalContents,
        policy: FsyncPolicy,
    ) -> Result<WalWriter, StoreError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        file.set_len(contents.valid_bytes)
            .and_then(|()| {
                if contents.truncated_tail {
                    // The cut tail must not resurrect after a crash.
                    file.sync_all()?;
                }
                file.seek(SeekFrom::End(0)).map(|_| ())
            })
            .map_err(|e| StoreError::io(format!("truncate {}", path.display()), e))?;
        Ok(WalWriter {
            writer: BufWriter::new(file),
            policy,
            last_sync: Instant::now(),
            unsynced: 0,
            records: contents.records.len() as u64,
            bytes: contents.valid_bytes,
            fsyncs: 0,
        })
    }

    /// Appends one record and applies the fsync policy. On success the
    /// record is at least in the OS page cache; under `Always` it is on
    /// stable storage before this returns.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte bound",
                payload.len()
            )));
        }
        let epoch_bytes = epoch.to_le_bytes();
        let mut crc = crc::Crc32::new();
        crc.update(&epoch_bytes);
        crc.update(payload);
        let frame_err = |e| StoreError::io("append WAL record".to_string(), e);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| self.writer.write_all(&epoch_bytes))
            .and_then(|()| self.writer.write_all(&crc.finish().to_le_bytes()))
            .and_then(|()| self.writer.write_all(payload))
            .and_then(|()| self.writer.flush())
            .map_err(frame_err)?;
        self.records += 1;
        self.unsynced += 1;
        self.bytes += (RECORD_HEADER_BYTES + payload.len()) as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::Interval(window) if self.last_sync.elapsed() >= window => self.sync(),
            _ => Ok(()),
        }
    }

    /// Flushes buffered records and forces them to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.writer
            .flush()
            .and_then(|()| self.writer.get_ref().sync_all())
            .map_err(|e| StoreError::io("fsync WAL".to_string(), e))?;
        self.fsyncs += 1;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

fn u32_le(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4-byte slice"))
}

fn u64_le(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mdm-store-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_wal("round-trip");
        let mut wal = WalWriter::create(&path, 3, 10, FsyncPolicy::Never).unwrap();
        wal.append(11, b"first").unwrap();
        wal.append(12, b"second").unwrap();
        wal.append(13, b"").unwrap(); // empty payloads are legal
        wal.sync().unwrap();
        drop(wal);

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.generation, 3);
        assert_eq!(contents.base_epoch, 10);
        assert!(!contents.truncated_tail);
        let epochs: Vec<u64> = contents.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![11, 12, 13]);
        assert_eq!(contents.records[1].payload, b"second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_wal("torn-tail");
        let mut wal = WalWriter::create(&path, 1, 0, FsyncPolicy::Always).unwrap();
        wal.append(1, b"keep-me").unwrap();
        wal.append(2, b"torn-away").unwrap();
        drop(wal);
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut into the middle of the second record's payload.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 4).unwrap();
        drop(file);

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].payload, b"keep-me");
        assert!(contents.truncated_tail);

        // Reopening for append truncates the tail and continues cleanly.
        let mut wal = WalWriter::reopen(&path, &contents, FsyncPolicy::Always).unwrap();
        wal.append(2, b"replacement").unwrap();
        drop(wal);
        let reread = read_wal(&path).unwrap();
        assert!(!reread.truncated_tail);
        assert_eq!(reread.records.len(), 2);
        assert_eq!(reread.records[1].payload, b"replacement");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_good_prefix() {
        let path = temp_wal("bit-flip");
        let mut wal = WalWriter::create(&path, 1, 0, FsyncPolicy::Always).unwrap();
        wal.append(1, b"good-one").unwrap();
        wal.append(2, b"about-to-rot").unwrap();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_hard_errors() {
        let path = temp_wal("bad-magic");
        std::fs::write(&path, b"NOTAWAL\0withsomebytesafterit.....").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt(_))));

        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&99u32.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &header).unwrap();
        let err = read_wal(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(100))
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap().to_string(),
            "interval:250"
        );
    }

    #[test]
    fn always_policy_counts_fsyncs_per_append() {
        let path = temp_wal("fsync-count");
        let mut wal = WalWriter::create(&path, 1, 0, FsyncPolicy::Always).unwrap();
        let header_syncs = wal.fsyncs();
        wal.append(1, b"a").unwrap();
        wal.append(2, b"b").unwrap();
        assert_eq!(wal.fsyncs(), header_syncs + 2);
        std::fs::remove_file(&path).ok();
    }
}

//! The route table: the steward and analyst APIs as JSON-over-HTTP.
//!
//! Steward routes (metadata mutations, write lock):
//!
//! | method | path                  | body |
//! |--------|-----------------------|------|
//! | POST   | `/steward/concepts`   | `{"concept"}` |
//! | POST   | `/steward/features`   | `{"concept","feature","identifier"?}` |
//! | POST   | `/steward/relations`  | `{"from","property","to"}` |
//! | POST   | `/steward/subconcepts`| `{"sub","sup"}` |
//! | POST   | `/steward/sources`    | `{"name"}` |
//! | POST   | `/steward/wrappers`   | `{"name","source","version","format"?,"payload","attributes","bindings"}` |
//! | POST   | `/steward/mappings`   | `{"wrapper","concepts"?,"features"?,"relations"?,"same_as"?}` |
//! | GET    | `/steward/snapshot`   | — |
//! | POST   | `/steward/restore`    | `{"snapshot"}` |
//! | POST   | `/steward/stats/refresh` | — bump the stats epoch (re-profile + re-optimize; **not** a metadata release) |
//!
//! Analyst routes (read lock, shared plan cache):
//!
//! | POST | `/analyst/parse`   | `{"walk"}` — walk DSL, echoed canonicalised |
//! | POST | `/analyst/rewrite` | `{"walk"}` — SPARQL + algebra + branches |
//! | POST | `/analyst/explain` | `{"walk"}` — derivation narration + optimized plan tree with est/actual cardinalities |
//! | GET  | `/analyst/explain` | `?walk=` — same, for browsers/curl (percent-encoded walk) |
//! | POST | `/analyst/query`   | `{"walk"}` — executes, returns the table |
//!
//! Plus `GET /healthz`, `GET /metrics`, `GET /epoch`, the evolution
//! changefeed `GET /changes?since=N&limit=L&wait_ms=W` (long-poll; every
//! committed mutation after epoch `N` with its dependency footprint,
//! served on every role), and — when the
//! server runs with a durable `data_dir` — `POST /admin/compact`, which
//! folds the journal into a fresh snapshot generation, and the replication
//! endpoints replicas feed from:
//!
//! | GET | `/replication/stream`   | binary snapshot/WAL batch (long-poll) |
//! | GET | `/replication/wrappers` | names of executable wrappers |
//! | GET | `/replication/wrapper`  | `?name=` one wrapper's payload |
//!
//! Failover routes (see the fencing-term section in DESIGN.md):
//!
//! | POST | `/admin/promote` | replica → primary at a bumped fencing term |
//! | POST | `/admin/fence`   | `{"term"}` — fence this node out of term `t` |
//!
//! `/healthz` reports `degraded` when the journal became unwritable
//! (acknowledged mutations may not be durable) and on a replica that has
//! not completed bootstrap (or whose replay is poisoned). On a replica,
//! steward mutations and `/admin/compact` answer `421 Misdirected Request`
//! with a `Location` pointing at the primary; on a **fenced** node (one
//! that observed a newer fencing term) they answer `409 Conflict` carrying
//! `observed_term`, because the true primary is elsewhere and its address
//! is unknown here. Element names in bodies are prefixed names
//! (`ex:Player`) or bracketed IRIs, resolved against the ontology's prefix
//! map exactly like the walk DSL.

use std::sync::atomic::Ordering::SeqCst;
use std::time::{Duration, Instant};

use mdm_core::mapping::MappingBuilder;
use mdm_core::walk::Walk;
use mdm_core::walk_dsl;
use mdm_core::{ChangeRecord, InvalidationMode, JournalSink, Mdm, MdmError, MetaStore};
use mdm_dataform::{json, Value};
use mdm_rdf::term::Iri;
use mdm_relational::{Deadline, Table};
use mdm_wrappers::{Format, Release, Signature, Wrapper};

use crate::http::{Request, Response};
use crate::replication::ReplicaState;
use crate::state::{AppState, RoleState};

/// Routes the request and maintains the request/error counters.
pub fn dispatch(state: &AppState, request: &Request) -> Response {
    state.count_request();
    let response = route(state, request);
    if response.status >= 400 {
        state.count_error();
    }
    response
}

const PATHS: &[(&str, &str)] = &[
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/epoch"),
    ("GET", "/changes"),
    ("GET", "/replication/stream"),
    ("GET", "/replication/wrappers"),
    ("GET", "/replication/wrapper"),
    ("POST", "/steward/concepts"),
    ("POST", "/steward/features"),
    ("POST", "/steward/relations"),
    ("POST", "/steward/subconcepts"),
    ("POST", "/steward/sources"),
    ("POST", "/steward/wrappers"),
    ("POST", "/steward/mappings"),
    ("GET", "/steward/snapshot"),
    ("POST", "/steward/restore"),
    ("POST", "/steward/stats/refresh"),
    ("POST", "/analyst/parse"),
    ("POST", "/analyst/rewrite"),
    ("POST", "/analyst/explain"),
    ("GET", "/analyst/explain"),
    ("POST", "/analyst/query"),
    ("POST", "/admin/compact"),
    ("POST", "/admin/promote"),
    ("POST", "/admin/fence"),
];

fn route(state: &AppState, request: &Request) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    // A replica serves reads at its replay epoch; every metadata mutation
    // belongs on the primary. 421 tells a well-behaved client it knocked
    // on the wrong node, and `Location` says where to go instead. (The
    // failover routes `/admin/promote` and `/admin/fence` deliberately
    // fall outside this guard: they exist to be called on replicas.)
    let mutation = method == "POST" && (path.starts_with("/steward/") || path == "/admin/compact");
    if mutation {
        if let Some(replica) = state.replica() {
            return error_response(
                421,
                "replication",
                &format!(
                    "this node is a read replica; send steward mutations to the primary at {}",
                    replica.primary
                ),
            )
            .with_header("Location", format!("http://{}{}", replica.primary, path));
        }
        // A fenced node saw proof of a newer primary: accepting a write
        // here would fork the timeline. Reads keep serving (stale data,
        // honestly labelled via /healthz), writes are refused.
        if state.is_fenced() {
            state.failover.fenced_rejections.fetch_add(1, SeqCst);
            return term_error(
                409,
                &format!(
                    "this node was fenced by term {}; it is no longer the primary (own term {})",
                    state.fenced_by(),
                    state.current_term()
                ),
                state.fenced_by(),
                None,
            );
        }
    }
    match (method, path) {
        ("GET", "/") => index(),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/epoch") => epoch(state),
        ("GET", "/changes") => changes(state, request),
        ("GET", "/replication/stream") => replication_stream(state, request),
        ("GET", "/replication/wrappers") => replication_wrappers(state),
        ("GET", "/replication/wrapper") => replication_wrapper(state, request),
        ("POST", "/steward/concepts") => steward_concepts(state, request),
        ("POST", "/steward/features") => steward_features(state, request),
        ("POST", "/steward/relations") => steward_relations(state, request),
        ("POST", "/steward/subconcepts") => steward_subconcepts(state, request),
        ("POST", "/steward/sources") => steward_sources(state, request),
        ("POST", "/steward/wrappers") => steward_wrappers(state, request),
        ("POST", "/steward/mappings") => steward_mappings(state, request),
        ("GET", "/steward/snapshot") => steward_snapshot(state),
        ("POST", "/steward/restore") => steward_restore(state, request),
        ("POST", "/steward/stats/refresh") => steward_stats_refresh(state),
        ("POST", "/analyst/parse") => analyst_parse(state, request),
        ("POST", "/analyst/rewrite") => analyst_rewrite(state, request),
        ("POST", "/analyst/explain") => analyst_explain(state, request),
        ("GET", "/analyst/explain") => analyst_explain_get(state, request),
        ("POST", "/analyst/query") => analyst_query(state, request),
        ("POST", "/admin/compact") => admin_compact(state),
        ("POST", "/admin/promote") => admin_promote(state),
        ("POST", "/admin/fence") => admin_fence(state, request),
        _ if PATHS.iter().any(|(_, p)| *p == path) => error_response(
            405,
            "protocol",
            &format!("method {method} not allowed on {path}"),
        ),
        _ => error_response(404, "protocol", &format!("no route for {method} {path}")),
    }
}

// ---------------------------------------------------------------------
// JSON plumbing
// ---------------------------------------------------------------------

fn ok_json(value: Value) -> Response {
    Response::json(200, json::to_string(&value))
}

fn error_response(status: u16, category: &str, message: &str) -> Response {
    let body = Value::object([(
        "error",
        Value::object([
            ("category", Value::string(category)),
            ("message", Value::string(message)),
        ]),
    )]);
    Response::json(status, json::to_string(&body))
}

/// A fencing 409: the standard error envelope plus the responder's
/// `observed_term` (and, on the rejoin handshake, where that term forked),
/// so the rejected peer can adopt the newer term and resync.
fn term_error(
    status: u16,
    message: &str,
    observed_term: u64,
    term_start_epoch: Option<u64>,
) -> Response {
    let mut fields = vec![
        (
            "error",
            Value::object([
                ("category", Value::string("fencing")),
                ("message", Value::string(message)),
            ]),
        ),
        ("observed_term", Value::int(observed_term as i64)),
    ];
    if let Some(start) = term_start_epoch {
        fields.push(("term_start_epoch", Value::int(start as i64)));
    }
    Response::json(status, json::to_string(&Value::object(fields)))
}

fn mdm_error_response(error: &MdmError) -> Response {
    let status = match error.category() {
        "execution" => 500,
        "timeout" => 504,
        "rewrite" => 422,
        _ => 400,
    };
    error_response(status, error.category(), error.message())
}

fn parse_body(request: &Request) -> Result<Value, Response> {
    let text = request
        .body_text()
        .map_err(|m| error_response(400, "protocol", &m))?;
    json::parse(text)
        .map_err(|e| error_response(400, "protocol", &format!("invalid JSON body: {e}")))
}

fn str_field<'v>(body: &'v Value, name: &str) -> Result<&'v str, Response> {
    body.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| error_response(400, "protocol", &format!("missing string field '{name}'")))
}

fn u32_field(body: &Value, name: &str) -> Result<u32, Response> {
    body.get(name)
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| error_response(400, "protocol", &format!("missing unsigned field '{name}'")))
}

fn resolve(mdm: &Mdm, token: &str) -> Result<Iri, Response> {
    walk_dsl::resolve_name(token, mdm.ontology()).map_err(|e| mdm_error_response(&e))
}

fn table_json(table: &Table) -> Value {
    let columns = Value::array(
        table
            .schema()
            .columns()
            .iter()
            .map(|c| Value::string(c.to_string())),
    );
    let rows = Value::array(table.rows().iter().map(|row| {
        Value::array(row.iter().map(|cell| match cell {
            mdm_relational::Value::Null => Value::Null,
            mdm_relational::Value::Bool(b) => Value::Bool(*b),
            mdm_relational::Value::Int(i) => Value::int(*i),
            mdm_relational::Value::Float(f) => Value::float(*f),
            mdm_relational::Value::Str(s) => Value::string(s.as_str()),
        }))
    }));
    Value::object([
        ("columns", columns),
        ("rows", rows),
        ("row_count", Value::int(table.len() as i64)),
    ])
}

// ---------------------------------------------------------------------
// Service routes
// ---------------------------------------------------------------------

fn index() -> Response {
    let routes = Value::array(
        PATHS
            .iter()
            .map(|(method, path)| Value::string(format!("{method} {path}"))),
    );
    ok_json(Value::object([
        ("service", Value::string("mdm-server")),
        ("routes", routes),
    ]))
}

fn healthz(state: &AppState) -> Response {
    let store = state.store();
    let replica = state.replica();
    let mdm = state.mdm.read().expect("state poisoned");
    // `degraded`: the service answers, but something undermines trust in
    // the answers — the journal is unwritable (acknowledged mutations may
    // not be durable), this is a replica that never bootstrapped (it
    // would serve an empty ontology as if it were real) or whose replay
    // poisoned (its state may have diverged from the primary's), or the
    // node was fenced by a newer term (it serves stale reads only).
    let journal_degraded = store.as_ref().is_some_and(|s| !s.healthy());
    let replica_degraded = replica
        .as_ref()
        .is_some_and(|r| !r.is_bootstrapped() || r.state() == ReplicaState::Poisoned);
    let fenced = state.is_fenced();
    let degraded = journal_degraded || replica_degraded || fenced;
    let mut fields = vec![
        (
            "status",
            Value::string(if degraded { "degraded" } else { "ok" }),
        ),
        ("epoch", Value::int(mdm.epoch() as i64)),
        ("term", Value::int(state.current_term() as i64)),
    ];
    if fenced {
        fields.push(("fenced", Value::Bool(true)));
        fields.push(("fenced_by_term", Value::int(state.fenced_by() as i64)));
    }
    if let Some(store) = &store {
        if let Some(error) = store.last_error() {
            fields.push(("journal_error", Value::string(error)));
        }
    }
    if let Some(replica) = &replica {
        fields.push(("replica_state", Value::string(replica.state().label())));
        fields.push(("replay_lag", Value::int(replica.replay_lag() as i64)));
        if replica.state() == ReplicaState::Poisoned {
            fields.push((
                "poisoned_offset",
                Value::int(replica.poisoned_offset() as i64),
            ));
        }
        if let Some(error) = replica.last_error() {
            fields.push(("replica_error", Value::string(error)));
        }
    }
    ok_json(Value::object(fields))
}

/// `GET /epoch`: the minimal staleness probe — the metadata epoch this
/// node answers queries at, the store generation backing it, and (on a
/// replica) how far behind the primary it believes it is.
fn epoch(state: &AppState) -> Response {
    let store = state.store();
    let replica = state.replica();
    let mdm = state.mdm.read().expect("state poisoned");
    let (role, store_generation, replay_lag) = match &replica {
        Some(replica) => (
            "replica",
            replica.generation.load(std::sync::atomic::Ordering::SeqCst),
            replica.replay_lag(),
        ),
        None => (
            if store.is_some() { "primary" } else { "single" },
            store.as_ref().map_or(0, |s| s.generation()),
            0,
        ),
    };
    ok_json(Value::object([
        ("metadata_epoch", Value::int(mdm.epoch() as i64)),
        ("store_generation", Value::int(store_generation as i64)),
        ("term", Value::int(state.current_term() as i64)),
        ("replay_lag", Value::int(replay_lag as i64)),
        ("role", Value::string(role)),
    ]))
}

fn metrics(state: &AppState) -> Response {
    use std::sync::atomic::Ordering::Relaxed;
    let store = state.store();
    let replica = state.replica();
    let mdm = state.mdm.read().expect("state poisoned");
    let stats = mdm.cache_stats();
    let cache = Value::object([
        ("hits", Value::int(stats.hits as i64)),
        ("misses", Value::int(stats.misses as i64)),
        ("invalidations", Value::int(stats.invalidations as i64)),
        ("evictions", Value::int(stats.evictions as i64)),
        ("reoptimizations", Value::int(stats.reoptimizations as i64)),
        ("optimized_hits", Value::int(stats.optimized_hits as i64)),
        (
            "optimized_misses",
            Value::int(stats.optimized_misses as i64),
        ),
        ("entries", Value::int(stats.entries as i64)),
        ("capacity", Value::int(stats.capacity as i64)),
        ("hit_rate", Value::float(stats.hit_rate())),
    ]);
    let evolution = Value::object([
        (
            "invalidation_mode",
            Value::string(match mdm.invalidation_mode() {
                InvalidationMode::Surgical => "surgical",
                InvalidationMode::Coarse => "coarse",
            }),
        ),
        (
            "surgical_invalidations",
            Value::int(stats.surgical_invalidations as i64),
        ),
        ("survivals", Value::int(stats.survivals as i64)),
        (
            "incremental_extensions",
            Value::int(stats.incremental_extensions as i64),
        ),
        ("full_rewrites", Value::int(stats.full_rewrites as i64)),
    ]);
    let availability = Value::object([
        ("shed_total", Value::int(state.shed.load(Relaxed) as i64)),
        ("queued", Value::int(state.queued.load(Relaxed) as i64)),
        ("max_pending", Value::int(state.max_pending as i64)),
        (
            "request_deadline_ms",
            Value::int(state.request_deadline.as_millis() as i64),
        ),
    ]);
    let pool = match mdm.pool_stats() {
        Some(p) => Value::object([
            ("size", Value::int(p.size as i64)),
            ("tasks_total", Value::int(p.tasks_total as i64)),
            ("spawned_total", Value::int(p.spawned_total as i64)),
            ("inline_total", Value::int(p.inline_total as i64)),
            ("steals_total", Value::int(p.steals_total as i64)),
            ("active", Value::int(p.active as i64)),
        ]),
        // Sequential mode: no pool attached.
        None => Value::object([("size", Value::int(1))]),
    };
    let breakers = Value::array(mdm.breaker_snapshots().into_iter().map(|b| {
        Value::object([
            ("relation", Value::string(b.relation)),
            ("state", Value::string(b.state)),
            (
                "consecutive_failures",
                Value::int(b.consecutive_failures as i64),
            ),
            ("failures_total", Value::int(b.failures_total as i64)),
            ("successes_total", Value::int(b.successes_total as i64)),
            ("opened_total", Value::int(b.opened_total as i64)),
            (
                "last_error",
                b.last_error.map(Value::string).unwrap_or(Value::Null),
            ),
        ])
    }));
    let dp = mdm_relational::metrics::snapshot();
    let data_plane = Value::object([
        ("rows_moved", Value::int(dp.rows_moved as i64)),
        ("batches_emitted", Value::int(dp.batches_emitted as i64)),
        ("branches_shared", Value::int(dp.branches_shared as i64)),
        ("intern_hits", Value::int(dp.intern.hits as i64)),
        ("intern_misses", Value::int(dp.intern.misses as i64)),
        ("intern_hit_rate", Value::float(dp.intern.hit_rate())),
        (
            "interned_bytes",
            Value::int(dp.intern.interned_bytes as i64),
        ),
        ("intern_entries", Value::int(dp.intern.entries as i64)),
        ("intern_sweeps", Value::int(dp.intern.sweeps as i64)),
        ("dict_entries", Value::int(dp.dict.entries as i64)),
        ("dict_bytes", Value::int(dp.dict.bytes as i64)),
        (
            "columnar",
            Value::object([
                ("encodes", Value::int(dp.columnar.encodes as i64)),
                ("decodes", Value::int(dp.columnar.decodes as i64)),
                ("column_bytes", Value::int(dp.columnar.column_bytes as i64)),
                (
                    "kernel_invocations",
                    Value::int(dp.columnar.kernel_invocations as i64),
                ),
            ]),
        ),
    ]);
    let opt = mdm_relational::metrics::optimizer_snapshot();
    let stats_catalog = mdm.stats_snapshot();
    let optimizer = Value::object([
        ("mode", Value::string(mdm.optimize_mode().to_string())),
        ("stats_epoch", Value::int(stats_catalog.epoch as i64)),
        (
            "stats_refreshes",
            Value::int(stats_catalog.refreshes as i64),
        ),
        (
            "stats_observations",
            Value::int(stats_catalog.observations as i64),
        ),
        (
            "profiled_relations",
            Value::int(stats_catalog.relations.len() as i64),
        ),
        ("joins_reordered", Value::int(opt.joins_reordered as i64)),
        ("filters_pushed", Value::int(opt.filters_pushed as i64)),
        (
            "projections_pruned",
            Value::int(opt.projections_pruned as i64),
        ),
        ("branches_deduped", Value::int(opt.branches_deduped as i64)),
    ]);
    let journal = store.as_ref().map(|store| {
        let stats = store.stats();
        Value::object([
            ("wal_records", Value::int(stats.wal_records as i64)),
            ("wal_bytes", Value::int(stats.wal_bytes as i64)),
            ("fsyncs", Value::int(stats.fsyncs as i64)),
            ("generation", Value::int(stats.generation as i64)),
            (
                "last_compaction_gen",
                if stats.compactions > 0 {
                    Value::int(stats.generation as i64)
                } else {
                    Value::Null
                },
            ),
            ("compactions", Value::int(stats.compactions as i64)),
            ("fsync_policy", Value::string(store.policy().to_string())),
            ("healthy", Value::Bool(store.healthy())),
        ])
    });
    let mut fields = vec![
        ("epoch", Value::int(mdm.epoch() as i64)),
        (
            "requests_total",
            Value::int(state.requests.load(Relaxed) as i64),
        ),
        (
            "errors_total",
            Value::int(state.errors.load(Relaxed) as i64),
        ),
        (
            "uptime_ms",
            Value::int(state.started.elapsed().as_millis() as i64),
        ),
        ("workers", Value::int(state.workers as i64)),
        ("plan_cache", cache),
        ("evolution", evolution),
        ("availability", availability),
        ("pool", pool),
        ("data_plane", data_plane),
        ("optimizer", optimizer),
        ("breakers", breakers),
    ];
    if let Some(journal) = journal {
        fields.push(("journal", journal));
    }
    let replication = match &replica {
        Some(replica) => Value::object([
            ("role", Value::string("replica")),
            ("state", Value::string(replica.state().label())),
            (
                "replay_epoch",
                Value::int(replica.replay_epoch.load(Relaxed) as i64),
            ),
            (
                "primary_epoch",
                Value::int(replica.primary_epoch.load(Relaxed) as i64),
            ),
            ("replay_lag", Value::int(replica.replay_lag() as i64)),
            (
                "records_applied",
                Value::int(replica.records_applied.load(Relaxed) as i64),
            ),
            (
                "bootstraps",
                Value::int(replica.bootstraps.load(Relaxed) as i64),
            ),
            (
                "reconnects",
                Value::int(replica.reconnects.load(Relaxed) as i64),
            ),
        ]),
        None => {
            let peers = state.replication.connected_peers();
            Value::object([
                (
                    "role",
                    Value::string(if store.is_some() { "primary" } else { "single" }),
                ),
                (
                    "streamed_records",
                    Value::int(state.replication.streamed_records.load(Relaxed) as i64),
                ),
                (
                    "stream_requests",
                    Value::int(state.replication.stream_requests.load(Relaxed) as i64),
                ),
                (
                    "snapshots_served",
                    Value::int(state.replication.snapshots_served.load(Relaxed) as i64),
                ),
                ("connected_replicas", Value::int(peers.len() as i64)),
                (
                    "replicas",
                    Value::array(peers.into_iter().map(|p| {
                        Value::object([
                            ("id", Value::string(p.id)),
                            ("offset", Value::int(p.offset as i64)),
                            ("lag_records", Value::int(p.lag_records as i64)),
                        ])
                    })),
                ),
            ])
        }
    };
    fields.push(("replication", replication));
    // Failover gauges render on both roles: operators watching a fleet
    // should see terms and fencing activity wherever they look.
    fields.push((
        "failover",
        Value::object([
            ("term", Value::int(state.current_term() as i64)),
            ("fenced", Value::Bool(state.is_fenced())),
            (
                "promotions",
                Value::int(state.failover.promotions.load(Relaxed) as i64),
            ),
            (
                "fenced_rejections",
                Value::int(state.failover.fenced_rejections.load(Relaxed) as i64),
            ),
            (
                "rejoins",
                Value::int(state.failover.rejoins.load(Relaxed) as i64),
            ),
            (
                "divergent_records_discarded",
                Value::int(state.failover.divergent_records_discarded.load(Relaxed) as i64),
            ),
        ]),
    ));
    ok_json(Value::object(fields))
}

/// Most changefeed records shipped per `/changes` response; a lagging
/// cursor loops until a response comes back empty.
const MAX_CHANGE_RECORDS: usize = 1024;

/// One changefeed record as `/changes` serves it: the epoch cursor, the op
/// kind and summary, and the dependency-footprint digest clients use to
/// decide which of their own derived artifacts a mutation touches.
fn change_value(record: &ChangeRecord) -> Value {
    Value::object([
        ("epoch", Value::int(record.epoch as i64)),
        ("kind", Value::string(record.kind)),
        ("summary", Value::string(record.summary.as_str())),
        ("extension", Value::Bool(record.extension)),
        (
            "footprint",
            Value::object([
                (
                    "concepts",
                    Value::array(
                        record
                            .footprint
                            .concepts
                            .iter()
                            .map(|c| Value::string(c.as_str())),
                    ),
                ),
                (
                    "wrappers",
                    Value::array(
                        record
                            .footprint
                            .wrappers
                            .iter()
                            .map(|w| Value::string(w.as_str())),
                    ),
                ),
                ("global", Value::Bool(record.footprint.global)),
            ]),
        ),
    ])
}

/// `GET /changes?since=N&limit=L&wait_ms=W`: the evolution changefeed —
/// every committed steward mutation after epoch `N`, oldest first, with
/// its dependency footprint. Serves on every role (replica replay commits
/// through the same mutators, so a replica's feed mirrors its primary's).
///
/// A caught-up cursor long-polls: with `wait_ms > 0` the request parks
/// (on the durable store's condvar when one exists, otherwise a short
/// sleep-poll against the epoch) until a mutation lands or the wait
/// expires, then answers — possibly empty. `truncated: true` means the
/// cursor predates the retained horizon and the client should re-sync
/// from a snapshot instead of trusting the gap.
fn changes(state: &AppState, request: &Request) -> Response {
    let params = (|| {
        Ok((
            u64_param(request, "since")?,
            u64_param(request, "limit")?,
            u64_param(request, "wait_ms")?,
        ))
    })();
    let (since, limit, wait_ms) = match params {
        Ok(t) => t,
        Err(r) => return r,
    };
    let limit = match limit {
        0 => MAX_CHANGE_RECORDS,
        n => (n as usize).min(MAX_CHANGE_RECORDS),
    };
    let wait_ms = wait_ms.min(MAX_STREAM_WAIT_MS);
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let store = state.store();
    loop {
        let (records, truncated, epoch, wal_mark) = {
            let mdm = state.mdm.read().expect("state poisoned");
            let (records, truncated) = mdm.changes_since(since, limit);
            // The WAL position is read under the same lock as the feed, so
            // the long-poll below cannot miss a commit that landed between
            // "feed is empty" and "start waiting".
            let wal_mark = store
                .as_ref()
                .map(|s| (s.generation(), s.stats().wal_records));
            (records, truncated, mdm.epoch(), wal_mark)
        };
        let now = Instant::now();
        if !records.is_empty() || truncated || now >= deadline {
            let next = records.last().map_or(since, |r| r.epoch);
            return ok_json(Value::object([
                ("since", Value::int(since as i64)),
                ("next", Value::int(next as i64)),
                ("epoch", Value::int(epoch as i64)),
                ("truncated", Value::Bool(truncated)),
                ("changes", Value::array(records.iter().map(change_value))),
            ]));
        }
        let remaining = deadline - now;
        match (&store, wal_mark) {
            (Some(store), Some((generation, wal_records))) => {
                store.wait_for_records(generation, wal_records, remaining);
            }
            // No durable store to park on (in-memory primary, replica):
            // poll the feed at a small fixed cadence.
            _ => std::thread::sleep(remaining.min(Duration::from_millis(25))),
        }
    }
}

/// Folds the journal into a fresh snapshot generation. 409 without a
/// durable store. Takes the write lock so the snapshot and the WAL swap
/// are atomic with respect to concurrent steward mutations.
fn admin_compact(state: &AppState) -> Response {
    let Some(store) = state.store() else {
        return error_response(
            409,
            "repository",
            "server runs without a data_dir; nothing to compact",
        );
    };
    let mdm = state.mdm.write().expect("state poisoned");
    match store.compact(&mdm) {
        Ok(generation) => ok_json(Value::object([
            ("ok", Value::Bool(true)),
            ("generation", Value::int(generation as i64)),
            ("epoch", Value::int(mdm.epoch() as i64)),
        ])),
        Err(e) => mdm_error_response(&e),
    }
}

/// `POST /admin/promote`: this replica becomes the primary of a new
/// fencing term. The sync thread is detached first (severing its
/// long-poll), so everything durably received has been replayed; then,
/// under the metadata write lock, a fresh journal generation opens at the
/// bumped term and the node's role flips to primary in one swap. From the
/// response on, steward mutations are accepted here and any stale peer is
/// fenced with 409.
fn admin_promote(state: &AppState) -> Response {
    let Some(replica) = state.replica() else {
        return error_response(
            409,
            "fencing",
            &format!(
                "this node is not a replica (term {}); only replicas can be promoted",
                state.current_term()
            ),
        );
    };
    if replica.state() == ReplicaState::Poisoned {
        let detail = replica
            .last_error()
            .unwrap_or_else(|| "unknown error".to_string());
        return error_response(
            409,
            "fencing",
            &format!(
                "replica replay is poisoned at WAL offset {} ({detail}); \
                 its state may have diverged from the primary's — refusing promotion",
                replica.poisoned_offset()
            ),
        );
    }
    if !replica.is_bootstrapped() {
        return error_response(
            409,
            "fencing",
            "replica never bootstrapped; it holds no replicated state to promote",
        );
    }
    // Stop replaying before reading the final state: the sync loop applies
    // each batch fully before requesting the next, so once it exits,
    // everything durably received has been applied.
    replica.request_detach();
    if !replica.wait_detached(Duration::from_secs(15)) {
        return error_response(
            503,
            "fencing",
            "replication thread did not detach in time; retry promotion",
        );
    }
    let new_term = replica.term().max(1) + 1;
    let mut mdm = state.mdm.write().expect("state poisoned");
    let store = match &state.promote_dir {
        Some(dir) => match MetaStore::promote_in(dir, state.fsync, &mdm, new_term) {
            Ok(store) => Some(store),
            Err(e) => return mdm_error_response(&e),
        },
        None => None,
    };
    mdm.set_journal(store.clone().map(|s| s as std::sync::Arc<dyn JournalSink>));
    let generation = store.as_ref().map_or(0, |s| s.generation());
    state.set_role(RoleState {
        store,
        replica: None,
    });
    state.set_solo_term(new_term);
    state.failover.promotions.fetch_add(1, SeqCst);
    ok_json(Value::object([
        ("ok", Value::Bool(true)),
        ("role", Value::string("primary")),
        ("term", Value::int(new_term as i64)),
        ("generation", Value::int(generation as i64)),
        ("epoch", Value::int(mdm.epoch() as i64)),
    ]))
}

/// `POST /admin/fence {"term": N}`: informs this node that term `N`
/// exists elsewhere. A primary (or single node) with an older term latches
/// the fence and stops accepting writes; a replica raises the term it
/// presents upstream, so a stale primary is rejected at next contact.
fn admin_fence(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let term = match body
        .get("term")
        .and_then(Value::as_number)
        .and_then(|n| n.as_i64())
        .and_then(|n| u64::try_from(n).ok())
    {
        Some(t) => t,
        None => return error_response(400, "protocol", "missing unsigned field 'term'"),
    };
    if let Some(replica) = state.replica() {
        replica.observe_term(term);
        return ok_json(Value::object([
            ("ok", Value::Bool(true)),
            ("role", Value::string("replica")),
            ("term", Value::int(replica.term() as i64)),
        ]));
    }
    let own = state.current_term();
    if term > own {
        state.fence(term);
        return ok_json(Value::object([
            ("ok", Value::Bool(true)),
            ("fenced", Value::Bool(true)),
            ("term", Value::int(own as i64)),
            ("fenced_by_term", Value::int(state.fenced_by() as i64)),
        ]));
    }
    state.failover.fenced_rejections.fetch_add(1, SeqCst);
    term_error(
        409,
        &format!("fence term {term} is not newer than this node's term {own}"),
        own,
        None,
    )
}

// ---------------------------------------------------------------------
// Replication routes (what replicas feed from)
// ---------------------------------------------------------------------

/// Most WAL records shipped per stream response; a lagging replica loops
/// until the batch reports `caught_up`.
const MAX_STREAM_RECORDS: usize = 1024;

/// Longest a stream request may long-poll before answering empty.
const MAX_STREAM_WAIT_MS: u64 = 30_000;

/// The value of `name` in the request's query string, if present.
fn query_param<'r>(request: &'r Request, name: &str) -> Option<&'r str> {
    request.query.as_deref()?.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        (key == name).then_some(value)
    })
}

/// An unsigned query parameter, defaulting to 0 when absent.
fn u64_param(request: &Request, name: &str) -> Result<u64, Response> {
    match query_param(request, name) {
        None => Ok(0),
        Some(raw) => raw.parse().map_err(|_| {
            error_response(
                400,
                "protocol",
                &format!("query parameter '{name}' must be an unsigned integer"),
            )
        }),
    }
}

/// `GET /replication/stream?generation=G&from=N&wait_ms=W&replica_id=ID`:
/// the WAL tail from offset `N` of generation `G`, as a binary
/// [`ReplicationBatch`]. When `G` is stale or `N` ran past the WAL, the
/// batch carries a full snapshot and restarts the replica from offset 0 —
/// the protocol is self-correcting, never an error. A caught-up replica
/// long-polls: the request parks up to `wait_ms` (capped at 30 s) on the
/// store's condvar and returns as soon as a mutation lands.
///
/// `&term=T` carries the highest fencing term the replica has observed
/// (0 on first contact). A mismatch is the failover handshake: a replica
/// presenting a *newer* term fences this primary on the spot (it lost an
/// election it never saw); a replica presenting an *older* term is told
/// the current term and its start epoch so it can discard its divergent
/// tail and resync. Both answer 409 — replication never serves records
/// across a term boundary.
fn replication_stream(state: &AppState, request: &Request) -> Response {
    use std::sync::atomic::Ordering::Relaxed;
    let Some(store) = state.store() else {
        return error_response(
            409,
            "replication",
            "server runs without a data_dir; nothing to replicate",
        );
    };
    let params = (|| {
        Ok((
            u64_param(request, "generation")?,
            u64_param(request, "from")?,
            u64_param(request, "wait_ms")?,
            u64_param(request, "term")?,
        ))
    })();
    let (generation, from, wait_ms, req_term) = match params {
        Ok(t) => t,
        Err(r) => return r,
    };
    let own_term = store.term();
    if state.is_fenced() {
        state.failover.fenced_rejections.fetch_add(1, SeqCst);
        return term_error(
            409,
            &format!(
                "this primary (term {own_term}) is fenced by term {}; it no longer serves replication",
                state.fenced_by()
            ),
            state.fenced_by(),
            None,
        );
    }
    if req_term > own_term {
        // The replica has seen a newer primary than us: we are stale.
        // Fence ourselves so steward writes stop immediately.
        state.fence(req_term);
        state.failover.fenced_rejections.fetch_add(1, SeqCst);
        return term_error(
            409,
            &format!(
                "replica presented term {req_term}, newer than this primary's term {own_term}; fencing"
            ),
            req_term,
            None,
        );
    }
    if req_term != 0 && req_term < own_term {
        // Stale replica (likely a demoted primary rejoining): hand it the
        // current term and its fork epoch so it can discard its tail.
        state.failover.fenced_rejections.fetch_add(1, SeqCst);
        return term_error(
            409,
            &format!(
                "replica term {req_term} is older than this primary's term {own_term}; resync required"
            ),
            own_term,
            Some(store.term_start_epoch()),
        );
    }
    let wait_ms = wait_ms.min(MAX_STREAM_WAIT_MS);
    let replica_id = query_param(request, "replica_id").unwrap_or("anonymous");
    state.replication.stream_requests.fetch_add(1, Relaxed);
    let mut waited = false;
    loop {
        let batch = {
            // The read lock orders the primary epoch with the WAL view:
            // no mutation can commit between reading the epoch and
            // slicing the records.
            let mdm = state.mdm.read().expect("state poisoned");
            store.replication_batch(generation, from, MAX_STREAM_RECORDS, mdm.epoch())
        };
        if batch.snapshot.is_some() || !batch.records.is_empty() || waited || wait_ms == 0 {
            state
                .replication
                .streamed_records
                .fetch_add(batch.records.len() as u64, Relaxed);
            if batch.snapshot.is_some() {
                state.replication.snapshots_served.fetch_add(1, Relaxed);
            }
            let lag = batch.wal_len.saturating_sub(batch.next_offset());
            state.replication.observe(replica_id, from, lag);
            return Response::binary(200, batch.encode());
        }
        store.wait_for_records(generation, from, Duration::from_millis(wait_ms));
        waited = true;
    }
}

/// `GET /replication/wrappers`: names of the wrappers this node can
/// execute. The journal ships metadata only, so a bootstrapping replica
/// asks here which wrapper payloads to hydrate.
fn replication_wrappers(state: &AppState) -> Response {
    let mdm = state.mdm.read().expect("state poisoned");
    ok_json(Value::object([
        (
            "wrappers",
            Value::array(mdm.catalog().names().into_iter().map(Value::string)),
        ),
        ("epoch", Value::int(mdm.epoch() as i64)),
    ]))
}

/// `GET /replication/wrapper?name=X`: one wrapper's full release — enough
/// for a replica to rebuild the executable wrapper via hydration.
fn replication_wrapper(state: &AppState, request: &Request) -> Response {
    let Some(name) = query_param(request, "name") else {
        return error_response(400, "protocol", "missing query parameter 'name'");
    };
    let mdm = state.mdm.read().expect("state poisoned");
    let Some(wrapper) = mdm.catalog().get(name) else {
        return error_response(404, "replication", &format!("no wrapper named '{name}'"));
    };
    let release = wrapper.release();
    let format = match release.format {
        Format::Json => "json",
        Format::Xml => "xml",
        Format::Csv => "csv",
    };
    let bindings = Value::object(
        wrapper
            .bindings()
            .iter()
            .map(|(attribute, column)| (attribute.clone(), Value::string(column.as_str()))),
    );
    ok_json(Value::object([
        ("name", Value::string(wrapper.name())),
        ("source", Value::string(wrapper.source())),
        ("version", Value::int(release.version as i64)),
        ("format", Value::string(format)),
        ("payload", Value::string(release.body.as_str())),
        ("notes", Value::string(release.notes.as_str())),
        (
            "attributes",
            Value::array(
                wrapper
                    .signature()
                    .attributes()
                    .iter()
                    .map(|a| Value::string(a.as_str())),
            ),
        ),
        ("bindings", bindings),
    ]))
}

// ---------------------------------------------------------------------
// Steward routes
// ---------------------------------------------------------------------

/// Standard mutation acknowledgement: `{"ok":true,"epoch":N}` (+ extras).
fn ack(mdm: &Mdm, extras: Vec<(&'static str, Value)>) -> Response {
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("epoch", Value::int(mdm.epoch() as i64)),
    ];
    fields.extend(extras);
    ok_json(Value::object(fields))
}

fn steward_concepts(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    let concept = match str_field(&body, "concept").and_then(|t| resolve(&mdm, t)) {
        Ok(iri) => iri,
        Err(r) => return r,
    };
    match mdm.define_concept(&concept) {
        Ok(()) => ack(&mdm, vec![("concept", Value::string(concept.to_string()))]),
        Err(e) => mdm_error_response(&e),
    }
}

fn steward_features(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let identifier = body
        .get("identifier")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let mut mdm = state.mdm.write().expect("state poisoned");
    let parsed = str_field(&body, "concept")
        .and_then(|t| resolve(&mdm, t))
        .and_then(|c| {
            str_field(&body, "feature")
                .and_then(|t| resolve(&mdm, t))
                .map(|f| (c, f))
        });
    let (concept, feature) = match parsed {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    let result = if identifier {
        mdm.define_identifier(&concept, &feature)
    } else {
        mdm.define_feature(&concept, &feature)
    };
    match result {
        Ok(()) => ack(&mdm, vec![("feature", Value::string(feature.to_string()))]),
        Err(e) => mdm_error_response(&e),
    }
}

fn steward_relations(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    let parsed = (|| {
        let from = resolve(&mdm, str_field(&body, "from")?)?;
        let property = resolve(&mdm, str_field(&body, "property")?)?;
        let to = resolve(&mdm, str_field(&body, "to")?)?;
        Ok((from, property, to))
    })();
    let (from, property, to) = match parsed {
        Ok(triple) => triple,
        Err(r) => return r,
    };
    match mdm.define_relation(&from, &property, &to) {
        Ok(()) => ack(
            &mdm,
            vec![("property", Value::string(property.to_string()))],
        ),
        Err(e) => mdm_error_response(&e),
    }
}

fn steward_subconcepts(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    let parsed = (|| {
        let sub = resolve(&mdm, str_field(&body, "sub")?)?;
        let sup = resolve(&mdm, str_field(&body, "sup")?)?;
        Ok((sub, sup))
    })();
    let (sub, sup) = match parsed {
        Ok(pair) => pair,
        Err(r) => return r,
    };
    match mdm.define_subconcept(&sub, &sup) {
        Ok(()) => ack(&mdm, vec![("sub", Value::string(sub.to_string()))]),
        Err(e) => mdm_error_response(&e),
    }
}

fn steward_sources(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let name = match str_field(&body, "name") {
        Ok(n) => n,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    match mdm.add_source(name) {
        Ok(iri) => ack(&mdm, vec![("source", Value::string(iri.to_string()))]),
        Err(e) => mdm_error_response(&e),
    }
}

/// Registers a wrapper release. `attributes` fixes the signature order;
/// `bindings` is an object mapping each attribute to the flattened payload
/// column it reads; `payload` is the release body in `format`
/// (json | xml | csv, default json).
fn steward_wrappers(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let built = (|| {
        let name = str_field(&body, "name")?;
        let source = str_field(&body, "source")?;
        let version = u32_field(&body, "version")?;
        let payload = str_field(&body, "payload")?;
        let format = match body.get("format").and_then(Value::as_str).unwrap_or("json") {
            "json" => Format::Json,
            "xml" => Format::Xml,
            "csv" => Format::Csv,
            other => {
                return Err(error_response(
                    400,
                    "protocol",
                    &format!("unknown format '{other}' (expected json, xml or csv)"),
                ))
            }
        };
        let attributes: Vec<String> = body
            .get("attributes")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        if attributes.is_empty() {
            return Err(error_response(
                400,
                "protocol",
                "missing array field 'attributes'",
            ));
        }
        let bindings_object = body
            .get("bindings")
            .and_then(Value::as_object)
            .ok_or_else(|| error_response(400, "protocol", "missing object field 'bindings'"))?;
        let mut bindings = Vec::with_capacity(attributes.len());
        for attribute in &attributes {
            let column = bindings_object
                .get(attribute)
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    error_response(
                        400,
                        "protocol",
                        &format!("bindings lacks a column for attribute '{attribute}'"),
                    )
                })?;
            bindings.push((attribute.clone(), column.to_string()));
        }
        let signature = Signature::new(name, attributes)
            .map_err(|e| error_response(400, "registration", &e.to_string()))?;
        let release = Release {
            version,
            format,
            body: payload.to_string(),
            notes: body
                .get("notes")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
        };
        Wrapper::over_release(signature, source, release, bindings)
            .map_err(|e| error_response(400, "registration", &e.to_string()))
    })();
    let wrapper = match built {
        Ok(w) => w,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    match mdm.register_wrapper(wrapper) {
        Ok(registration) => ack(
            &mdm,
            vec![
                ("wrapper", Value::string(registration.wrapper.to_string())),
                (
                    "reused",
                    Value::array(
                        registration
                            .reused
                            .iter()
                            .map(|s| Value::string(s.as_str())),
                    ),
                ),
                (
                    "minted",
                    Value::array(
                        registration
                            .minted
                            .iter()
                            .map(|s| Value::string(s.as_str())),
                    ),
                ),
            ],
        ),
        Err(e) => mdm_error_response(&e),
    }
}

fn steward_mappings(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    let built = (|| {
        let wrapper = str_field(&body, "wrapper")?;
        let mut builder = MappingBuilder::for_wrapper(wrapper);
        for item in body
            .get("concepts")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let token = item
                .as_str()
                .ok_or_else(|| error_response(400, "protocol", "'concepts' must hold strings"))?;
            builder = builder.cover_concept(&resolve(&mdm, token)?);
        }
        for item in body
            .get("features")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let token = item
                .as_str()
                .ok_or_else(|| error_response(400, "protocol", "'features' must hold strings"))?;
            builder = builder.cover_feature(&resolve(&mdm, token)?);
        }
        for item in body
            .get("relations")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let from = resolve(&mdm, str_field(item, "from")?)?;
            let property = resolve(&mdm, str_field(item, "property")?)?;
            let to = resolve(&mdm, str_field(item, "to")?)?;
            builder = builder.cover_relation(&from, &property, &to);
        }
        for item in body.get("same_as").and_then(Value::as_array).unwrap_or(&[]) {
            let attribute = str_field(item, "attribute")?;
            let feature = resolve(&mdm, str_field(item, "feature")?)?;
            builder = builder.same_as(attribute, &feature);
        }
        Ok(builder)
    })();
    let builder = match built {
        Ok(b) => b,
        Err(r) => return r,
    };
    match mdm.define_mapping(builder) {
        Ok(graph) => ack(&mdm, vec![("graph", Value::string(graph.to_string()))]),
        Err(e) => mdm_error_response(&e),
    }
}

/// `POST /steward/stats/refresh`: bumps the **stats epoch** — the next
/// scan of each relation re-profiles it and every cached plan re-optimizes
/// on next use. Deliberately *not* a metadata mutation: the metadata epoch
/// is untouched and no rewriting is invalidated, so golden outputs cannot
/// change. It still lives under `/steward/` so replicas route it to the
/// primary, where queries (and thus observations) concentrate.
fn steward_stats_refresh(state: &AppState) -> Response {
    let mdm = state.mdm.read().expect("state poisoned");
    let stats_epoch = mdm.refresh_stats();
    ok_json(Value::object([
        ("ok", Value::Bool(true)),
        ("stats_epoch", Value::int(stats_epoch as i64)),
        ("epoch", Value::int(mdm.epoch() as i64)),
    ]))
}

fn steward_snapshot(state: &AppState) -> Response {
    let mdm = state.mdm.read().expect("state poisoned");
    ok_json(Value::object([
        ("snapshot", Value::string(mdm.snapshot())),
        ("epoch", Value::int(mdm.epoch() as i64)),
    ]))
}

/// Swaps in restored metadata. Wrapper payloads are data, not metadata:
/// the execution catalog starts empty and wrappers re-register through
/// `/steward/wrappers`. The epoch keeps increasing across the swap.
fn steward_restore(state: &AppState, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let snapshot = match str_field(&body, "snapshot") {
        Ok(s) => s,
        Err(r) => return r,
    };
    let mut mdm = state.mdm.write().expect("state poisoned");
    match Mdm::restore_metadata(snapshot) {
        Ok(mut restored) => {
            restored.ensure_epoch_at_least(mdm.epoch() + 1);
            *mdm = restored;
            if let Some(store) = state.store() {
                // A restore replaces the whole state, which no journal op
                // expresses: fold it into a fresh generation and re-attach
                // the sink so subsequent mutations journal again.
                if let Err(e) = store.compact(&mdm) {
                    return mdm_error_response(&e);
                }
                mdm.set_journal(Some(store));
            }
            ack(&mdm, Vec::new())
        }
        Err(e) => mdm_error_response(&e),
    }
}

// ---------------------------------------------------------------------
// Analyst routes
// ---------------------------------------------------------------------

/// Parses the `walk` DSL field under the read lock and hands the validated
/// walk to `handler`.
fn with_walk(
    state: &AppState,
    request: &Request,
    handler: impl FnOnce(&Mdm, &Walk) -> Result<Value, MdmError>,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let text = match str_field(&body, "walk") {
        Ok(t) => t,
        Err(r) => return r,
    };
    let mdm = state.mdm.read().expect("state poisoned");
    let walk = match walk_dsl::parse_walk(text, mdm.ontology())
        .and_then(|walk| walk.validate(mdm.ontology()).map(|()| walk))
    {
        Ok(walk) => walk,
        Err(e) => return mdm_error_response(&e),
    };
    match handler(&mdm, &walk) {
        Ok(value) => ok_json(value),
        Err(e) => mdm_error_response(&e),
    }
}

fn analyst_parse(state: &AppState, request: &Request) -> Response {
    with_walk(state, request, |mdm, walk| {
        Ok(Value::object([
            (
                "text",
                Value::string(walk_dsl::walk_to_text(walk, mdm.ontology())),
            ),
            ("canonical_key", Value::string(walk.canonical_key())),
            ("concepts", Value::int(walk.concepts().len() as i64)),
            ("features", Value::int(walk.all_features().len() as i64)),
            ("relations", Value::int(walk.relations().len() as i64)),
        ]))
    })
}

fn analyst_rewrite(state: &AppState, request: &Request) -> Response {
    with_walk(state, request, |mdm, walk| {
        let rewriting = mdm.rewrite_cached(walk)?;
        Ok(Value::object([
            ("sparql", Value::string(rewriting.sparql.clone())),
            ("algebra", Value::string(rewriting.algebra())),
            ("branches", Value::int(rewriting.branch_count() as i64)),
            (
                "output_columns",
                Value::array(
                    rewriting
                        .output_columns
                        .iter()
                        .map(|s| Value::string(s.as_str())),
                ),
            ),
            ("epoch", Value::int(mdm.epoch() as i64)),
        ]))
    })
}

/// The explain payload: the derivation narration plus the optimized plan
/// tree annotated with estimated and actual per-operator cardinalities.
fn explain_value(mdm: &Mdm, walk: &Walk) -> Result<Value, MdmError> {
    let rewriting = mdm.rewrite_cached(walk)?;
    let plan = mdm.explain_plan(walk)?;
    Ok(Value::object([
        ("explain", Value::string(rewriting.explain())),
        ("plan", Value::string(plan)),
        ("optimize", Value::string(mdm.optimize_mode().to_string())),
        ("branches", Value::int(rewriting.branch_count() as i64)),
        ("epoch", Value::int(mdm.epoch() as i64)),
        ("stats_epoch", Value::int(mdm.stats_epoch() as i64)),
    ]))
}

fn analyst_explain(state: &AppState, request: &Request) -> Response {
    with_walk(state, request, explain_value)
}

/// Decodes `%XX` escapes and `+`-for-space in a query-string value.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                        continue;
                    }
                    _ => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            byte => out.push(byte),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// `GET /analyst/explain?walk=...`: the POST route's payload without a
/// body, so a browser or plain `curl` can inspect a plan.
fn analyst_explain_get(state: &AppState, request: &Request) -> Response {
    let Some(raw) = query_param(request, "walk") else {
        return error_response(400, "protocol", "missing query parameter 'walk'");
    };
    let text = percent_decode(raw);
    let mdm = state.mdm.read().expect("state poisoned");
    let walk = match walk_dsl::parse_walk(&text, mdm.ontology())
        .and_then(|walk| walk.validate(mdm.ontology()).map(|()| walk))
    {
        Ok(walk) => walk,
        Err(e) => return mdm_error_response(&e),
    };
    match explain_value(&mdm, &walk) {
        Ok(value) => ok_json(value),
        Err(e) => mdm_error_response(&e),
    }
}

fn completeness_json(completeness: &mdm_core::Completeness) -> Value {
    let dropped = Value::array(completeness.dropped.iter().map(|d| {
        Value::object([
            (
                "wrappers",
                Value::array(d.wrappers.iter().map(|w| Value::string(w.as_str()))),
            ),
            ("kind", Value::string(d.kind.as_str())),
            ("reason", Value::string(d.reason.as_str())),
        ])
    }));
    Value::object([
        ("complete", Value::Bool(completeness.is_complete())),
        (
            "total_branches",
            Value::int(completeness.total_branches as i64),
        ),
        (
            "executed_branches",
            Value::int(completeness.executed_branches as i64),
        ),
        (
            "contributors",
            Value::array(
                completeness
                    .contributors
                    .iter()
                    .map(|c| Value::string(c.as_str())),
            ),
        ),
        ("dropped", dropped),
        ("retries", Value::int(completeness.retries as i64)),
        ("summary", Value::string(completeness.summary())),
    ])
}

fn analyst_query(state: &AppState, request: &Request) -> Response {
    let deadline = Deadline::after(state.request_deadline);
    with_walk(state, request, |mdm, walk| {
        let answer = mdm.query_degraded(walk, deadline)?;
        let mut fields = match table_json(&answer.table) {
            Value::Object(map) => map.into_iter().collect::<Vec<_>>(),
            _ => unreachable!("table_json returns an object"),
        };
        fields.push((
            "branches".to_string(),
            Value::int(answer.rewriting.branch_count() as i64),
        ));
        fields.push((
            "completeness".to_string(),
            completeness_json(&answer.completeness),
        ));
        fields.push(("epoch".to_string(), Value::int(mdm.epoch() as i64)));
        Ok(Value::object(fields))
    })
}

//! A tiny blocking HTTP/1.1 client — enough for the CLI, tests and benches
//! to drive an `mdm-server` without third-party dependencies.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A response as the client sees it.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

/// A response whose body stays raw bytes (replication batches are binary).
#[derive(Clone, Debug)]
pub struct RawResponse {
    pub status: u16,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl RawResponse {
    /// Treats non-2xx statuses as errors carrying the (lossy) body text.
    pub fn into_ok(self) -> Result<Vec<u8>, String> {
        if (200..300).contains(&self.status) {
            Ok(self.body)
        } else {
            Err(format!(
                "HTTP {}: {}",
                self.status,
                String::from_utf8_lossy(&self.body)
            ))
        }
    }
}

impl ClientResponse {
    /// Treats non-2xx statuses as errors carrying the body.
    pub fn into_ok(self) -> Result<String, String> {
        if (200..300).contains(&self.status) {
            Ok(self.body)
        } else {
            Err(format!("HTTP {}: {}", self.status, self.body))
        }
    }

    /// First value of `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == wanted)
            .map(|(_, v)| v.as_str())
    }
}

/// A connection that can issue several requests (keep-alive).
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    pub fn open(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Connection { stream })
    }

    /// Sends one request and reads the response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let raw = self.send_raw(method, path, body)?;
        let body = String::from_utf8(raw.body).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8")
        })?;
        Ok(ClientResponse {
            status: raw.status,
            headers: raw.headers,
            body,
        })
    }

    /// Sends one request and reads the response body as raw bytes.
    pub fn send_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let body = body.unwrap_or_default();
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: mdm\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.stream.flush()?;
        read_client_response(&mut BufReader::new(&mut self.stream))
    }

    /// Bounds how long a read may block (long-polls want a generous cap).
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// A handle onto the underlying socket, so another thread can sever a
    /// blocked read (`TcpStream::shutdown`) without owning the connection.
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}

fn read_client_response(reader: &mut impl io::BufRead) -> io::Result<RawResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line '{}'", status_line.trim_end()),
            )
        })?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(RawResponse {
        status,
        headers,
        body,
    })
}

/// One-shot GET over a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<ClientResponse> {
    Connection::open(addr)?.send("GET", path, None)
}

/// One-shot GET of a binary body over a fresh connection.
pub fn get_raw(addr: impl ToSocketAddrs, path: &str) -> io::Result<RawResponse> {
    Connection::open(addr)?.send_raw("GET", path, None)
}

/// One-shot POST of a JSON body over a fresh connection.
pub fn post_json(addr: impl ToSocketAddrs, path: &str, body: &str) -> io::Result<ClientResponse> {
    Connection::open(addr)?.send("POST", path, Some(body))
}

//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Implements exactly what the MDM service needs: request-line + header
//! parsing, `Content-Length` bodies, keep-alive, and response writing.
//! No chunked transfer, no TLS, no HTTP/2 — analysts and stewards speak
//! plain JSON over loopback or a trusted network segment.

use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on header count.
const MAX_HEADERS: usize = 100;
/// Upper bound on a request body (wrapper payloads ride in JSON strings).
const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without `?`), when present.
    pub query: Option<String>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }

    /// True when the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                if line.len() > MAX_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "header line is not UTF-8"))
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending another request (normal keep-alive shutdown);
/// `InvalidData` errors mean a malformed request (answer 400 and close).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let request_line = match read_line(reader)? {
        Some(line) if !line.is_empty() => line,
        _ => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line '{request_line}'"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol '{version}'"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "connection closed mid-headers")
        })?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed header '{line}'"),
            )
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(length) = request.header("content-length") {
        let length: usize = length.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad Content-Length '{length}'"),
            )
        })?;
        if length > MAX_BODY {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// A `BufRead` over a byte slice that reports `WouldBlock` instead of EOF
/// when the slice runs out. Feeding it to [`read_request`] turns the
/// blocking parser into an incremental one: `WouldBlock` surfacing from any
/// depth of the parse means "the buffer holds only a request prefix — read
/// more bytes and retry", while real protocol errors (`InvalidData`) keep
/// their meaning. The event loop re-parses from the buffer start on each
/// attempt; requests are small (bounded by the same limits as the blocking
/// path), so the re-scan is cheap.
struct PartialReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl io::Read for PartialReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let remaining = &self.bytes[self.pos..];
        if remaining.is_empty() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "need more data"));
        }
        let n = remaining.len().min(out.len());
        out[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for PartialReader<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.bytes.len() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "need more data"));
        }
        Ok(&self.bytes[self.pos..])
    }

    fn consume(&mut self, amount: usize) {
        self.pos = (self.pos + amount).min(self.bytes.len());
    }
}

/// Attempts to parse one complete request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a full request; the caller drains
///   `consumed` bytes from the buffer (pipelined bytes after it stay).
/// * `Ok(None)` — the buffer holds an incomplete request; read more.
/// * `Err(InvalidData)` — malformed; answer 400 and close.
pub fn parse_buffered(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
    let mut reader = PartialReader { bytes: buf, pos: 0 };
    match read_request(&mut reader) {
        Ok(Some(request)) => Ok(Some((request, reader.pos))),
        // `read_request` only returns None on EOF, which PartialReader
        // never reports; treat it as "incomplete" for robustness.
        Ok(None) => Ok(None),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    }
}

/// A response ready to serialise.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond the standard trio (e.g. `Retry-After`).
    pub headers: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-serialised text.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A binary response (replication batches).
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        421 => "Misdirected Request",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialises `response`; `keep_alive` controls the `Connection` header.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let request = parse(
            "POST /analyst/query?limit=5 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/analyst/query");
        assert_eq!(request.query.as_deref(), Some("limit=5"));
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body_text().unwrap(), "body");
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_is_detected() {
        let request = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!request.keep_alive());
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_rejected() {
        assert!(parse("BROKEN\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/2\r\n\r\n").is_err());
    }

    #[test]
    fn bad_content_length_rejected() {
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn extra_headers_and_overload_statuses() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}").with_header("Retry-After", "2");
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        assert_eq!(status_text(504), "Gateway Timeout");
    }

    #[test]
    fn partial_buffers_parse_incrementally() {
        let full = b"POST /analyst/query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        // Every proper prefix is "incomplete", never an error.
        for cut in 0..full.len() {
            assert!(
                parse_buffered(&full[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (request, consumed) = parse_buffered(full).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        assert_eq!(request.body_text().unwrap(), "body");
    }

    #[test]
    fn pipelined_bytes_stay_in_buffer() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_buffered(two).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, rest) = parse_buffered(&two[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn buffered_garbage_is_invalid_data() {
        let err = parse_buffered(b"NOT-HTTP\r\n\r\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = parse_buffered(b"GET /x HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}

//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Implements exactly what the MDM service needs: request-line + header
//! parsing, `Content-Length` bodies, keep-alive, and response writing.
//! No chunked transfer, no TLS, no HTTP/2 — analysts and stewards speak
//! plain JSON over loopback or a trusted network segment.

use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on header count.
const MAX_HEADERS: usize = 100;
/// Upper bound on a request body (wrapper payloads ride in JSON strings).
const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without `?`), when present.
    pub query: Option<String>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }

    /// True when the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    line.push(byte[0]);
                }
                if line.len() > MAX_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "header line is not UTF-8"))
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending another request (normal keep-alive shutdown);
/// `InvalidData` errors mean a malformed request (answer 400 and close).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let request_line = match read_line(reader)? {
        Some(line) if !line.is_empty() => line,
        _ => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line '{request_line}'"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol '{version}'"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "connection closed mid-headers")
        })?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed header '{line}'"),
            )
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(length) = request.header("content-length") {
        let length: usize = length.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad Content-Length '{length}'"),
            )
        })?;
        if length > MAX_BODY {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// A response ready to serialise.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond the standard trio (e.g. `Retry-After`).
    pub headers: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-serialised text.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds an extra header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialises `response`; `keep_alive` controls the `Connection` header.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_with_body() {
        let request = parse(
            "POST /analyst/query?limit=5 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/analyst/query");
        assert_eq!(request.query.as_deref(), Some("limit=5"));
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body_text().unwrap(), "body");
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_is_detected() {
        let request = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!request.keep_alive());
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_rejected() {
        assert!(parse("BROKEN\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/2\r\n\r\n").is_err());
    }

    #[test]
    fn bad_content_length_rejected() {
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn extra_headers_and_overload_statuses() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}").with_header("Retry-After", "2");
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        assert_eq!(status_text(504), "Gateway Timeout");
    }

    #[test]
    fn response_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}

//! Shared server state: the [`Mdm`] instance behind a readers–writer lock
//! plus request counters.
//!
//! Steward routes take the write lock (they mutate metadata and bump the
//! epoch); analyst routes take the read lock, so any number of queries run
//! concurrently and all share the epoch-keyed plan cache inside [`Mdm`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

use mdm_core::Mdm;

/// Everything a worker thread needs to answer a request.
pub struct AppState {
    pub mdm: RwLock<Mdm>,
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub started: Instant,
    pub workers: usize,
}

impl AppState {
    pub fn new(mdm: Mdm, workers: usize) -> Self {
        AppState {
            mdm: RwLock::new(mdm),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            started: Instant::now(),
            workers,
        }
    }

    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

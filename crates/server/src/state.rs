//! Shared server state: the [`Mdm`] instance behind a readers–writer lock
//! plus request counters and the availability knobs.
//!
//! Steward routes take the write lock (they mutate metadata and bump the
//! epoch); analyst routes take the read lock, so any number of queries run
//! concurrently and all share the epoch-keyed plan cache inside [`Mdm`].
//!
//! The server's **role** (primary with a journal, replica with a status
//! latch, or plain in-memory) lives behind its own lock because promotion
//! changes it at runtime: `POST /admin/promote` swaps a replica's
//! [`RoleState`] for a primary one atomically, so every route observes
//! either the old role or the new one, never a mixture.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use mdm_core::{FsyncPolicy, Mdm, MetaStore};

use crate::replication::{ReplicaStatus, ReplicationHub};
use crate::ServerConfig;

/// What the node currently is: journal + no latch = primary, latch + no
/// journal = replica, neither = in-memory single node.
#[derive(Default)]
pub struct RoleState {
    /// The durable journal behind `mdm`, when the node owns one.
    /// `/admin/compact` folds it, `/metrics` reports its counters, and
    /// `/healthz` flips to `degraded` when it is unhealthy.
    pub store: Option<Arc<MetaStore>>,
    /// Set while this server fronts a replica: routes consult it for
    /// `/healthz`, `/epoch`, and to 421 steward mutations to the primary.
    pub replica: Option<Arc<ReplicaStatus>>,
}

/// Failover counters for `/metrics` (rendered on both roles).
#[derive(Default)]
pub struct FailoverStats {
    /// Times this node promoted itself to primary.
    pub promotions: AtomicU64,
    /// Stale-term peers turned away with 409 (stream requests, steward
    /// writes on a fenced node, replica-side stale batches).
    pub fenced_rejections: AtomicU64,
    /// Times this node rejoined a newer-term primary as a replica.
    pub rejoins: AtomicU64,
    /// Divergent local WAL records discarded while rejoining.
    pub divergent_records_discarded: AtomicU64,
}

/// Everything a worker thread needs to answer a request.
pub struct AppState {
    pub mdm: RwLock<Mdm>,
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    /// Connections answered 503 because the queue was saturated or the
    /// server was draining.
    pub shed: AtomicU64,
    /// Accepted connections waiting for a worker (load-shedding gauge).
    pub queued: AtomicUsize,
    pub started: Instant,
    pub workers: usize,
    /// Queue depth beyond which new connections are shed with 503.
    pub max_pending: usize,
    /// Per-connection read timeout (keep-alive idle bound).
    pub read_timeout: Duration,
    /// Deadline budget handed to each analyst query.
    pub request_deadline: Duration,
    /// Seconds advertised in `Retry-After` on 503 responses.
    pub retry_after_secs: u64,
    /// The node's current role; swapped whole at promotion.
    role: RwLock<RoleState>,
    /// Primary-side replication gauges (`/replication/stream` feeds them).
    pub replication: ReplicationHub,
    /// Failover counters (promotions, fenced rejections, rejoins).
    pub failover: FailoverStats,
    /// Highest fencing term this node has been fenced by (0 = never).
    /// The node is *fenced* while this exceeds its own term: steward
    /// mutations and replication streams answer 409 until it rejoins.
    fenced_by: AtomicU64,
    /// Term an in-memory node (no journal, no latch) serves under.
    solo_term: AtomicU64,
    /// Directory a promoted replica opens its first journal generation in
    /// (the replica's `data_dir`; `None` keeps promotion in-memory).
    pub promote_dir: Option<PathBuf>,
    /// Fsync policy for the journal opened at promotion.
    pub fsync: FsyncPolicy,
}

impl AppState {
    pub fn new(
        mut mdm: Mdm,
        config: &ServerConfig,
        store: Option<Arc<MetaStore>>,
        replica: Option<Arc<ReplicaStatus>>,
    ) -> Self {
        if let Some(threads) = config.pool_size {
            mdm.set_threads(threads);
        }
        if let Some(batch) = config.batch_size {
            mdm.set_batch_size(batch);
        }
        if let Some(layout) = config.layout {
            mdm.set_layout(layout);
        }
        if let Some(mode) = config.optimize {
            mdm.set_optimize(mode);
        }
        AppState {
            mdm: RwLock::new(mdm),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            started: Instant::now(),
            workers: config.workers.max(1),
            max_pending: config.max_pending.max(1),
            read_timeout: config.read_timeout,
            request_deadline: config.request_deadline.unwrap_or(config.read_timeout),
            retry_after_secs: config.retry_after.as_secs().max(1),
            role: RwLock::new(RoleState { store, replica }),
            replication: ReplicationHub::default(),
            failover: FailoverStats::default(),
            fenced_by: AtomicU64::new(0),
            solo_term: AtomicU64::new(1),
            promote_dir: config.data_dir.clone(),
            fsync: config.fsync,
        }
    }

    /// The durable journal, if this node currently owns one.
    pub fn store(&self) -> Option<Arc<MetaStore>> {
        self.role_read().store.clone()
    }

    /// The replica status latch, while this node is a replica.
    pub fn replica(&self) -> Option<Arc<ReplicaStatus>> {
        self.role_read().replica.clone()
    }

    /// Atomically replaces the node's role (promotion flips replica →
    /// primary in one swap).
    pub fn set_role(&self, role: RoleState) {
        *self
            .role
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = role;
    }

    /// The fencing term this node currently serves under.
    pub fn current_term(&self) -> u64 {
        let role = self.role_read();
        if let Some(replica) = &role.replica {
            return replica.term();
        }
        if let Some(store) = &role.store {
            return store.term();
        }
        self.solo_term.load(Ordering::SeqCst)
    }

    /// Sets the term an in-memory node reports (promotion without a
    /// `data_dir` still bumps the advertised term).
    pub fn set_solo_term(&self, term: u64) {
        self.solo_term.store(term, Ordering::SeqCst);
    }

    /// Latches the highest term this node has been fenced by.
    pub fn fence(&self, term: u64) {
        self.fenced_by.fetch_max(term, Ordering::SeqCst);
    }

    /// True while a newer term has fenced this node out of the write role.
    pub fn is_fenced(&self) -> bool {
        self.fenced_by.load(Ordering::SeqCst) > self.current_term()
    }

    /// Highest term this node has been fenced by (0 = never).
    pub fn fenced_by(&self) -> u64 {
        self.fenced_by.load(Ordering::SeqCst)
    }

    fn role_read(&self) -> std::sync::RwLockReadGuard<'_, RoleState> {
        self.role
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

//! Shared server state: the [`Mdm`] instance behind a readers–writer lock
//! plus request counters and the availability knobs.
//!
//! Steward routes take the write lock (they mutate metadata and bump the
//! epoch); analyst routes take the read lock, so any number of queries run
//! concurrently and all share the epoch-keyed plan cache inside [`Mdm`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use mdm_core::{Mdm, MetaStore};

use crate::replication::{ReplicaStatus, ReplicationHub};
use crate::ServerConfig;

/// Everything a worker thread needs to answer a request.
pub struct AppState {
    pub mdm: RwLock<Mdm>,
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    /// Connections answered 503 because the queue was saturated or the
    /// server was draining.
    pub shed: AtomicU64,
    /// Accepted connections waiting for a worker (load-shedding gauge).
    pub queued: AtomicUsize,
    pub started: Instant,
    pub workers: usize,
    /// Queue depth beyond which new connections are shed with 503.
    pub max_pending: usize,
    /// Per-connection read timeout (keep-alive idle bound).
    pub read_timeout: Duration,
    /// Deadline budget handed to each analyst query.
    pub request_deadline: Duration,
    /// Seconds advertised in `Retry-After` on 503 responses.
    pub retry_after_secs: u64,
    /// The durable journal behind `mdm`, when the server runs with a
    /// `data_dir`. `/admin/compact` folds it, `/metrics` reports its
    /// counters, and `/healthz` flips to `degraded` when it is unhealthy.
    pub store: Option<Arc<MetaStore>>,
    /// Primary-side replication gauges (`/replication/stream` feeds them).
    pub replication: ReplicationHub,
    /// Set when this server fronts a replica: routes consult it for
    /// `/healthz`, `/epoch`, and to 421 steward mutations to the primary.
    pub replica: Option<Arc<ReplicaStatus>>,
}

impl AppState {
    pub fn new(
        mut mdm: Mdm,
        config: &ServerConfig,
        store: Option<Arc<MetaStore>>,
        replica: Option<Arc<ReplicaStatus>>,
    ) -> Self {
        if let Some(threads) = config.pool_size {
            mdm.set_threads(threads);
        }
        if let Some(batch) = config.batch_size {
            mdm.set_batch_size(batch);
        }
        AppState {
            mdm: RwLock::new(mdm),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            started: Instant::now(),
            workers: config.workers.max(1),
            max_pending: config.max_pending.max(1),
            read_timeout: config.read_timeout,
            request_deadline: config.request_deadline.unwrap_or(config.read_timeout),
            retry_after_secs: config.retry_after.as_secs().max(1),
            store,
            replication: ReplicationHub::default(),
            replica,
        }
    }

    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

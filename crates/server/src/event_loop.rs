//! The readiness-driven connection layer: one thread multiplexing every
//! connection through `poll(2)`, with route execution on the worker pool.
//!
//! ## Why poll, and why like this
//!
//! The PR-1 server dedicated a worker thread to each connection for the
//! whole keep-alive lifetime, so worker count capped *connections*, not
//! in-flight work. Here the loop owns every socket and workers own only
//! requests: thousands of idle keep-alive connections cost one `pollfd`
//! each, and a slow analyst query occupies a worker without stalling
//! accepts, reads, or writes on other connections.
//!
//! ## Per-connection state machine
//!
//! ```text
//!            ┌──────────────────────────────────────────────┐
//!            ▼                                              │ keep-alive
//!  accept → READING ──complete request──▶ EXECUTING ──▶ WRITING
//!            │  ▲                         (worker)          │
//!            │  └── partial request:                        │ close /
//!            │      wait for more bytes                     ▼ error
//!            └─ timeout / EOF / 400 ──────────────────▶ CLOSED
//! ```
//!
//! * **READING** — bytes accumulate in the connection buffer; the bounded
//!   HTTP parser runs incrementally ([`crate::http::parse_buffered`]).
//!   Malformed input answers 400 and closes, exactly like the blocking
//!   server did. Idle connections are closed after `read_timeout`.
//! * **EXECUTING** — the parsed request was handed to a worker; the loop
//!   polls the socket for errors only. Load shedding happens *before* this
//!   hop: when `queued >= max_pending` the loop answers 503 + `Retry-After`
//!   itself, so saturation costs no worker time.
//! * **WRITING** — the serialised response drains through nonblocking
//!   writes; on completion the connection goes back to READING (keep-alive)
//!   or closes.
//!
//! Workers signal completions through a shared queue plus a byte on a
//! `UnixStream` self-pipe, the only dependency-free way to interrupt
//! `poll(2)` from another thread.
//!
//! ## Drain
//!
//! Shutdown sets the stopping flag and wakes the loop: accepting stops,
//! idle connections close, in-flight requests complete and flush, and
//! queued-but-unstarted requests are answered `503 server is shutting
//! down` by the workers. The loop exits once nothing is executing and all
//! responses are flushed.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use crate::http::{parse_buffered, write_response, Request, Response};
use crate::routes;
use crate::state::AppState;

/// Raw `poll(2)` via the platform C library — `std::os::fd` gives us the
/// descriptors, but the readiness syscall itself is not wrapped by std.
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_ulong};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Polls until readiness or `timeout_ms` (-1 blocks indefinitely),
    /// retrying on EINTR.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let code = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if code >= 0 {
                return Ok(code as usize);
            }
            let error = io::Error::last_os_error();
            if error.kind() != io::ErrorKind::Interrupted {
                return Err(error);
            }
        }
    }
}

/// One parsed request bound for a worker.
pub(crate) struct Job {
    pub token: u64,
    pub request: Request,
    /// True when the job was counted in the `queued` gauge (main pool);
    /// replication streams bypass the gauge and its shed threshold.
    pub counted: bool,
}

/// Worker → loop: the finished response for a connection token.
pub(crate) struct CompletionQueue {
    items: Mutex<Vec<(u64, Response)>>,
    /// Write end of the self-pipe; any byte wakes the poll loop.
    wake: UnixStream,
}

impl CompletionQueue {
    pub fn new(wake: UnixStream) -> Self {
        CompletionQueue {
            items: Mutex::new(Vec::new()),
            wake,
        }
    }

    pub fn push(&self, token: u64, response: Response) {
        self.items
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push((token, response));
        self.wake_loop();
    }

    /// Wakes the poll loop without queueing anything (shutdown).
    pub fn wake_loop(&self) {
        let _ = (&self.wake).write(&[1u8]);
    }

    fn drain(&self) -> Vec<(u64, Response)> {
        std::mem::take(
            &mut *self
                .items
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }
}

/// Builds the shed/drain 503 with `Retry-After`, counting it.
pub(crate) fn overload_response(state: &AppState, reason: &str) -> Response {
    state.count_request();
    state.count_error();
    state.count_shed();
    Response::json(
        503,
        format!("{{\"error\":{{\"category\":\"overload\",\"message\":{reason:?}}}}}"),
    )
    .with_header("Retry-After", state.retry_after_secs.to_string())
}

fn protocol_error_response(state: &AppState, message: &str) -> Response {
    state.count_request();
    state.count_error();
    Response::json(
        400,
        format!("{{\"error\":{{\"category\":\"protocol\",\"message\":{message:?}}}}}"),
    )
}

/// The worker-pool loop: execute routes (or shed during drain), push the
/// completion, repeat until the sender side hangs up.
pub(crate) fn worker_loop(
    receiver: Arc<Mutex<mpsc::Receiver<Job>>>,
    state: Arc<AppState>,
    stopping: Arc<AtomicBool>,
    completions: Arc<CompletionQueue>,
) {
    loop {
        let job = {
            let guard = receiver.lock().unwrap_or_else(|poison| poison.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => {
                if job.counted {
                    state.queued.fetch_sub(1, Ordering::SeqCst);
                }
                let response = if stopping.load(Ordering::SeqCst) {
                    overload_response(&state, "server is shutting down")
                } else {
                    routes::dispatch(&state, &job.request)
                };
                completions.push(job.token, response);
            }
            Err(_) => break,
        }
    }
}

enum Phase {
    /// Accumulating request bytes.
    Reading,
    /// A request is with a worker; the response will arrive as a completion.
    Executing,
    /// Draining the serialised response.
    Writing { close_after: bool },
}

struct Conn {
    stream: TcpStream,
    phase: Phase,
    /// Unparsed inbound bytes (may hold pipelined requests).
    buf: Vec<u8>,
    /// Serialised response bytes not yet written.
    out: Vec<u8>,
    written: usize,
    /// Bytes of `buf` already scanned for the header terminator.
    scanned: usize,
    /// Set once a blank line ends the headers; parsing is attempted only
    /// after this so slow header arrival does not re-scan the buffer.
    headers_done: bool,
    /// Whether the in-flight request asked for keep-alive.
    keep_alive: bool,
    /// Peer closed its write side; close once the buffer is exhausted.
    read_eof: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            phase: Phase::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            scanned: 0,
            headers_done: false,
            keep_alive: true,
            read_eof: false,
            last_activity: Instant::now(),
        }
    }

    /// Incremental header-terminator scan: a newline followed by an
    /// (optionally `\r`-prefixed) newline. Only new bytes are scanned.
    fn scan_headers(&mut self) {
        if self.headers_done {
            return;
        }
        let start = self.scanned.saturating_sub(2);
        let mut index = start;
        while index + 1 < self.buf.len() {
            if self.buf[index] == b'\n' {
                let next = self.buf[index + 1];
                if next == b'\n' {
                    self.headers_done = true;
                    return;
                }
                if next == b'\r' && self.buf.get(index + 2) == Some(&b'\n') {
                    self.headers_done = true;
                    return;
                }
            }
            index += 1;
        }
        self.scanned = self.buf.len();
    }

    fn reset_parse_state(&mut self) {
        self.scanned = 0;
        self.headers_done = false;
    }
}

enum Verdict {
    Keep,
    Close,
}

pub(crate) struct EventLoop {
    pub listener: TcpListener,
    pub state: Arc<AppState>,
    pub stopping: Arc<AtomicBool>,
    /// Read end of the self-pipe.
    pub wake_rx: UnixStream,
    pub completions: Arc<CompletionQueue>,
    /// Main route pool (counted against `max_pending`).
    pub jobs: mpsc::Sender<Job>,
    /// Long-poll pool for `/replication/stream` so replica catch-up polls
    /// never starve analyst traffic.
    pub stream_jobs: mpsc::Sender<Job>,
}

impl EventLoop {
    pub fn run(self) {
        let EventLoop {
            listener,
            state,
            stopping,
            wake_rx,
            completions,
            jobs,
            stream_jobs,
        } = self;
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        let _ = wake_rx.set_nonblocking(true);

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut in_flight: usize = 0;
        // Tokens parallel to the pollfd array built each iteration; 0 is
        // the wake pipe, u64::MAX the listener.
        const WAKE: u64 = 0;
        const LISTENER: u64 = u64::MAX;

        loop {
            let draining = stopping.load(Ordering::SeqCst);
            if draining {
                // Idle keep-alive connections have nothing owed to them.
                conns.retain(|_, conn| {
                    !(matches!(conn.phase, Phase::Reading) && conn.out.is_empty())
                });
                if in_flight == 0 && conns.is_empty() {
                    break;
                }
            }

            let mut fds = vec![sys::PollFd::new(wake_rx.as_raw_fd(), sys::POLLIN)];
            let mut tokens = vec![WAKE];
            if !draining {
                fds.push(sys::PollFd::new(listener.as_raw_fd(), sys::POLLIN));
                tokens.push(LISTENER);
            }
            let mut nearest_deadline: Option<Instant> = None;
            for (token, conn) in &conns {
                let events = match conn.phase {
                    Phase::Reading => sys::POLLIN,
                    Phase::Executing => 0, // errors/HUP are always reported
                    Phase::Writing { .. } => sys::POLLOUT,
                };
                if !matches!(conn.phase, Phase::Executing) {
                    let deadline = conn.last_activity + state.read_timeout;
                    nearest_deadline = Some(match nearest_deadline {
                        Some(current) => current.min(deadline),
                        None => deadline,
                    });
                }
                fds.push(sys::PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(*token);
            }
            let timeout_ms = match nearest_deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    remaining.as_millis().min(i32::MAX as u128) as i32 + 1
                }
                None => -1,
            };

            if sys::wait(&mut fds, timeout_ms).is_err() {
                // EBADF and friends mean a bookkeeping bug; bail rather
                // than spin. Connections close with the loop.
                break;
            }

            // 1. Drain the wake pipe.
            if fds[0].revents & sys::POLLIN != 0 {
                let mut sink = [0u8; 64];
                while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }

            // 2. Apply completions: serialise responses and start writing.
            for (token, response) in completions.drain() {
                in_flight -= 1;
                let Some(conn) = conns.get_mut(&token) else {
                    continue; // connection died while the worker ran
                };
                let keep_alive = conn.keep_alive && !stopping.load(Ordering::SeqCst);
                conn.out.clear();
                conn.written = 0;
                if write_response(&mut conn.out, &response, keep_alive).is_err() {
                    conns.remove(&token);
                    continue;
                }
                conn.phase = Phase::Writing {
                    close_after: !keep_alive,
                };
                conn.last_activity = Instant::now();
                if let Verdict::Close = advance_write(conn) {
                    conns.remove(&token);
                } else if matches!(conn.phase, Phase::Reading) {
                    // Response flushed synchronously; a pipelined request
                    // may already be buffered.
                    if let Verdict::Close = try_dispatch(
                        token,
                        conn,
                        &state,
                        &stopping,
                        &jobs,
                        &stream_jobs,
                        &mut in_flight,
                    ) {
                        conns.remove(&token);
                    }
                }
            }

            // 3. Accept new connections.
            if !draining
                && fds.len() > 1
                && tokens[1] == LISTENER
                && fds[1].revents & (sys::POLLIN | sys::POLLERR) != 0
            {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            conns.insert(next_token, Conn::new(stream));
                            next_token += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
            }

            // 4. Per-connection readiness.
            for (index, token) in tokens.iter().enumerate() {
                if *token == WAKE || *token == LISTENER {
                    continue;
                }
                let revents = fds[index].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = conns.get_mut(token) else {
                    continue;
                };
                if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                    conns.remove(token);
                    continue;
                }
                let verdict = match conn.phase {
                    Phase::Reading => {
                        if revents & (sys::POLLIN | sys::POLLHUP) != 0 {
                            match fill_read(conn) {
                                Ok(()) => try_dispatch(
                                    *token,
                                    conn,
                                    &state,
                                    &stopping,
                                    &jobs,
                                    &stream_jobs,
                                    &mut in_flight,
                                ),
                                Err(_) => Verdict::Close,
                            }
                        } else {
                            Verdict::Keep
                        }
                    }
                    Phase::Executing => {
                        // Only HUP/ERR arrive here. Note the EOF but keep
                        // the connection: the response may still be
                        // deliverable to a half-closed peer.
                        if revents & sys::POLLHUP != 0 {
                            conn.read_eof = true;
                        }
                        Verdict::Keep
                    }
                    Phase::Writing { .. } => {
                        if revents & (sys::POLLOUT | sys::POLLHUP) != 0 {
                            let verdict = advance_write(conn);
                            if let (Verdict::Keep, Phase::Reading) = (&verdict, &conn.phase) {
                                try_dispatch(
                                    *token,
                                    conn,
                                    &state,
                                    &stopping,
                                    &jobs,
                                    &stream_jobs,
                                    &mut in_flight,
                                )
                            } else {
                                verdict
                            }
                        } else {
                            Verdict::Keep
                        }
                    }
                };
                if let Verdict::Close = verdict {
                    conns.remove(token);
                }
            }

            // 5. Idle timeouts (slow-loris and abandoned keep-alives).
            let now = Instant::now();
            conns.retain(|_, conn| {
                matches!(conn.phase, Phase::Executing)
                    || now.duration_since(conn.last_activity) < state.read_timeout
            });
        }
        // `jobs`/`stream_jobs` drop here; workers drain remaining queued
        // jobs (answering 503 while stopping) and then exit on hangup.
    }
}

/// Reads until `WouldBlock`, appending to the connection buffer. An EOF
/// sets `read_eof`; hard errors propagate (connection closes).
fn fill_read(conn: &mut Conn) -> io::Result<()> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.read_eof = true;
                return Ok(());
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => Err(e)?,
        }
    }
}

/// Writes as much pending output as the socket accepts. On completion the
/// connection closes or returns to READING.
fn advance_write(conn: &mut Conn) -> Verdict {
    let close_after = match conn.phase {
        Phase::Writing { close_after } => close_after,
        _ => return Verdict::Keep,
    };
    while conn.written < conn.out.len() {
        match (&conn.stream).write(&conn.out[conn.written..]) {
            Ok(0) => return Verdict::Close,
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Verdict::Close,
        }
    }
    if close_after {
        return Verdict::Close;
    }
    conn.out.clear();
    conn.written = 0;
    conn.phase = Phase::Reading;
    Verdict::Keep
}

/// Tries to parse one complete request from the buffer and route it:
/// dispatch to a worker, shed with 503, or answer 400 for garbage.
fn try_dispatch(
    token: u64,
    conn: &mut Conn,
    state: &Arc<AppState>,
    stopping: &AtomicBool,
    jobs: &mpsc::Sender<Job>,
    stream_jobs: &mpsc::Sender<Job>,
    in_flight: &mut usize,
) -> Verdict {
    if !matches!(conn.phase, Phase::Reading) {
        return Verdict::Keep;
    }
    conn.scan_headers();
    if !conn.headers_done {
        // No terminator yet: close on EOF (nothing answerable), else wait.
        return if conn.read_eof && conn.out.is_empty() {
            Verdict::Close
        } else {
            Verdict::Keep
        };
    }
    match parse_buffered(&conn.buf) {
        Ok(Some((request, consumed))) => {
            conn.buf.drain(..consumed);
            conn.reset_parse_state();
            conn.keep_alive = request.keep_alive();
            conn.last_activity = Instant::now();
            let response = if stopping.load(Ordering::SeqCst) {
                Some(overload_response(state, "server is shutting down"))
            } else if is_stream_route(&request) {
                *in_flight += 1;
                conn.phase = Phase::Executing;
                if stream_jobs
                    .send(Job {
                        token,
                        request,
                        counted: false,
                    })
                    .is_err()
                {
                    *in_flight -= 1;
                    return Verdict::Close;
                }
                None
            } else if state.queued.load(Ordering::SeqCst) >= state.max_pending {
                Some(overload_response(state, "worker queue is saturated"))
            } else {
                state.queued.fetch_add(1, Ordering::SeqCst);
                *in_flight += 1;
                conn.phase = Phase::Executing;
                if jobs
                    .send(Job {
                        token,
                        request,
                        counted: true,
                    })
                    .is_err()
                {
                    state.queued.fetch_sub(1, Ordering::SeqCst);
                    *in_flight -= 1;
                    return Verdict::Close;
                }
                None
            };
            if let Some(response) = response {
                // Shed and drain responses close the connection, exactly
                // like the blocking server's shed path did.
                conn.out.clear();
                conn.written = 0;
                if write_response(&mut conn.out, &response, false).is_err() {
                    return Verdict::Close;
                }
                conn.phase = Phase::Writing { close_after: true };
                return advance_write(conn);
            }
            Verdict::Keep
        }
        Ok(None) => {
            if conn.read_eof {
                Verdict::Close // peer hung up mid-request
            } else {
                Verdict::Keep
            }
        }
        Err(e) => {
            let response = protocol_error_response(state, &e.to_string());
            conn.out.clear();
            conn.written = 0;
            if write_response(&mut conn.out, &response, false).is_err() {
                return Verdict::Close;
            }
            conn.phase = Phase::Writing { close_after: true };
            advance_write(conn)
        }
    }
}

fn is_stream_route(request: &Request) -> bool {
    request.path == "/replication/stream" || request.path == "/changes"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn poll_wait_times_out() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut fds = [sys::PollFd::new(a.as_raw_fd(), sys::POLLIN)];
        let started = Instant::now();
        let ready = sys::wait(&mut fds, 30).unwrap();
        assert_eq!(ready, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_wait_sees_readable_pipe() {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        (&b).write_all(&[1]).unwrap();
        let mut fds = [sys::PollFd::new(a.as_raw_fd(), sys::POLLIN)];
        let ready = sys::wait(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].revents & sys::POLLIN != 0);
    }
}

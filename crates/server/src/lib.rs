//! # mdm-server
//!
//! MDM as a service: the steward and analyst APIs of [`mdm_core::Mdm`]
//! behind a from-scratch HTTP/1.1 JSON interface over
//! [`std::net::TcpListener`] — no third-party dependencies, matching the
//! paper's deployment shape (MDM ran as a web application stewards and
//! analysts share).
//!
//! Architecture:
//!
//! * [`http`] — request parsing / response writing (keep-alive, bounded).
//! * [`state`] — one [`mdm_core::Mdm`] behind an `RwLock`: steward routes
//!   write, analyst routes read concurrently. Every steward mutation bumps
//!   the metadata **epoch**; analyst rewrites go through the epoch-keyed
//!   plan cache inside `Mdm`, so repeated dashboards cost one rewriting
//!   per metadata change, and a release can never serve a stale plan.
//! * [`routes`] — the JSON route table (`/steward/*`, `/analyst/*`,
//!   `/healthz`, `/metrics`).
//! * [`client`] — a tiny blocking HTTP client for the CLI, tests, benches.
//!
//! ```no_run
//! let server = mdm_server::serve(mdm_server::ServerConfig::default(), mdm_core::Mdm::new())?;
//! println!("listening on {}", server.addr());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod http;
pub mod routes;
pub mod state;

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mdm_core::{FsyncPolicy, Mdm, MetaStore};

use crate::http::{read_request, write_response, Response};
use crate::state::AppState;

/// Listener configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the default, for tests).
    pub addr: String,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Per-connection read timeout (bounds idle keep-alive connections).
    pub read_timeout: Duration,
    /// Deadline budget for each analyst query; defaults to `read_timeout`
    /// when `None`, so a query can never outlive its connection.
    pub request_deadline: Option<Duration>,
    /// Accepted connections allowed to wait for a worker before new ones
    /// are shed with `503 Service Unavailable`.
    pub max_pending: usize,
    /// The `Retry-After` hint sent with 503 responses.
    pub retry_after: Duration,
    /// Execution-pool size for query fan-out. `None` (or `Some(0)`) keeps
    /// the process-wide pool sized from `available_parallelism`; `Some(1)`
    /// forces sequential execution; `Some(n)` builds a dedicated n-worker
    /// pool.
    pub pool_size: Option<usize>,
    /// Operator batch width while draining queries. `None` (or `Some(0)`)
    /// keeps the engine default; the executor still adapts downward for
    /// small inputs.
    pub batch_size: Option<usize>,
    /// Durable-store directory. When set, the server recovers the journal
    /// on start (replacing the passed [`Mdm`] with the recovered state when
    /// one exists), appends every steward mutation to the WAL, and serves
    /// `POST /admin/compact`. `None` keeps the server purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// WAL durability policy for `data_dir`: fsync every record (`Always`,
    /// the default), at most once per interval, or never (OS decides).
    pub fsync: FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Duration::from_secs(30),
            request_deadline: None,
            max_pending: 64,
            retry_after: Duration::from_secs(1),
            pool_size: None,
            batch_size: None,
            data_dir: None,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops the listener and joins every worker.
/// One slot per worker holding a clone of the connection it is serving,
/// so shutdown can force-close blocked keep-alive reads instead of waiting
/// out their read timeout.
type ConnSlots = Vec<Mutex<Option<TcpStream>>>;

pub struct ServerHandle {
    addr: SocketAddr,
    state: Option<Arc<AppState>>,
    stopping: Arc<AtomicBool>,
    slots: Arc<ConnSlots>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect counters through it).
    pub fn state(&self) -> &Arc<AppState> {
        self.state.as_ref().expect("server state taken")
    }

    /// Stops accepting, drains the workers and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the server and hands back the [`Mdm`] it was serving (with
    /// everything stewards changed while it ran). `None` only if a worker
    /// leaked a state reference, which joining the pool prevents.
    pub fn into_mdm(mut self) -> Option<Mdm> {
        self.stop();
        let state = self.state.take()?;
        Arc::try_unwrap(state).ok().map(|s| {
            s.mdm
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
        })
    }

    fn stop(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.drain();
    }

    fn drain(&mut self) {
        // Unblock the acceptor with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Graceful drain: shut down only the *read* side of in-flight
        // connections. Workers blocked in a keep-alive read see EOF and
        // return immediately, while a worker mid-request still owns a
        // writable socket and flushes its response before closing.
        for slot in self.slots.iter() {
            if let Ok(guard) = slot.lock() {
                if let Some(stream) = guard.as_ref() {
                    let _ = stream.shutdown(std::net::Shutdown::Read);
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every worker joined, no more journal appends can happen:
        // flush + fsync so every acknowledged mutation is durable before
        // the process exits (graceful-drain durability guarantee).
        if let Some(state) = &self.state {
            if let Some(store) = &state.store {
                let _ = store.sync();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds, spawns the acceptor and the worker pool, and returns immediately.
pub fn serve(config: ServerConfig, mdm: Mdm) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    serve_on(listener, &config, mdm)
}

/// The 503 answered without a worker: queue saturated or server draining.
/// The request is drained (briefly) before responding, so the close sends
/// a clean FIN instead of resetting the connection under the client's read.
fn shed_connection(stream: TcpStream, state: &AppState, reason: &str) {
    state.count_request();
    state.count_error();
    state.count_shed();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    if let Ok(clone) = stream.try_clone() {
        let _ = read_request(&mut BufReader::new(clone));
    }
    let response = Response::json(
        503,
        format!("{{\"error\":{{\"category\":\"overload\",\"message\":{reason:?}}}}}"),
    )
    .with_header("Retry-After", state.retry_after_secs.to_string());
    let mut writer = BufWriter::new(stream);
    let _ = write_response(&mut writer, &response, false);
}

/// Like [`serve`], over an already-bound listener — callers that must not
/// lose `mdm` on a bad address bind first and hand the listener over.
///
/// When [`ServerConfig::data_dir`] is set, the durable store in that
/// directory is opened (or created): an existing journal **replaces** the
/// passed `mdm` with the recovered state, and every steward mutation from
/// then on is appended to the WAL.
pub fn serve_on(
    listener: TcpListener,
    config: &ServerConfig,
    mdm: Mdm,
) -> io::Result<ServerHandle> {
    let (mdm, store) = match &config.data_dir {
        Some(dir) => {
            let (store, recovered, _report) = MetaStore::attach(dir, config.fsync, mdm)
                .map_err(|e| io::Error::other(e.to_string()))?;
            (recovered, Some(store))
        }
        None => (mdm, None),
    };
    serve_prepared(listener, config, mdm, store)
}

/// Like [`serve_on`], but with a store the caller already opened (the CLI
/// recovers at session start and hands both over). `config.data_dir` is
/// ignored on this path — the store *is* the data dir.
pub fn serve_prepared(
    listener: TcpListener,
    config: &ServerConfig,
    mdm: Mdm,
    store: Option<Arc<MetaStore>>,
) -> io::Result<ServerHandle> {
    let workers = config.workers.max(1);
    let addr = listener.local_addr()?;
    let state = Arc::new(AppState::new(mdm, config, store));
    let stopping = Arc::new(AtomicBool::new(false));

    let (sender, receiver) = mpsc::channel::<TcpStream>();
    let receiver = Arc::new(Mutex::new(receiver));
    let slots: Arc<ConnSlots> = Arc::new((0..workers).map(|_| Mutex::new(None)).collect());

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|index| {
            let receiver = Arc::clone(&receiver);
            let state = Arc::clone(&state);
            let stopping = Arc::clone(&stopping);
            let slots = Arc::clone(&slots);
            thread::Builder::new()
                .name(format!("mdm-worker-{index}"))
                .spawn(move || loop {
                    let stream = {
                        let guard = receiver.lock().expect("job queue poisoned");
                        guard.recv()
                    };
                    match stream {
                        Ok(stream) if stopping.load(Ordering::SeqCst) => {
                            // Draining: tell queued-but-unserved clients to
                            // retry instead of silently dropping them.
                            state.queued.fetch_sub(1, Ordering::SeqCst);
                            shed_connection(stream, &state, "server is shutting down");
                        }
                        Ok(stream) => {
                            state.queued.fetch_sub(1, Ordering::SeqCst);
                            *slots[index].lock().expect("slot poisoned") = stream.try_clone().ok();
                            handle_connection(stream, &state, &stopping);
                            *slots[index].lock().expect("slot poisoned") = None;
                        }
                        Err(_) => break, // sender dropped: shutting down
                    }
                })
                .expect("failed to spawn worker thread")
        })
        .collect();

    let acceptor = {
        let stopping = Arc::clone(&stopping);
        let state = Arc::clone(&state);
        thread::Builder::new()
            .name("mdm-acceptor".to_string())
            .spawn(move || {
                // `sender` moves in here; dropping it on exit stops workers.
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            if state.queued.load(Ordering::SeqCst) >= state.max_pending {
                                shed_connection(stream, &state, "worker queue is saturated");
                                continue;
                            }
                            state.queued.fetch_add(1, Ordering::SeqCst);
                            if sender.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
            .expect("failed to spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        state: Some(state),
        stopping,
        slots,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

/// Serves one connection: requests in a keep-alive loop until the peer
/// closes, asks to close, sends garbage (answered with a 400), or the
/// server starts draining (the in-flight request still completes).
fn handle_connection(stream: TcpStream, state: &AppState, stopping: &AtomicBool) {
    stream.set_read_timeout(Some(state.read_timeout)).ok();
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let draining = stopping.load(Ordering::SeqCst);
                let keep_alive = request.keep_alive() && !draining;
                let response = routes::dispatch(state, &request);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => return, // clean close between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                state.count_request();
                state.count_error();
                let response = Response::json(
                    400,
                    format!(
                        "{{\"error\":{{\"category\":\"protocol\",\"message\":{:?}}}}}",
                        e.to_string()
                    ),
                );
                let _ = write_response(&mut writer, &response, false);
                return;
            }
            Err(_) => return, // timeout or reset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_and_shutdown_round_trip() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let health = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(
            health.body.contains("\"status\": \"ok\"") || health.body.contains("\"status\":\"ok\"")
        );
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404_and_counted() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let missing = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(missing.status, 404);
        let metrics = client::get(server.addr(), "/metrics").unwrap();
        assert!(metrics.body.contains("\"errors_total\""));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let mut connection = client::Connection::open(server.addr()).unwrap();
        for _ in 0..3 {
            let response = connection.send("GET", "/healthz", None).unwrap();
            assert_eq!(response.status, 200);
        }
        server.shutdown();
    }

    #[test]
    fn into_mdm_returns_stewarded_state() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let response = client::post_json(
            server.addr(),
            "/steward/concepts",
            r#"{"concept": "<http://example.org/Player>"}"#,
        )
        .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let mdm = server.into_mdm().expect("state recovered after join");
        assert_eq!(mdm.epoch(), 1);
        assert_eq!(mdm.ontology().concepts().len(), 1);
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }
}

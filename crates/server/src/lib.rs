//! # mdm-server
//!
//! MDM as a service: the steward and analyst APIs of [`mdm_core::Mdm`]
//! behind a from-scratch HTTP/1.1 JSON interface over
//! [`std::net::TcpListener`] — no third-party dependencies, matching the
//! paper's deployment shape (MDM ran as a web application stewards and
//! analysts share).
//!
//! Architecture:
//!
//! * [`event_loop`] — a poll(2)-based readiness loop owning every
//!   connection (nonblocking accepts, incremental parsing, buffered
//!   writes), with route execution on a fixed worker pool so slow queries
//!   never stall the loop. Load shedding (503 + `Retry-After`) happens in
//!   the loop before a request ever reaches a worker.
//! * [`http`] — request parsing / response writing (keep-alive, bounded),
//!   both blocking (client side) and incremental (server side).
//! * [`state`] — one [`mdm_core::Mdm`] behind an `RwLock`: steward routes
//!   write, analyst routes read concurrently. Every steward mutation bumps
//!   the metadata **epoch**; analyst rewrites go through the epoch-keyed
//!   plan cache inside `Mdm`, so repeated dashboards cost one rewriting
//!   per metadata change, and a release can never serve a stale plan.
//! * [`routes`] — the JSON route table (`/steward/*`, `/analyst/*`,
//!   `/healthz`, `/metrics`, `/epoch`, `/replication/*`).
//! * [`replication`] — primary-side stream gauges and the replica status
//!   latch `mdm-replica` publishes into.
//! * [`client`] — a tiny blocking HTTP client for the CLI, tests, benches.
//!
//! ```no_run
//! let server = mdm_server::serve(mdm_server::ServerConfig::default(), mdm_core::Mdm::new())?;
//! println!("listening on {}", server.addr());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
mod event_loop;
pub mod http;
pub mod replication;
pub mod routes;
pub mod state;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mdm_core::{FsyncPolicy, Mdm, MetaStore};

use crate::event_loop::{CompletionQueue, EventLoop, Job};
use crate::replication::ReplicaStatus;
use crate::state::AppState;

/// Listener configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the default, for tests).
    pub addr: String,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Per-connection read timeout (bounds idle keep-alive connections).
    pub read_timeout: Duration,
    /// Deadline budget for each analyst query; defaults to `read_timeout`
    /// when `None`, so a query can never outlive its connection.
    pub request_deadline: Option<Duration>,
    /// Parsed requests allowed to wait for a worker before new ones are
    /// shed with `503 Service Unavailable`.
    pub max_pending: usize,
    /// The `Retry-After` hint sent with 503 responses.
    pub retry_after: Duration,
    /// Execution-pool size for query fan-out. `None` (or `Some(0)`) keeps
    /// the process-wide pool sized from `available_parallelism`; `Some(1)`
    /// forces sequential execution; `Some(n)` builds a dedicated n-worker
    /// pool.
    pub pool_size: Option<usize>,
    /// Operator batch width while draining queries. `None` (or `Some(0)`)
    /// keeps the engine default; the executor still adapts downward for
    /// small inputs.
    pub batch_size: Option<usize>,
    /// Physical data plane for served queries: `None` keeps the engine
    /// default (columnar); `Some(Layout::Row)` is the row-at-a-time
    /// escape hatch.
    pub layout: Option<mdm_relational::Layout>,
    /// Plan-optimization mode for served queries: `None` keeps the engine
    /// default (cost-based); `Some(OptimizeMode::Heuristic)` disables the
    /// stats-driven passes, `Some(OptimizeMode::Off)` executes rewritings
    /// verbatim. Results are identical in all modes.
    pub optimize: Option<mdm_relational::OptimizeMode>,
    /// Durable-store directory. When set, the server recovers the journal
    /// on start (replacing the passed [`Mdm`] with the recovered state when
    /// one exists), appends every steward mutation to the WAL, and serves
    /// `POST /admin/compact`. `None` keeps the server purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// WAL durability policy for `data_dir`: fsync every record (`Always`,
    /// the default), at most once per interval, or never (OS decides).
    pub fsync: FsyncPolicy,
    /// Dedicated workers for `/replication/stream` long-polls, so replica
    /// catch-up never occupies the analyst/steward pool.
    pub stream_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Duration::from_secs(30),
            request_deadline: None,
            max_pending: 64,
            retry_after: Duration::from_secs(1),
            pool_size: None,
            batch_size: None,
            layout: None,
            optimize: None,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            stream_workers: 2,
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops the event loop and joins every worker.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Option<Arc<AppState>>,
    stopping: Arc<AtomicBool>,
    completions: Arc<CompletionQueue>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect counters through it).
    pub fn state(&self) -> &Arc<AppState> {
        self.state.as_ref().expect("server state taken")
    }

    /// Stops accepting, drains in-flight work and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the server and hands back the [`Mdm`] it was serving (with
    /// everything stewards changed while it ran). `None` only if a worker
    /// leaked a state reference, which joining every thread prevents.
    pub fn into_mdm(mut self) -> Option<Mdm> {
        self.stop();
        let state = self.state.take()?;
        Arc::try_unwrap(state).ok().map(|s| {
            s.mdm
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
        })
    }

    fn stop(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the poll loop so it observes the flag: it stops accepting,
        // closes idle connections, lets in-flight requests complete and
        // flush, and exits. Dropping the job senders (owned by the loop)
        // then stops the workers, which first answer every queued job with
        // `503 server is shutting down`.
        self.completions.wake_loop();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every thread joined, no more journal appends can happen:
        // flush + fsync so every acknowledged mutation is durable before
        // the process exits (graceful-drain durability guarantee).
        if let Some(state) = &self.state {
            if let Some(store) = state.store() {
                let _ = store.sync();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds, spawns the event loop and the worker pool, returns immediately.
pub fn serve(config: ServerConfig, mdm: Mdm) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    serve_on(listener, &config, mdm)
}

/// Like [`serve`], over an already-bound listener — callers that must not
/// lose `mdm` on a bad address bind first and hand the listener over.
///
/// When [`ServerConfig::data_dir`] is set, the durable store in that
/// directory is opened (or created): an existing journal **replaces** the
/// passed `mdm` with the recovered state, and every steward mutation from
/// then on is appended to the WAL.
pub fn serve_on(
    listener: TcpListener,
    config: &ServerConfig,
    mdm: Mdm,
) -> io::Result<ServerHandle> {
    let (mdm, store) = match &config.data_dir {
        Some(dir) => {
            let (store, recovered, _report) = MetaStore::attach(dir, config.fsync, mdm)
                .map_err(|e| io::Error::other(e.to_string()))?;
            (recovered, Some(store))
        }
        None => (mdm, None),
    };
    serve_prepared(listener, config, mdm, store)
}

/// Like [`serve_on`], but with a store the caller already opened (the CLI
/// recovers at session start and hands both over). `config.data_dir` is
/// ignored on this path — the store *is* the data dir.
pub fn serve_prepared(
    listener: TcpListener,
    config: &ServerConfig,
    mdm: Mdm,
    store: Option<Arc<MetaStore>>,
) -> io::Result<ServerHandle> {
    serve_replica_aware(listener, config, mdm, store, None)
}

/// The full entry point: [`serve_prepared`] plus an optional replica
/// status latch. `mdm-replica` uses this to front its replaying [`Mdm`]
/// with a server whose routes know they are serving a replica.
pub fn serve_replica_aware(
    listener: TcpListener,
    config: &ServerConfig,
    mdm: Mdm,
    store: Option<Arc<MetaStore>>,
    replica: Option<Arc<ReplicaStatus>>,
) -> io::Result<ServerHandle> {
    let workers = config.workers.max(1);
    let stream_workers = config.stream_workers.max(1);
    let addr = listener.local_addr()?;
    let state = Arc::new(AppState::new(mdm, config, store, replica));
    let stopping = Arc::new(AtomicBool::new(false));

    // Self-pipe: workers (and shutdown) write a byte to interrupt poll(2).
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    let completions = Arc::new(CompletionQueue::new(wake_tx));

    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let (stream_tx, stream_rx) = mpsc::channel::<Job>();

    let mut worker_handles = Vec::with_capacity(workers + stream_workers);
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    for index in 0..workers {
        let receiver = Arc::clone(&jobs_rx);
        let state = Arc::clone(&state);
        let stopping = Arc::clone(&stopping);
        let completions = Arc::clone(&completions);
        worker_handles.push(
            thread::Builder::new()
                .name(format!("mdm-worker-{index}"))
                .spawn(move || event_loop::worker_loop(receiver, state, stopping, completions))
                .expect("failed to spawn worker thread"),
        );
    }
    let stream_rx = Arc::new(Mutex::new(stream_rx));
    for index in 0..stream_workers {
        let receiver = Arc::clone(&stream_rx);
        let state = Arc::clone(&state);
        let stopping = Arc::clone(&stopping);
        let completions = Arc::clone(&completions);
        worker_handles.push(
            thread::Builder::new()
                .name(format!("mdm-stream-{index}"))
                .spawn(move || event_loop::worker_loop(receiver, state, stopping, completions))
                .expect("failed to spawn stream worker thread"),
        );
    }

    let event_loop = {
        let state = Arc::clone(&state);
        let stopping = Arc::clone(&stopping);
        let completions = Arc::clone(&completions);
        thread::Builder::new()
            .name("mdm-event-loop".to_string())
            .spawn(move || {
                EventLoop {
                    listener,
                    state,
                    stopping,
                    wake_rx,
                    completions,
                    jobs: jobs_tx,
                    stream_jobs: stream_tx,
                }
                .run()
            })
            .expect("failed to spawn event-loop thread")
    };

    Ok(ServerHandle {
        addr,
        state: Some(state),
        stopping,
        completions,
        event_loop: Some(event_loop),
        workers: worker_handles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn serve_and_shutdown_round_trip() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let health = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(
            health.body.contains("\"status\": \"ok\"") || health.body.contains("\"status\":\"ok\"")
        );
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_404_and_counted() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let missing = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(missing.status, 404);
        let metrics = client::get(server.addr(), "/metrics").unwrap();
        assert!(metrics.body.contains("\"errors_total\""));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let mut connection = client::Connection::open(server.addr()).unwrap();
        for _ in 0..3 {
            let response = connection.send("GET", "/healthz", None).unwrap();
            assert_eq!(response.status, 200);
        }
        server.shutdown();
    }

    #[test]
    fn into_mdm_returns_stewarded_state() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let response = client::post_json(
            server.addr(),
            "/steward/concepts",
            r#"{"concept": "<http://example.org/Player>"}"#,
        )
        .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let mdm = server.into_mdm().expect("state recovered after join");
        assert_eq!(mdm.epoch(), 1);
        assert_eq!(mdm.ontology().concepts().len(), 1);
    }

    #[test]
    fn stats_refresh_bumps_stats_epoch_not_metadata_epoch() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let before = client::get(server.addr(), "/epoch").unwrap();
        assert!(
            before.body.contains("\"metadata_epoch\":0"),
            "{}",
            before.body
        );
        let refresh = client::post_json(server.addr(), "/steward/stats/refresh", "{}").unwrap();
        assert_eq!(refresh.status, 200, "{}", refresh.body);
        assert!(refresh.body.contains("\"stats_epoch\""), "{}", refresh.body);
        assert!(
            refresh.body.contains("\"epoch\":0"),
            "refresh must not bump the metadata epoch: {}",
            refresh.body
        );
        let metrics = client::get(server.addr(), "/metrics").unwrap();
        assert!(metrics.body.contains("\"optimizer\""), "{}", metrics.body);
        assert!(metrics.body.contains("\"stats_epoch\""), "{}", metrics.body);
        assert!(
            metrics.body.contains("\"reoptimizations\""),
            "{}",
            metrics.body
        );
        server.shutdown();
    }

    #[test]
    fn explain_get_requires_a_walk_parameter() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let missing = client::get(server.addr(), "/analyst/explain").unwrap();
        assert_eq!(missing.status, 400, "{}", missing.body);
        assert!(missing.body.contains("walk"), "{}", missing.body);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }

    #[test]
    fn request_split_across_many_writes_still_parses() {
        use std::io::{Read, Write};
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        for chunk in raw.chunks(5) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        server.shutdown();
    }

    #[test]
    fn many_idle_connections_do_not_block_service() {
        let server = serve(ServerConfig::default(), Mdm::new()).unwrap();
        // Far more connections than workers; the blocking server would
        // starve here because each idle keep-alive pinned a worker.
        let idle: Vec<TcpStream> = (0..32)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        let health = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        drop(idle);
        server.shutdown();
    }
}

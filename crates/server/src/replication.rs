//! Replication bookkeeping shared between the HTTP layer and `mdm-replica`.
//!
//! Two sides live here because both are rendered by the same routes:
//!
//! * [`ReplicationHub`] — primary-side gauges: how many records were
//!   shipped, how many stream requests arrived, and which replicas checked
//!   in recently (with their offsets, so `/metrics` can report lag).
//! * [`ReplicaStatus`] — replica-side state: the sync thread publishes its
//!   lifecycle (`bootstrapping → replicating ⇄ disconnected`, or terminal
//!   `poisoned`), replay epoch, and the primary's epoch, and the routes
//!   answer `/healthz`, `/epoch`, and steward 421s from it.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A replica is "connected" when it long-polled within this window (the
/// poll cycle is ~1 s, so 10 s tolerates several missed rounds).
pub const CONNECTED_WINDOW: Duration = Duration::from_secs(10);

/// Primary-side view of one replica that recently hit `/replication/stream`.
#[derive(Clone, Debug)]
pub struct PeerInfo {
    pub id: String,
    /// The `from` offset of the replica's latest request.
    pub offset: u64,
    /// Records still ahead of the replica when it last asked.
    pub lag_records: u64,
    pub last_seen: Instant,
}

/// Primary-side replication gauges.
#[derive(Default)]
pub struct ReplicationHub {
    /// WAL records shipped to replicas since start.
    pub streamed_records: AtomicU64,
    /// `/replication/stream` requests served since start.
    pub stream_requests: AtomicU64,
    /// Snapshot (re-)bootstraps served since start.
    pub snapshots_served: AtomicU64,
    peers: Mutex<HashMap<String, PeerInfo>>,
}

impl ReplicationHub {
    /// Records one stream request from `id` at `offset` with `lag_records`
    /// still to ship.
    pub fn observe(&self, id: &str, offset: u64, lag_records: u64) {
        let mut peers = self
            .peers
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        peers.insert(
            id.to_string(),
            PeerInfo {
                id: id.to_string(),
                offset,
                lag_records,
                last_seen: Instant::now(),
            },
        );
    }

    /// Replicas seen within [`CONNECTED_WINDOW`], most recent first.
    pub fn connected_peers(&self) -> Vec<PeerInfo> {
        let peers = self
            .peers
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let now = Instant::now();
        let mut live: Vec<PeerInfo> = peers
            .values()
            .filter(|p| now.duration_since(p.last_seen) <= CONNECTED_WINDOW)
            .cloned()
            .collect();
        live.sort_by_key(|p| std::cmp::Reverse(p.last_seen));
        live
    }
}

/// Lifecycle of a replica's sync thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// No snapshot applied yet — the node serves nothing trustworthy.
    Bootstrapping,
    /// Bootstrapped and following the primary's WAL.
    Replicating,
    /// Stream lost; reconnecting with backoff (still serving its epoch).
    Disconnected,
    /// A record failed to decode or apply; replay is halted for good.
    Poisoned,
}

impl ReplicaState {
    pub fn label(self) -> &'static str {
        match self {
            ReplicaState::Bootstrapping => "bootstrapping",
            ReplicaState::Replicating => "replicating",
            ReplicaState::Disconnected => "disconnected",
            ReplicaState::Poisoned => "poisoned",
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            ReplicaState::Bootstrapping => 0,
            ReplicaState::Replicating => 1,
            ReplicaState::Disconnected => 2,
            ReplicaState::Poisoned => 3,
        }
    }

    fn from_u64(value: u64) -> ReplicaState {
        match value {
            1 => ReplicaState::Replicating,
            2 => ReplicaState::Disconnected,
            3 => ReplicaState::Poisoned,
            _ => ReplicaState::Bootstrapping,
        }
    }
}

/// Replica-side status latch, written by the sync thread and read by the
/// routes. Plain atomics: readers never block the replay path.
pub struct ReplicaStatus {
    /// The primary's address, advertised in 421 redirects.
    pub primary: String,
    state: AtomicU64,
    /// True once a snapshot has ever been applied (never reset — a replica
    /// that bootstrapped once keeps serving through disconnects).
    bootstrapped: AtomicU64,
    /// Epoch the local `Mdm` has replayed up to.
    pub replay_epoch: AtomicU64,
    /// The primary's epoch as of the last batch received.
    pub primary_epoch: AtomicU64,
    /// Store generation the replica is following.
    pub generation: AtomicU64,
    /// WAL records applied since start.
    pub records_applied: AtomicU64,
    /// Snapshot (re-)bootstraps performed.
    pub bootstraps: AtomicU64,
    /// Reconnect attempts after stream loss.
    pub reconnects: AtomicU64,
    /// WAL offset of the record that poisoned replay (meaningful only in
    /// the poisoned state).
    poisoned_offset: AtomicU64,
    last_error: Mutex<Option<String>>,
    /// Highest fencing term this replica has observed (from batches or the
    /// 409 rejoin handshake). 0 until first contact.
    term: AtomicU64,
    /// Detach handshake: 0 = attached, 1 = detach requested (promotion is
    /// waiting), 2 = sync thread exited.
    detach: AtomicU64,
    /// The sync thread's live stream connection, so a detach request can
    /// sever a long-poll instead of waiting it out.
    stream: Mutex<Option<TcpStream>>,
}

const ATTACHED: u64 = 0;
const DETACH_REQUESTED: u64 = 1;
const DETACHED: u64 = 2;

impl ReplicaStatus {
    pub fn new(primary: impl Into<String>) -> Self {
        ReplicaStatus {
            primary: primary.into(),
            state: AtomicU64::new(ReplicaState::Bootstrapping.as_u64()),
            bootstrapped: AtomicU64::new(0),
            replay_epoch: AtomicU64::new(0),
            primary_epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            bootstraps: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            poisoned_offset: AtomicU64::new(0),
            last_error: Mutex::new(None),
            term: AtomicU64::new(0),
            detach: AtomicU64::new(ATTACHED),
            stream: Mutex::new(None),
        }
    }

    /// Highest fencing term observed from the primary.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    /// Raises the observed term (never lowers it).
    pub fn observe_term(&self, term: u64) {
        self.term.fetch_max(term, Ordering::SeqCst);
    }

    /// Publishes (or clears) the sync thread's live stream connection.
    pub fn set_stream(&self, stream: Option<TcpStream>) {
        *self
            .stream
            .lock()
            .unwrap_or_else(|poison| poison.into_inner()) = stream;
    }

    /// Asks the sync thread to exit after finishing the batch in hand, and
    /// severs its long-poll so it notices immediately.
    pub fn request_detach(&self) {
        let _ = self.detach.compare_exchange(
            ATTACHED,
            DETACH_REQUESTED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        if let Some(stream) = self
            .stream
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .as_ref()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// True once a detach has been requested (checked by the sync loop).
    pub fn detach_requested(&self) -> bool {
        self.detach.load(Ordering::SeqCst) >= DETACH_REQUESTED
    }

    /// The sync thread acknowledges its exit (also on normal shutdown, so
    /// a promotion racing a shutdown cannot hang).
    pub fn mark_detached(&self) {
        self.detach.store(DETACHED, Ordering::SeqCst);
    }

    /// Blocks until the sync thread has exited, up to `timeout`.
    pub fn wait_detached(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.detach.load(Ordering::SeqCst) != DETACHED {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    pub fn state(&self) -> ReplicaState {
        ReplicaState::from_u64(self.state.load(Ordering::SeqCst))
    }

    /// Transitions the lifecycle. The poisoned state is terminal: once a
    /// record fails to apply the replica must not silently resume, because
    /// its state may have diverged from the primary's.
    pub fn set_state(&self, next: ReplicaState) {
        let _ = self
            .state
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
                (ReplicaState::from_u64(current) != ReplicaState::Poisoned).then_some(next.as_u64())
            });
    }

    /// Marks the first successful bootstrap.
    pub fn mark_bootstrapped(&self) {
        self.bootstrapped.store(1, Ordering::SeqCst);
    }

    /// True once a snapshot has ever been applied.
    pub fn is_bootstrapped(&self) -> bool {
        self.bootstrapped.load(Ordering::SeqCst) == 1
    }

    /// Poisons the health latch: records the offending WAL offset and the
    /// error, and moves to the terminal state.
    pub fn poison(&self, offset: u64, message: impl Into<String>) {
        self.poisoned_offset.store(offset, Ordering::SeqCst);
        self.set_error(Some(message.into()));
        self.state
            .store(ReplicaState::Poisoned.as_u64(), Ordering::SeqCst);
    }

    pub fn poisoned_offset(&self) -> u64 {
        self.poisoned_offset.load(Ordering::SeqCst)
    }

    pub fn set_error(&self, message: Option<String>) {
        *self
            .last_error
            .lock()
            .unwrap_or_else(|poison| poison.into_inner()) = message;
    }

    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// `primary_epoch − replay_epoch`, saturating: how far behind the
    /// replica believes it is.
    pub fn replay_lag(&self) -> u64 {
        self.primary_epoch
            .load(Ordering::SeqCst)
            .saturating_sub(self.replay_epoch.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_is_terminal() {
        let status = ReplicaStatus::new("127.0.0.1:1");
        status.set_state(ReplicaState::Replicating);
        assert_eq!(status.state(), ReplicaState::Replicating);
        status.poison(7, "bad record");
        assert_eq!(status.state(), ReplicaState::Poisoned);
        assert_eq!(status.poisoned_offset(), 7);
        status.set_state(ReplicaState::Replicating);
        assert_eq!(status.state(), ReplicaState::Poisoned);
        assert!(status.last_error().unwrap().contains("bad record"));
    }

    #[test]
    fn lag_saturates() {
        let status = ReplicaStatus::new("127.0.0.1:1");
        status.primary_epoch.store(5, Ordering::SeqCst);
        status.replay_epoch.store(9, Ordering::SeqCst);
        assert_eq!(status.replay_lag(), 0);
        status.primary_epoch.store(12, Ordering::SeqCst);
        assert_eq!(status.replay_lag(), 3);
    }

    #[test]
    fn detach_handshake_and_term_latch() {
        let status = ReplicaStatus::new("127.0.0.1:1");
        assert!(!status.detach_requested());
        assert!(!status.wait_detached(Duration::from_millis(10)));
        status.request_detach();
        assert!(status.detach_requested());
        status.mark_detached();
        assert!(status.wait_detached(Duration::from_millis(10)));
        status.observe_term(3);
        status.observe_term(2); // never lowers
        assert_eq!(status.term(), 3);
    }

    #[test]
    fn hub_tracks_connected_peers() {
        let hub = ReplicationHub::default();
        assert!(hub.connected_peers().is_empty());
        hub.observe("r1", 3, 2);
        hub.observe("r2", 5, 0);
        hub.observe("r1", 5, 0);
        let peers = hub.connected_peers();
        assert_eq!(peers.len(), 2);
        assert!(peers.iter().all(|p| p.offset == 5 && p.lag_records == 0));
    }
}

//! An XML parser and printer for the subset REST APIs emit.
//!
//! The Teams API of the motivational use case (Figure 2) serves XML:
//!
//! ```xml
//! <team>
//!   <id>25</id>
//!   <name>FC Barcelona</name>
//!   <shortName>FCB</shortName>
//! </team>
//! ```
//!
//! Supported: elements, attributes, character data, entity references
//! (`&lt; &gt; &amp; &quot; &apos;` and numeric `&#...;`), comments,
//! CDATA sections, self-closing tags, and an optional XML declaration.
//! Not supported (REST payloads don't use them): DTDs, processing
//! instructions other than the declaration, namespace resolution (prefixes
//! are kept verbatim in names).
//!
//! [`to_value`] converts an element tree into the unified [`Value`] model
//! with the conventional mapping: attributes become `@name` keys, text-only
//! elements become scalars, repeated child names become arrays.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// An XML element: name, attributes, and ordered children.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<Node>,
}

/// A node in an element's content.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    Element(Element),
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The concatenated text content of this element (direct text children).
    pub fn text_content(&self) -> String {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.as_str()),
                Node::Element(_) => None,
            })
            .collect()
    }

    /// Child elements with the given name.
    pub fn children_named(&self, name: &str) -> Vec<&Element> {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Element(e) if e.name == name => Some(e),
                _ => None,
            })
            .collect()
    }

    /// The first child element with the given name.
    pub fn first_child(&self, name: &str) -> Option<&Element> {
        self.children_named(name).into_iter().next()
    }

    /// All child elements, in document order.
    pub fn child_elements(&self) -> Vec<&Element> {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Element(e) => Some(e),
                _ => None,
            })
            .collect()
    }
}

/// An XML parse error with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document into its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut parser = XmlParser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing content after root element"));
    }
    Ok(root)
}

/// Serialises an element tree with two-space indentation.
pub fn to_string(element: &Element) -> String {
    let mut out = String::new();
    write_element(&mut out, element, 0);
    out
}

fn write_element(out: &mut String, element: &Element, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!("{pad}<{}", element.name));
    for (name, value) in &element.attributes {
        out.push_str(&format!(" {name}=\"{}\"", escape_text(value, true)));
    }
    if element.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Text-only elements stay on one line, like the paper's Figure 2.
    let text_only = element.children.iter().all(|n| matches!(n, Node::Text(_)));
    if text_only {
        out.push('>');
        out.push_str(&escape_text(&element.text_content(), false));
        out.push_str(&format!("</{}>\n", element.name));
        return;
    }
    out.push_str(">\n");
    for child in &element.children {
        match child {
            Node::Element(e) => write_element(out, e, depth + 1),
            Node::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    out.push_str(&format!(
                        "{}{}\n",
                        "  ".repeat(depth + 1),
                        escape_text(trimmed, false)
                    ));
                }
            }
        }
    }
    out.push_str(&format!("{pad}</{}>\n", element.name));
}

fn escape_text(s: &str, in_attribute: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Converts an element tree into the unified [`Value`] model.
///
/// * attributes become `"@name"` keys;
/// * an element with only text becomes that text (numbers parse as numbers);
/// * repeated child element names collapse into an array;
/// * an element with no content becomes `Null`.
pub fn to_value(element: &Element) -> Value {
    let text = element.text_content();
    let child_elements = element.child_elements();
    if element.attributes.is_empty() && child_elements.is_empty() {
        return scalar_from_text(text.trim());
    }
    let mut map: BTreeMap<String, Value> = BTreeMap::new();
    for (name, value) in &element.attributes {
        map.insert(format!("@{name}"), scalar_from_text(value));
    }
    // Group children by name preserving first-appearance grouping.
    let mut grouped: BTreeMap<&str, Vec<&Element>> = BTreeMap::new();
    for child in &child_elements {
        grouped.entry(child.name.as_str()).or_default().push(child);
    }
    for (name, elements) in grouped {
        let value = if elements.len() == 1 {
            to_value(elements[0])
        } else {
            Value::Array(elements.iter().map(|e| to_value(e)).collect())
        };
        map.insert(name.to_string(), value);
    }
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        map.insert("#text".to_string(), scalar_from_text(trimmed));
    }
    Value::Object(map)
}

fn scalar_from_text(text: &str) -> Value {
    if text.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = text.parse::<i64>() {
        // Avoid treating "007"-style zero-padded codes as numbers.
        if text == i.to_string() {
            return Value::int(i);
        }
    }
    if let Ok(f) = text.parse::<f64>() {
        if text.contains('.') || text.contains('e') || text.contains('E') {
            return Value::float(f);
        }
    }
    match text {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::string(text),
    }
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn error(&self, message: impl Into<String>) -> XmlError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.iter().filter(|&&c| c == b'\n').count() + 1;
        let column = self.pos
            - consumed
                .iter()
                .rposition(|&c| c == b'\n')
                .map_or(0, |p| p + 1)
            + 1;
        XmlError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments and whitespace before the root.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match find_sub(&self.input[self.pos..], b"?>") {
                Some(end) => self.pos += end + 2,
                None => return Err(self.error("unterminated XML declaration")),
            }
        }
        self.skip_misc();
        Ok(())
    }

    /// Skips whitespace and comments.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find_sub(&self.input[self.pos..], b"-->") {
                    Some(end) => self.pos += end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(element);
                    }
                    return Err(self.error("expected '>' after '/'"));
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"') | Some(b'\'')) {
                        return Err(self.error("attribute value must be quoted"));
                    }
                    let quote = quote.expect("checked");
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in attribute"))?;
                    let value = self.decode_entities(raw)?;
                    self.pos += 1;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
        // Content until the matching end tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(self.error(format!(
                        "mismatched end tag: expected </{}>, found </{end_name}>",
                        element.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.error("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(element);
            } else if self.starts_with("<!--") {
                match find_sub(&self.input[self.pos..], b"-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                match find_sub(&self.input[self.pos..], b"]]>") {
                    Some(end) => {
                        let text = std::str::from_utf8(&self.input[self.pos..self.pos + end])
                            .map_err(|_| self.error("invalid UTF-8 in CDATA"))?;
                        element.children.push(Node::Text(text.to_string()));
                        self.pos += end + 3;
                    }
                    None => return Err(self.error("unterminated CDATA section")),
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
            } else if self.peek().is_none() {
                return Err(self.error(format!("missing end tag </{}>", element.name)));
            } else {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in text"))?;
                let text = self.decode_entities(raw)?;
                if !text.trim().is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii name")
            .to_string())
    }

    fn decode_entities(&self, raw: &str) -> Result<String, XmlError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.error("unterminated entity reference"))?;
            let entity = &rest[1..semi];
            match entity {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.error(format!("bad character reference &{entity};")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("invalid character reference"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let code = entity[1..]
                        .parse::<u32>()
                        .map_err(|_| self.error(format!("bad character reference &{entity};")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("invalid character reference"))?,
                    );
                }
                _ => return Err(self.error(format!("unknown entity &{entity};"))),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

/// Byte-level substring search (naive; inputs are API payloads, not GBs).
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEAMS_XML: &str = r#"<team>
  <id>25</id>
  <name>FC Barcelona</name>
  <shortName>FCB</shortName>
</team>"#;

    #[test]
    fn parses_the_teams_api_payload() {
        // Figure 2 of the paper, verbatim.
        let team = parse(TEAMS_XML).unwrap();
        assert_eq!(team.name, "team");
        assert_eq!(team.first_child("id").unwrap().text_content(), "25");
        assert_eq!(
            team.first_child("name").unwrap().text_content(),
            "FC Barcelona"
        );
        assert_eq!(team.first_child("shortName").unwrap().text_content(), "FCB");
    }

    #[test]
    fn to_value_maps_teams_payload() {
        let team = parse(TEAMS_XML).unwrap();
        let v = to_value(&team);
        assert_eq!(v.get("id").unwrap().as_number().unwrap().as_i64(), Some(25));
        assert_eq!(v.get("name").unwrap().as_str(), Some("FC Barcelona"));
    }

    #[test]
    fn attributes_become_at_keys() {
        let v = to_value(&parse(r#"<t id="3"><x>1</x></t>"#).unwrap());
        assert_eq!(v.get("@id").unwrap().as_number().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn repeated_children_become_arrays() {
        let v = to_value(&parse("<teams><team>a</team><team>b</team></teams>").unwrap());
        let teams = v.get("team").unwrap().as_array().unwrap();
        assert_eq!(teams.len(), 2);
        assert_eq!(teams[0].as_str(), Some("a"));
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let root = parse("<r><a/><b></b></r>").unwrap();
        assert_eq!(root.child_elements().len(), 2);
        let v = to_value(&root);
        assert!(v.get("a").unwrap().is_null());
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let root = parse(r#"<r a="&lt;x&gt;">&amp;&#65;&#x42;</r>"#).unwrap();
        assert_eq!(root.attributes[0].1, "<x>");
        assert_eq!(root.text_content(), "&AB");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let root = parse("<r><![CDATA[a < b & c]]></r>").unwrap();
        assert_eq!(root.text_content(), "a < b & c");
    }

    #[test]
    fn comments_and_declaration_skipped() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- hi -->\n<r><!-- in -->x</r>\n<!-- bye -->";
        let root = parse(doc).unwrap();
        assert_eq!(root.text_content(), "x");
    }

    #[test]
    fn mismatched_tags_are_errors() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn malformed_attributes_are_errors() {
        assert!(parse("<a b></a>").is_err());
        assert!(parse("<a b=c></a>").is_err());
        assert!(parse(r#"<a b="x></a>"#).is_err());
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn round_trip_through_printer() {
        let original = parse(TEAMS_XML).unwrap();
        let printed = to_string(&original);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(to_value(&original), to_value(&reparsed));
    }

    #[test]
    fn builder_constructs_figure2_team() {
        let team = Element::new("team")
            .child(Element::new("id").text("25"))
            .child(Element::new("name").text("FC Barcelona"))
            .child(Element::new("shortName").text("FCB"));
        let v = to_value(&team);
        assert_eq!(v.get("name").unwrap().as_str(), Some("FC Barcelona"));
    }

    #[test]
    fn zero_padded_codes_stay_strings() {
        let v = to_value(&parse("<r><code>007</code></r>").unwrap());
        assert_eq!(v.get("code").unwrap().as_str(), Some("007"));
    }

    #[test]
    fn unicode_text_survives() {
        let v = to_value(&parse("<r><name>Barça</name></r>").unwrap());
        assert_eq!(v.get("name").unwrap().as_str(), Some("Barça"));
    }
}

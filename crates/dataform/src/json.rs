//! A strict JSON parser and printer (RFC 8259 subset: no duplicate-key
//! detection, `\u` escapes including surrogate pairs, full number grammar).
//!
//! This replaces the off-the-shelf JSON library the paper's Java stack used;
//! the Players API of the motivational use case (Figure 2) is served in JSON.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::{Number, Value};

/// A JSON parse error with byte offset and 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub line: usize,
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut parser = JsonParser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

/// Prints a value as compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Prints a value as pretty JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                // JSON has no Inf/NaN; degrade to null like most printers.
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.iter().filter(|&&c| c == b'\n').count() + 1;
        let column = self.pos
            - consumed
                .iter()
                .rposition(|&c| c == b'\n')
                .map_or(0, |p| p + 1)
            + 1;
        JsonError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, JsonError> {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected '{kw}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.bump(); // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.error("expected ':' after key"));
            }
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a following \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&first) {
                            return Err(self.error("unpaired low surrogate"));
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(_) => {
                    // Multibyte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.input[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid number '{text}'")))?;
            Ok(Value::float(v))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Value::int(v)),
                // Overflowing integers degrade to float like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::float)
                    .map_err(|_| self.error(format!("invalid number '{text}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_players_api_payload() {
        // Figure 2 of the paper, verbatim.
        let doc = r#"{
            "id": 6176,
            "name": "Lionel Messi",
            "height": 170.18,
            "weight": 159,
            "rating": 94,
            "preferred_foot": "left",
            "team_id": 25
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("Lionel Messi"));
        assert_eq!(
            v.get("height").unwrap().as_number().unwrap().as_f64(),
            170.18
        );
        assert_eq!(
            v.get("team_id").unwrap().as_number().unwrap().as_i64(),
            Some(25)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":null},true],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(v
            .get("a")
            .unwrap()
            .at(1)
            .unwrap()
            .get("b")
            .unwrap()
            .is_null());
        assert!(v.get("c").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse("\"a\\\"b\\\\c\\nd\u{00e9}\u{1F600}\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
    }

    #[test]
    fn rejects_unpaired_surrogate() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn number_grammar() {
        assert_eq!(parse("0").unwrap(), Value::int(0));
        assert_eq!(parse("-12").unwrap(), Value::int(-12));
        assert_eq!(parse("3.5").unwrap(), Value::float(3.5));
        assert_eq!(parse("1e3").unwrap(), Value::float(1000.0));
        assert_eq!(parse("-2.5E-1").unwrap(), Value::float(-0.25));
        assert!(parse(".5").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
    }

    #[test]
    fn leading_zero_rejected_as_trailing_garbage() {
        // "01" parses "0" then fails on trailing '1'.
        assert!(parse("01").is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":1"#).is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_bad_structure() {
        assert!(parse("{1:2}").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trip_compact() {
        let doc = r#"{"arr":[1,2.5,"x",null,true],"obj":{"k":"v"}}"#;
        let v = parse(doc).unwrap();
        let printed = to_string(&v);
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn round_trip_pretty() {
        let v = parse(r#"{"a":{"b":[1,2]},"c":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_formatting_round_trips_integral_floats() {
        let v = Value::float(25.0);
        assert_eq!(to_string(&v), "25.0");
        assert_eq!(parse("25.0").unwrap(), v);
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(v, Value::Number(Number::Float(_))));
    }

    #[test]
    fn control_character_rejected() {
        assert!(parse("\"a\u{0001}b\"").is_err());
    }

    #[test]
    fn string_escaping_in_printer() {
        let v = Value::string("a\"b\\c\nd\u{0007}");
        let printed = to_string(&v);
        assert_eq!(printed, "\"a\\\"b\\\\c\\nd\\u0007\"");
        assert_eq!(parse(&printed).unwrap(), v);
    }
}

//! Dotted-path accessors into [`Value`] trees.
//!
//! Wrapper definitions rename and project source fields (paper §2.2: the
//! Players wrapper exposes `foot` for the source's `preferred_foot`, and adds
//! `teamId` for `team_id`). A [`Path`] like `team.name` or `stats.0.goals`
//! selects the field a wrapper attribute is bound to.

use std::fmt;
use std::str::FromStr;

use crate::value::Value;

/// One step in a path: an object key or an array index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    Key(String),
    Index(usize),
}

/// A dotted path into a document tree (`a.b.0.c`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
}

/// Error for unparsable paths (currently only the empty path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathError(pub String);

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}

impl std::error::Error for PathError {}

impl Path {
    /// Builds a path from pre-parsed steps.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        Path { steps }
    }

    /// A single-key path.
    pub fn key(name: impl Into<String>) -> Self {
        Path {
            steps: vec![Step::Key(name.into())],
        }
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Resolves the path against a value, returning the sub-value it points
    /// to. Numeric steps index arrays; all steps also try object keys (so a
    /// JSON object with a key `"0"` is reachable).
    pub fn resolve<'a>(&self, value: &'a Value) -> Option<&'a Value> {
        let mut current = value;
        for step in &self.steps {
            current = match step {
                Step::Key(key) => current.get(key)?,
                Step::Index(i) => match current.at(*i) {
                    Some(v) => v,
                    None => current.get(&i.to_string())?,
                },
            };
        }
        Some(current)
    }
}

impl FromStr for Path {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(PathError("empty path".to_string()));
        }
        let steps = s
            .split('.')
            .map(|part| {
                if part.is_empty() {
                    return Err(PathError(format!("empty step in '{s}'")));
                }
                Ok(match part.parse::<usize>() {
                    Ok(i) if part == i.to_string() => Step::Index(i),
                    _ => Step::Key(part.to_string()),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Path { steps })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            match step {
                Step::Key(k) => write!(f, "{k}")?,
                Step::Index(idx) => write!(f, "{idx}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Value {
        Value::object([
            (
                "team",
                Value::object([
                    ("name", Value::string("FC Barcelona")),
                    ("id", Value::int(25)),
                ]),
            ),
            (
                "players",
                Value::array([
                    Value::object([("name", Value::string("Messi"))]),
                    Value::object([("name", Value::string("Iniesta"))]),
                ]),
            ),
        ])
    }

    #[test]
    fn resolves_nested_keys() {
        let path: Path = "team.name".parse().unwrap();
        assert_eq!(path.resolve(&doc()).unwrap().as_str(), Some("FC Barcelona"));
    }

    #[test]
    fn resolves_array_indexes() {
        let path: Path = "players.1.name".parse().unwrap();
        assert_eq!(path.resolve(&doc()).unwrap().as_str(), Some("Iniesta"));
    }

    #[test]
    fn missing_key_is_none() {
        let path: Path = "team.city".parse().unwrap();
        assert_eq!(path.resolve(&doc()), None);
    }

    #[test]
    fn out_of_range_index_is_none() {
        let path: Path = "players.5".parse().unwrap();
        assert_eq!(path.resolve(&doc()), None);
    }

    #[test]
    fn numeric_key_on_object_falls_back() {
        let v = Value::object([("0", Value::string("zero"))]);
        let path: Path = "0".parse().unwrap();
        assert_eq!(path.resolve(&v).unwrap().as_str(), Some("zero"));
    }

    #[test]
    fn empty_paths_rejected() {
        assert!("".parse::<Path>().is_err());
        assert!("a..b".parse::<Path>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in ["team.name", "players.0.name", "a"] {
            let path: Path = text.parse().unwrap();
            assert_eq!(path.to_string(), text);
        }
    }
}

//! The unified document tree shared by JSON, XML and CSV.

use std::collections::BTreeMap;
use std::fmt;

/// A numeric value, preserving the integer/float distinction so wrapper
/// attributes keep their source types (e.g. Players API `weight: 159` vs
/// `height: 170.18`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    /// The value as an `f64` (lossless for floats, convertible for ints).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as an `i64` when it is an integer (or an integral float).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(f as i64),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

/// A document value: the common shape of parsed JSON, XML and CSV data.
///
/// Objects use a `BTreeMap` so iteration (and therefore flattening, printing
/// and schema extraction) is deterministic — MDM's schema-extraction step
/// relies on stable attribute order when deriving wrapper signatures.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand integer constructor.
    pub fn int(v: i64) -> Self {
        Value::Number(Number::Int(v))
    }

    /// Shorthand float constructor.
    pub fn float(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }

    /// Shorthand string constructor.
    pub fn string(v: impl Into<String>) -> Self {
        Value::String(v.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Array(items.into_iter().collect())
    }

    /// The object map, when this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this value is numeric.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, when this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object; `None` for other shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Indexes into an array; `None` for other shapes or out of range.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|items| items.get(index))
    }

    /// A scalar rendering for 1NF flattening: numbers/strings/bools render
    /// naturally, null renders as empty, arrays/objects are `None` (they are
    /// not scalars and must be flattened structurally).
    pub fn scalar_text(&self) -> Option<String> {
        match self {
            Value::Null => Some(String::new()),
            Value::Bool(b) => Some(b.to_string()),
            Value::Number(n) => Some(n.to_string()),
            Value::String(s) => Some(s.clone()),
            Value::Array(_) | Value::Object(_) => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_preserves_int_float_distinction() {
        assert_eq!(Number::Int(159).as_i64(), Some(159));
        assert_eq!(Number::Float(170.18).as_i64(), None);
        assert_eq!(Number::Float(25.0).as_i64(), Some(25));
        assert_eq!(Number::Int(2).as_f64(), 2.0);
    }

    #[test]
    fn number_display_forms() {
        assert_eq!(Number::Int(42).to_string(), "42");
        assert_eq!(Number::Float(170.18).to_string(), "170.18");
        assert_eq!(Number::Float(25.0).to_string(), "25.0");
    }

    #[test]
    fn object_builder_and_accessors() {
        let player = Value::object([
            ("name", Value::string("Lionel Messi")),
            ("height", Value::float(170.18)),
            ("team_id", Value::int(25)),
        ]);
        assert_eq!(player.get("name").unwrap().as_str(), Some("Lionel Messi"));
        assert_eq!(
            player.get("team_id").unwrap().as_number().unwrap().as_i64(),
            Some(25)
        );
        assert!(player.get("missing").is_none());
    }

    #[test]
    fn array_accessors() {
        let arr = Value::array([Value::int(1), Value::int(2)]);
        assert_eq!(arr.at(1).unwrap().as_number().unwrap().as_i64(), Some(2));
        assert!(arr.at(2).is_none());
        assert!(arr.get("x").is_none());
    }

    #[test]
    fn scalar_text_rules() {
        assert_eq!(Value::Null.scalar_text(), Some(String::new()));
        assert_eq!(Value::Bool(true).scalar_text(), Some("true".into()));
        assert_eq!(Value::string("x").scalar_text(), Some("x".into()));
        assert_eq!(Value::array([]).scalar_text(), None);
        assert_eq!(Value::object::<String>([]).scalar_text(), None);
    }

    #[test]
    fn object_iteration_is_sorted() {
        let v = Value::object([("b", Value::int(1)), ("a", Value::int(2))]);
        let keys: Vec<_> = v.as_object().unwrap().keys().cloned().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::int(1).kind(), "number");
        assert_eq!(Value::array([]).kind(), "array");
    }
}

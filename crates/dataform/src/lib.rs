//! # mdm-dataform
//!
//! Source-data formats for MDM. The paper's wrappers ingest REST-API payloads
//! "in their original format" — the motivational use case serves the Players
//! API as JSON and the Teams API as XML (Figure 2). This crate provides the
//! substrate the reference implementation got from off-the-shelf Java
//! libraries:
//!
//! * [`Value`] — a unified document tree (null / bool / number / string /
//!   array / object) shared by all formats.
//! * [`json`] — a strict JSON parser and printer.
//! * [`xml`] — a parser and printer for the XML subset REST APIs emit
//!   (elements, attributes, text; no DTDs or processing instructions).
//! * [`csv`] — an RFC-4180-style reader/writer for tabular sources.
//! * [`flatten`] — converts a document tree into the flat 1NF rows that
//!   wrapper signatures `w(a1, …, an)` expose (paper §2.2).
//! * [`path`] — dotted-path accessors (`team.name`, `stats.0.goals`) used by
//!   wrapper queries to rename and project fields.

pub mod csv;
pub mod flatten;
pub mod json;
pub mod path;
pub mod value;
pub mod xml;

pub use flatten::{flatten_rows, FlattenOptions};
pub use path::Path;
pub use value::{Number, Value};

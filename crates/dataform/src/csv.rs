//! An RFC-4180-style CSV reader and writer.
//!
//! Some MDM sources are tabular exports; CSV is the third format the wrapper
//! framework accepts. Quoted fields (with embedded commas, quotes and
//! newlines), CRLF/LF line endings, and a header row are supported.

use std::fmt;

use crate::value::Value;

/// A CSV parse error with the 1-based record number it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    pub message: String,
    pub record: usize,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "csv parse error in record {}: {}",
            self.record, self.message
        )
    }
}

impl std::error::Error for CsvError {}

/// A parsed CSV document: a header and data records.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    pub header: Vec<String>,
    pub records: Vec<Vec<String>>,
}

impl CsvTable {
    /// Converts each record to an object [`Value`] keyed by header names,
    /// typing numeric-looking and boolean-looking fields.
    pub fn to_values(&self) -> Vec<Value> {
        self.records
            .iter()
            .map(|record| {
                Value::object(
                    self.header
                        .iter()
                        .zip(record)
                        .map(|(name, field)| (name.clone(), type_field(field))),
                )
            })
            .collect()
    }
}

fn type_field(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        if field == i.to_string() {
            return Value::int(i);
        }
    }
    if let Ok(f) = field.parse::<f64>() {
        if field.contains('.') {
            return Value::float(f);
        }
    }
    match field {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::string(field),
    }
}

/// Parses a CSV document with a header row. Records with a field count
/// different from the header are an error (ragged tables hide schema drift,
/// which is exactly what MDM is built to surface).
pub fn parse(input: &str) -> Result<CsvTable, CsvError> {
    let mut rows = parse_rows(input)?;
    if rows.is_empty() {
        return Err(CsvError {
            message: "empty document (missing header)".to_string(),
            record: 0,
        });
    }
    let header = rows.remove(0);
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(CsvError {
                message: format!(
                    "record has {} fields but header has {}",
                    row.len(),
                    header.len()
                ),
                record: i + 1,
            });
        }
    }
    Ok(CsvTable {
        header,
        records: rows,
    })
}

/// Parses raw rows without header interpretation.
pub fn parse_rows(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut field_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            '"' => {
                return Err(CsvError {
                    message: "quote inside unquoted field".to_string(),
                    record: rows.len() + 1,
                })
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            c => {
                field.push(c);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            message: "unterminated quoted field".to_string(),
            record: rows.len() + 1,
        });
    }
    if field_started || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Writes a header and records as CSV, quoting only where required.
pub fn to_string(header: &[String], records: &[Vec<String>]) -> String {
    let mut out = String::new();
    write_row(&mut out, header);
    for record in records {
        write_row(&mut out, record);
    }
    out
}

fn write_row(out: &mut String, fields: &[String]) {
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if field.contains([',', '"', '\n', '\r']) {
            out.push('"');
            out.push_str(&field.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_table() {
        let t = parse("id,name\n1,Messi\n2,Lewandowski\n").unwrap();
        assert_eq!(t.header, vec!["id", "name"]);
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0], vec!["1", "Messi"]);
    }

    #[test]
    fn quoted_fields_with_commas_quotes_newlines() {
        let t = parse("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",z\n").unwrap();
        assert_eq!(t.records[0][0], "x,y");
        assert_eq!(t.records[0][1], "he said \"hi\"");
        assert_eq!(t.records[1][0], "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.records, vec![vec!["1", "2"]]);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = parse("a,b\n1,2").unwrap();
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn ragged_record_is_error() {
        let err = parse("a,b\n1,2,3\n").unwrap_err();
        assert!(err.message.contains("3 fields"));
        assert_eq!(err.record, 1);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse("a\n\"oops\n").is_err());
    }

    #[test]
    fn quote_inside_unquoted_field_is_error() {
        assert!(parse("a\nb\"c\n").is_err());
    }

    #[test]
    fn empty_document_is_error() {
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_fields_and_nulls() {
        let t = parse("a,b,c\n1,,x\n").unwrap();
        assert_eq!(t.records[0][1], "");
        let values = t.to_values();
        assert!(values[0].get("b").unwrap().is_null());
    }

    #[test]
    fn to_values_types_fields() {
        let t = parse("id,height,active,name\n25,170.18,true,Messi\n").unwrap();
        let v = &t.to_values()[0];
        assert_eq!(v.get("id").unwrap().as_number().unwrap().as_i64(), Some(25));
        assert_eq!(
            v.get("height").unwrap().as_number().unwrap().as_f64(),
            170.18
        );
        assert_eq!(v.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("name").unwrap().as_str(), Some("Messi"));
    }

    #[test]
    fn round_trip() {
        let header = vec!["a".to_string(), "b".to_string()];
        let records = vec![
            vec!["x,y".to_string(), "plain".to_string()],
            vec!["with \"q\"".to_string(), "line\nbreak".to_string()],
        ];
        let text = to_string(&header, &records);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.header, header);
        assert_eq!(parsed.records, records);
    }
}

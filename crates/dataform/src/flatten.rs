//! Flattening document trees into 1NF rows.
//!
//! Paper §2.2: *"We work under the assumption that wrappers provide a flat
//! structure in first normal form"*. REST payloads are trees, so each wrapper
//! contains a flattening step. The rules implemented here:
//!
//! * a scalar document is one row with one column (named by
//!   [`FlattenOptions::scalar_column`]);
//! * an object contributes one column per scalar field, with nested objects
//!   flattened using separator-joined column names (`team_name`);
//! * an array of objects (the standard REST list response) produces one row
//!   per element;
//! * a nested array *unnests*: the cartesian product with its parent row,
//!   which is the 1NF interpretation of repeated groups.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::value::Value;

/// Options controlling flattening.
#[derive(Clone, Debug)]
pub struct FlattenOptions {
    /// Separator between nested object keys in generated column names.
    pub separator: String,
    /// Column name used when a document (or array element) is a bare scalar.
    pub scalar_column: String,
}

impl Default for FlattenOptions {
    fn default() -> Self {
        FlattenOptions {
            separator: "_".to_string(),
            scalar_column: "value".to_string(),
        }
    }
}

/// A flat row: column name → scalar text (empty string encodes null).
/// Column names are `Arc<str>` because every row of a payload repeats the
/// same handful of names: one allocation per column per payload, not one
/// per cell. `Arc<str>: Borrow<str>`, so `row["id"]` lookups still work.
pub type Row = BTreeMap<Arc<str>, String>;

/// Flattens a document into 1NF rows.
pub fn flatten_rows(value: &Value, options: &FlattenOptions) -> Vec<Row> {
    match value {
        Value::Array(items) => items
            .iter()
            .flat_map(|item| flatten_rows(item, options))
            .collect(),
        Value::Object(_) => flatten_object(value, "", options),
        scalar => {
            let mut row = Row::new();
            row.insert(
                Arc::from(options.scalar_column.as_str()),
                scalar.scalar_text().unwrap_or_default(),
            );
            vec![row]
        }
    }
}

/// Flattens one object into one-or-more rows (more when arrays unnest).
fn flatten_object(value: &Value, prefix: &str, options: &FlattenOptions) -> Vec<Row> {
    let Some(map) = value.as_object() else {
        // Scalar under a prefix: single column.
        let mut row = Row::new();
        let column: Arc<str> = if prefix.is_empty() {
            Arc::from(options.scalar_column.as_str())
        } else {
            Arc::from(prefix)
        };
        row.insert(column, value.scalar_text().unwrap_or_default());
        return vec![row];
    };

    // Start from a single row and expand multiplicatively on arrays.
    let mut rows: Vec<Row> = vec![Row::new()];
    for (key, field) in map {
        let column: Arc<str> = if prefix.is_empty() {
            Arc::from(key.as_str())
        } else {
            Arc::from(format!("{prefix}{}{key}", options.separator))
        };
        match field {
            Value::Array(items) => {
                // Unnest: each existing row pairs with each element's rows.
                let mut expanded = Vec::new();
                if items.is_empty() {
                    // Empty array: keep parent rows, no columns added.
                    expanded = rows;
                } else {
                    for item in items {
                        let sub_rows = flatten_object(item, &column, options);
                        for row in &rows {
                            for sub in &sub_rows {
                                let mut merged = row.clone();
                                merged.extend(sub.clone());
                                expanded.push(merged);
                            }
                        }
                    }
                }
                rows = expanded;
            }
            Value::Object(_) => {
                let sub_rows = flatten_object(field, &column, options);
                let mut expanded = Vec::new();
                for row in &rows {
                    for sub in &sub_rows {
                        let mut merged = row.clone();
                        merged.extend(sub.clone());
                        expanded.push(merged);
                    }
                }
                rows = expanded;
            }
            scalar => {
                let text = scalar.scalar_text().unwrap_or_default();
                for row in &mut rows {
                    row.insert(column.clone(), text.clone());
                }
            }
        }
    }
    rows
}

/// Extracts the union of column names across rows, sorted — the inferred 1NF
/// schema MDM's *schema extraction* step derives from a wrapper's payload.
pub fn infer_columns(rows: &[Row]) -> Vec<String> {
    let mut columns: Vec<String> = rows
        .iter()
        .flat_map(|row| row.keys().map(|k| k.to_string()))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    columns.sort();
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn flatten_json(doc: &str) -> Vec<Row> {
        flatten_rows(&json::parse(doc).unwrap(), &FlattenOptions::default())
    }

    #[test]
    fn flat_object_is_one_row() {
        let rows = flatten_json(r#"{"id":6176,"name":"Lionel Messi","height":170.18}"#);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["id"], "6176");
        assert_eq!(rows[0]["name"], "Lionel Messi");
        assert_eq!(rows[0]["height"], "170.18");
    }

    #[test]
    fn array_of_objects_is_one_row_each() {
        let rows = flatten_json(r#"[{"id":1},{"id":2},{"id":3}]"#);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2]["id"], "3");
    }

    #[test]
    fn nested_objects_prefix_columns() {
        let rows = flatten_json(r#"{"player":{"name":"Messi","team":{"id":25}}}"#);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["player_name"], "Messi");
        assert_eq!(rows[0]["player_team_id"], "25");
    }

    #[test]
    fn nested_array_unnests_cartesian() {
        let rows = flatten_json(r#"{"team":"FCB","players":[{"n":"Messi"},{"n":"Iniesta"}]}"#);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r["team"] == "FCB"));
        let names: Vec<_> = rows.iter().map(|r| r["players_n"].clone()).collect();
        assert_eq!(names, vec!["Messi", "Iniesta"]);
    }

    #[test]
    fn two_arrays_multiply() {
        let rows = flatten_json(r#"{"a":[{"x":1},{"x":2}],"b":[{"y":3},{"y":4}]}"#);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn empty_array_keeps_parent_row() {
        let rows = flatten_json(r#"{"team":"FCB","players":[]}"#);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["team"], "FCB");
        assert!(!rows[0].contains_key("players"));
    }

    #[test]
    fn null_becomes_empty_string() {
        let rows = flatten_json(r#"{"a":null,"b":1}"#);
        assert_eq!(rows[0]["a"], "");
    }

    #[test]
    fn bare_scalar_document() {
        let rows = flatten_json("42");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["value"], "42");
    }

    #[test]
    fn array_of_scalars() {
        let rows = flatten_json("[1,2]");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["value"], "1");
    }

    #[test]
    fn custom_separator() {
        let options = FlattenOptions {
            separator: ".".to_string(),
            ..FlattenOptions::default()
        };
        let value = json::parse(r#"{"a":{"b":1}}"#).unwrap();
        let rows = flatten_rows(&value, &options);
        assert_eq!(rows[0]["a.b"], "1");
    }

    #[test]
    fn infer_columns_unions_and_sorts() {
        let rows = flatten_json(r#"[{"b":1},{"a":2,"b":3}]"#);
        assert_eq!(infer_columns(&rows), vec!["a", "b"]);
    }

    #[test]
    fn xml_payload_flattens_after_to_value() {
        let team = crate::xml::parse(
            "<team><id>25</id><name>FC Barcelona</name><shortName>FCB</shortName></team>",
        )
        .unwrap();
        let rows = flatten_rows(&crate::xml::to_value(&team), &FlattenOptions::default());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["id"], "25");
        assert_eq!(rows[0]["name"], "FC Barcelona");
        assert_eq!(rows[0]["shortName"], "FCB");
    }
}

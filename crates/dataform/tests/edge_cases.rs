//! Edge-case tests for the data-format substrate.

use mdm_dataform::flatten::{flatten_rows, FlattenOptions};
use mdm_dataform::{csv, json, xml, Path, Value};

// ---- JSON ----

#[test]
fn json_deeply_nested_structures() {
    let mut doc = String::from("1");
    for _ in 0..60 {
        doc = format!("[{doc}]");
    }
    let mut v = &json::parse(&doc).unwrap();
    let mut depth = 0;
    while let Some(inner) = v.at(0) {
        v = inner;
        depth += 1;
    }
    assert_eq!(depth, 60);
}

#[test]
fn json_duplicate_keys_last_wins() {
    // RFC 8259 leaves this undefined; we document last-wins (BTreeMap insert).
    let v = json::parse(r#"{"a":1,"a":2}"#).unwrap();
    assert_eq!(v.get("a").unwrap().as_number().unwrap().as_i64(), Some(2));
}

#[test]
fn json_whitespace_everywhere() {
    let v = json::parse(" \n\t { \"a\" : [ 1 , 2 ] } \r\n ").unwrap();
    assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
}

#[test]
fn json_surrogate_pair_round_trip() {
    let v = json::parse(r#""😀""#).unwrap();
    assert_eq!(v.as_str(), Some("😀"));
    let printed = json::to_string(&v);
    assert_eq!(json::parse(&printed).unwrap(), v);
}

#[test]
fn json_error_positions() {
    let err = json::parse("{\n  \"a\": 1,\n  \"b\": }").unwrap_err();
    assert_eq!(err.line, 3, "{err}");
}

// ---- XML ----

#[test]
fn xml_deeply_nested_elements() {
    let mut doc = String::from("x");
    for i in 0..40 {
        doc = format!("<e{i}>{doc}</e{i}>");
    }
    let root = xml::parse(&doc).unwrap();
    assert_eq!(root.name, "e39");
}

#[test]
fn xml_mixed_content_preserved() {
    let root = xml::parse("<p>before <b>bold</b> after</p>").unwrap();
    assert_eq!(root.children.len(), 3);
    assert_eq!(root.text_content(), "before  after");
    assert_eq!(root.first_child("b").unwrap().text_content(), "bold");
}

#[test]
fn xml_attribute_quoting_variants() {
    let root = xml::parse(r#"<t a="double" b='single' c="with 'inner'"/>"#).unwrap();
    assert_eq!(root.attributes.len(), 3);
    assert_eq!(root.attributes[2].1, "with 'inner'");
}

#[test]
fn xml_namespaced_names_kept_verbatim() {
    let root = xml::parse(r#"<ns:t xmlns:ns="http://x/"><ns:c>1</ns:c></ns:t>"#).unwrap();
    assert_eq!(root.name, "ns:t");
    assert!(root.first_child("ns:c").is_some());
}

#[test]
fn xml_to_value_attribute_and_child_name_collision() {
    let v = xml::to_value(&xml::parse(r#"<t id="attr"><id>child</id></t>"#).unwrap());
    assert_eq!(v.get("@id").unwrap().as_str(), Some("attr"));
    assert_eq!(v.get("id").unwrap().as_str(), Some("child"));
}

// ---- CSV ----

#[test]
fn csv_single_column_and_empty_rows() {
    let t = csv::parse("only\nvalue\n\nafter\n").unwrap();
    // The blank line parses as a single empty field row.
    assert_eq!(t.records.len(), 3);
    assert_eq!(t.records[1], vec![""]);
}

#[test]
fn csv_quoted_field_at_record_boundaries() {
    let t = csv::parse("a,b\n\"start\",end\nbegin,\"finish\"").unwrap();
    assert_eq!(t.records[0], vec!["start", "end"]);
    assert_eq!(t.records[1], vec!["begin", "finish"]);
}

// ---- flatten + path ----

#[test]
fn flatten_three_level_nesting() {
    let v = json::parse(r#"{"a":{"b":{"c":{"d":1}}}}"#).unwrap();
    let rows = flatten_rows(&v, &FlattenOptions::default());
    assert_eq!(rows[0]["a_b_c_d"], "1");
}

#[test]
fn flatten_array_of_arrays() {
    let v = json::parse("[[1,2],[3]]").unwrap();
    let rows = flatten_rows(&v, &FlattenOptions::default());
    // Outer array → rows per element; inner arrays are scalars-lists.
    assert_eq!(rows.len(), 3);
}

#[test]
fn flatten_null_heavy_document() {
    let v = json::parse(r#"[{"a":null,"b":null},{"a":1,"b":null}]"#).unwrap();
    let rows = flatten_rows(&v, &FlattenOptions::default());
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0]["a"], "");
    assert_eq!(rows[1]["a"], "1");
}

#[test]
fn path_through_mixed_tree() {
    let v = json::parse(r#"{"teams":[{"players":[{"n":"a"},{"n":"b"}]}]}"#).unwrap();
    let path: Path = "teams.0.players.1.n".parse().unwrap();
    assert_eq!(path.resolve(&v).unwrap().as_str(), Some("b"));
}

#[test]
fn number_edge_values() {
    assert_eq!(
        json::parse(&i64::MAX.to_string()).unwrap(),
        Value::int(i64::MAX)
    );
    assert_eq!(
        json::parse(&i64::MIN.to_string()).unwrap(),
        Value::int(i64::MIN)
    );
    assert_eq!(json::parse("-0.0").unwrap(), Value::float(-0.0));
    assert_eq!(json::parse("1e-10").unwrap(), Value::float(1e-10));
}

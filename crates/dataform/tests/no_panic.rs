//! Robustness: parsers must never panic, whatever bytes arrive. (External
//! REST APIs are exactly the place malformed payloads come from.)

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn json_parser_never_panics(input in "\\PC*") {
        let _ = mdm_dataform::json::parse(&input);
    }

    #[test]
    fn json_parser_never_panics_on_jsonish(input in "[{}\\[\\]\",:0-9a-z\\\\ .eE+-]*") {
        let _ = mdm_dataform::json::parse(&input);
    }

    #[test]
    fn xml_parser_never_panics(input in "\\PC*") {
        let _ = mdm_dataform::xml::parse(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_xmlish(input in "[<>/=\"'a-z0-9 &;!\\[\\]-]*") {
        let _ = mdm_dataform::xml::parse(&input);
    }

    #[test]
    fn csv_parser_never_panics(input in "\\PC*") {
        let _ = mdm_dataform::csv::parse(&input);
    }

    #[test]
    fn path_parser_never_panics(input in "\\PC*") {
        let _ = input.parse::<mdm_dataform::Path>();
    }
}

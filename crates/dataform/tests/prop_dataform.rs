//! Property tests for the data-format substrate: JSON/CSV round-trips and
//! flattening invariants.

use proptest::prelude::*;

use mdm_dataform::flatten::{flatten_rows, infer_columns, FlattenOptions};
use mdm_dataform::{csv, json, Value};

/// Arbitrary JSON-like value trees (bounded depth/size).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        // Floats on an exact decimal grid so text round-trips are exact.
        (-10_000i32..10_000, 0u8..100).prop_map(|(a, b)| Value::float(a as f64 + b as f64 / 4.0)),
        "[ -~àé😀]{0,10}".prop_map(Value::string),
    ];
    leaf.prop_recursive(3, 40, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::array),
            proptest::collection::btree_map("[a-z_]{1,6}", inner, 0..5).prop_map(Value::Object),
        ]
    })
}

proptest! {
    /// parse ∘ to_string is the identity.
    #[test]
    fn json_round_trip(value in arb_value()) {
        let compact = json::to_string(&value);
        prop_assert_eq!(&json::parse(&compact).unwrap(), &value, "compact: {}", compact);
        let pretty = json::to_string_pretty(&value);
        prop_assert_eq!(&json::parse(&pretty).unwrap(), &value, "pretty: {}", pretty);
    }

    /// CSV round-trips arbitrary field content (quotes, commas, newlines).
    #[test]
    fn csv_round_trip(
        header in proptest::collection::vec("[a-z]{1,6}", 1..5),
        records in proptest::collection::vec(
            proptest::collection::vec("[ -~\n\"]{0,12}", 1..5),
            0..8,
        ),
    ) {
        // Make records rectangular w.r.t. the header.
        let records: Vec<Vec<String>> = records
            .into_iter()
            .map(|mut r| {
                r.resize(header.len(), String::new());
                r
            })
            .collect();
        let text = csv::to_string(&header, &records);
        let parsed = csv::parse(&text).unwrap();
        prop_assert_eq!(parsed.header, header);
        prop_assert_eq!(parsed.records, records);
    }

    /// Flattening an array of flat objects yields exactly one row each, and
    /// every row's columns appear in the inferred schema.
    #[test]
    fn flatten_array_of_flat_objects(
        objects in proptest::collection::vec(
            proptest::collection::btree_map(
                "[a-z]{1,5}",
                prop_oneof![
                    any::<i64>().prop_map(Value::int),
                    "[a-z]{0,6}".prop_map(Value::string),
                ],
                1..5,
            ),
            0..10,
        ),
    ) {
        let doc = Value::Array(objects.iter().cloned().map(Value::Object).collect());
        let rows = flatten_rows(&doc, &FlattenOptions::default());
        prop_assert_eq!(rows.len(), objects.len());
        let columns = infer_columns(&rows);
        for (row, object) in rows.iter().zip(&objects) {
            prop_assert_eq!(row.len(), object.len());
            for key in row.keys() {
                prop_assert!(columns.iter().any(|c| c.as_str() == key.as_ref()));
            }
        }
    }

    /// Unnesting multiplies: an object with two arrays of flat objects
    /// produces |a|×|b| rows (when both non-empty).
    #[test]
    fn flatten_multiplies_arrays(a in 1usize..5, b in 1usize..5) {
        let mk = |n: usize, key: &str| {
            Value::array((0..n).map(|i| {
                Value::object([(key, Value::int(i as i64))])
            }))
        };
        let doc = Value::object([("xs", mk(a, "x")), ("ys", mk(b, "y"))]);
        let rows = flatten_rows(&doc, &FlattenOptions::default());
        prop_assert_eq!(rows.len(), a * b);
    }

    /// XML values built from scalars survive the printer/parser.
    #[test]
    fn xml_scalar_round_trip(
        fields in proptest::collection::btree_map(
            "[a-z]{1,6}",
            prop_oneof![
                any::<i32>().prop_map(|i| i.to_string()),
                "[a-zA-Z ]{1,10}".prop_map(|s| s.trim().to_string()),
            ],
            1..6,
        ),
    ) {
        use mdm_dataform::xml;
        let mut element = xml::Element::new("record");
        for (k, v) in &fields {
            element = element.child(xml::Element::new(k.clone()).text(v.clone()));
        }
        let printed = xml::to_string(&element);
        let reparsed = xml::parse(&printed).unwrap();
        for (k, v) in &fields {
            let child = reparsed.first_child(k).unwrap();
            prop_assert_eq!(&child.text_content(), v);
        }
    }
}
